#include "sim_rate_lib.h"

#include <cstdlib>
#include <map>
#include <sstream>

#include "bench_util.h"
#include "harness/serving.h"
#include "obs/json.h"
#include "serve/spec.h"
#include "sim/engine.h"
#include "workload/benchmarks.h"

#ifndef DIRIGENT_BENCH_BUILD_TYPE
#define DIRIGENT_BENCH_BUILD_TYPE "unknown"
#endif

namespace dirigent::bench {

namespace {

/** Scoped DIRIGENT_FAST_PATH override; restores the prior value. */
class FastPathEnvGuard
{
  public:
    explicit FastPathEnvGuard(const std::string &mode)
    {
        const char *prev = std::getenv("DIRIGENT_FAST_PATH");
        hadPrev_ = prev != nullptr;
        if (hadPrev_)
            prev_ = prev;
        setenv("DIRIGENT_FAST_PATH", mode == "fast" ? "1" : "0", 1);
    }

    ~FastPathEnvGuard()
    {
        if (hadPrev_)
            setenv("DIRIGENT_FAST_PATH", prev_.c_str(), 1);
        else
            unsetenv("DIRIGENT_FAST_PATH");
    }

  private:
    bool hadPrev_ = false;
    std::string prev_;
};

/** Deterministic clones of ferret/rs with every stochastic input off. */
void
registerDeterministicPrograms()
{
    const auto &lib = workload::BenchmarkLibrary::instance();
    for (const char *name : {"ferret", "rs"}) {
        std::string detName = std::string(name) + "_det";
        if (lib.has(detName))
            continue;
        workload::PhaseProgram program = lib.get(name).program;
        program.name = detName;
        for (auto &phase : program.phases) {
            phase.cpiJitterSigma = 0.0;
            phase.instrJitterSigma = 0.0;
        }
        workload::BenchmarkLibrary::registerCustom(
            detName, "deterministic sim-rate clone", std::move(program));
    }

    // A compute-only one-shot FG: no LLC traffic, no jitter. Together
    // with OS noise disabled, a standalone run of it is the purest
    // detached hot path — engine loop + core model with the cache and
    // DRAM flow quiescent.
    if (!lib.has("cpu_only")) {
        workload::Phase phase;
        phase.name = "compute";
        phase.instructions = 2e8;
        phase.instrJitterSigma = 0.0;
        phase.cpiBase = 1.0;
        phase.llcApki = 0.0;
        phase.cpiJitterSigma = 0.0;
        workload::PhaseProgram program;
        program.name = "cpu_only";
        program.phases.push_back(phase);
        program.loop = false;
        workload::BenchmarkLibrary::registerCustom(
            "cpu_only", "compute-only sim-rate FG", std::move(program));
    }
}

/** One runnable scenario: setup once, then a run() closure per rep. */
struct Scenario
{
    std::string name;
    std::function<void()> run;
};

ScenarioResult
measureScenario(const Scenario &scenario, const std::string &mode,
                const SimRateOptions &opts)
{
    FastPathEnvGuard env(mode);
    uint64_t quanta = 0;
    auto timedRun = [&] {
        uint64_t before = sim::totalQuantaAdvanced();
        scenario.run();
        quanta = sim::totalQuantaAdvanced() - before;
    };
    Measured m = measureMedian(timedRun, opts.reps, opts.warmup);

    ScenarioResult r;
    r.name = scenario.name;
    r.mode = mode;
    r.reps = opts.reps;
    r.warmup = opts.warmup;
    r.quantaPerRun = quanta;
    r.medianRunSec = m.medianSec;
    r.minRunSec = m.minSec;
    r.maxRunSec = m.maxSec;
    if (m.medianSec > 0.0) {
        r.quantaPerSec = double(quanta) / m.medianSec;
        r.runsPerSec = 1.0 / m.medianSec;
    }
    return r;
}

} // namespace

SimRateOptions
quickSimRateOptions()
{
    SimRateOptions opts;
    opts.quick = true;
    opts.reps = 2;
    opts.warmup = 1;
    opts.executions = 2;
    opts.servingHorizonSec = 2.0;
    return opts;
}

SimRateReport
runSimRate(const SimRateOptions &options)
{
    registerDeterministicPrograms();

    SimRateReport report;
    report.options = options;

    std::vector<Scenario> scenarios;

    // fg_only: the FG hot path with five idle cores — the regime where
    // per-quantum fixed costs (cache commit, engine loop) dominate.
    {
        auto runner = std::make_shared<harness::ExperimentRunner>(
            bench::defaultConfig(options.executions));
        unsigned execs = options.executions;
        scenarios.push_back(
            {"fg_only", [runner, execs] {
                 auto res = runner->runStandalone("ferret", execs);
                 if (res.total == 0)
                     fatal("fg_only scenario measured no executions");
             }});
    }

    // cpu_bound: compute-only FG, noise off — per-quantum fixed costs
    // with the memory system quiescent (the detached hot-path floor).
    {
        harness::HarnessConfig hc = bench::defaultConfig(options.executions);
        hc.machine.noiseEventsPerSec = 0.0;
        auto runner = std::make_shared<harness::ExperimentRunner>(hc);
        unsigned execs = options.executions;
        scenarios.push_back(
            {"cpu_bound", [runner, execs] {
                 auto res = runner->runStandalone("cpu_only", execs);
                 if (res.total == 0)
                     fatal("cpu_bound scenario measured no executions");
             }});
    }

    // batch_mix: the golden-sentinel shape — ferret + 5×rs under the
    // full Dirigent runtime (sampler events, fine/coarse control).
    {
        auto runner = std::make_shared<harness::ExperimentRunner>(
            bench::defaultConfig(options.executions));
        auto mix = workload::makeMix({"ferret"},
                                     workload::BgSpec::single("rs"));
        auto base = runner->run(mix, core::Scheme::Baseline, {});
        auto deadlines =
            std::make_shared<std::map<std::string, Time>>(
                runner->deadlinesFromBaseline(base));
        scenarios.push_back(
            {"batch_mix", [runner, mix, deadlines] {
                 auto res = runner->run(mix, core::Scheme::Dirigent,
                                        *deadlines);
                 if (res.total == 0)
                     fatal("batch_mix scenario measured no executions");
             }});
    }

    // batch_deterministic: identical mix with OS noise and workload
    // jitter zeroed — pure model throughput, no RNG in the loop.
    {
        harness::HarnessConfig hc = bench::defaultConfig(options.executions);
        hc.machine.noiseEventsPerSec = 0.0;
        auto runner = std::make_shared<harness::ExperimentRunner>(hc);
        auto mix = workload::makeMix({"ferret_det"},
                                     workload::BgSpec::single("rs_det"));
        auto base = runner->run(mix, core::Scheme::Baseline, {});
        auto deadlines =
            std::make_shared<std::map<std::string, Time>>(
                runner->deadlinesFromBaseline(base));
        scenarios.push_back(
            {"batch_deterministic", [runner, mix, deadlines] {
                 auto res = runner->run(mix, core::Scheme::Dirigent,
                                        *deadlines);
                 if (res.total == 0)
                     fatal("batch_deterministic measured no executions");
             }});
    }

    // serving: open-loop Poisson arrivals through the ServeDriver —
    // the event-dense path (arrival events bound every span).
    {
        auto runner = std::make_shared<harness::ExperimentRunner>(
            bench::defaultConfig(options.executions));
        auto mix = workload::makeMix({"ferret"},
                                     workload::BgSpec::single("rs"));
        auto base = runner->run(mix, core::Scheme::Baseline, {});
        auto deadlines =
            std::make_shared<std::map<std::string, Time>>(
                runner->deadlinesFromBaseline(base));
        auto serveSpec = std::make_shared<serve::ServeSpec>();
        serveSpec->arrivals.rate = 2.0;
        serveSpec->horizonSec = options.servingHorizonSec;
        serveSpec->warmupSec =
            std::min(1.0, options.servingHorizonSec / 4.0);
        auto spec = std::make_shared<core::SchemeSpec>(
            core::schemeSpec(core::Scheme::Dirigent));
        scenarios.push_back(
            {"serving", [runner, mix, deadlines, serveSpec, spec] {
                 auto res = runner->runServing(mix, *spec, *serveSpec,
                                               *deadlines);
                 if (res.arrivals == 0)
                     fatal("serving scenario saw no arrivals");
             }});
    }

    for (const Scenario &scenario : scenarios)
        for (const std::string &mode : options.modes)
            report.scenarios.push_back(
                measureScenario(scenario, mode, options));
    return report;
}

namespace {

void
appendScenarioJson(std::ostringstream &out, const ScenarioResult &r,
                   const char *indent)
{
    out << indent << "{\"name\":" << obs::jsonQuote(r.name)
        << ",\"mode\":" << obs::jsonQuote(r.mode)
        << ",\"reps\":" << r.reps << ",\"warmup\":" << r.warmup
        << ",\"quanta_per_run\":" << r.quantaPerRun
        << ",\"median_run_sec\":" << obs::jsonDouble(r.medianRunSec)
        << ",\"min_run_sec\":" << obs::jsonDouble(r.minRunSec)
        << ",\"max_run_sec\":" << obs::jsonDouble(r.maxRunSec)
        << ",\"quanta_per_sec\":" << obs::jsonDouble(r.quantaPerSec)
        << ",\"runs_per_sec\":" << obs::jsonDouble(r.runsPerSec) << "}";
}

/**
 * Baseline row for a current (name, mode) row. Prefers the same mode;
 * falls back to the baseline's reference row so a pre-fast-path
 * snapshot (reference only) still yields fast-vs-reference speedups.
 */
const ScenarioResult *
findScenario(const std::vector<ScenarioResult> &list,
             const std::string &name, const std::string &mode)
{
    const ScenarioResult *reference = nullptr;
    for (const auto &r : list) {
        if (r.name != name)
            continue;
        if (r.mode == mode)
            return &r;
        if (r.mode == "reference")
            reference = &r;
    }
    return reference;
}

} // namespace

std::string
formatSimRateJson(const SimRateReport &report,
                  const std::optional<SimRateBaseline> &baseline)
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"schema_version\": 1,\n";
    out << "  \"bench\": \"sim_rate\",\n";
    out << "  \"quick\": " << (report.options.quick ? "true" : "false")
        << ",\n";
    out << "  \"context\": {\"compiler\": " << obs::jsonQuote(__VERSION__)
        << ", \"build_type\": "
        << obs::jsonQuote(DIRIGENT_BENCH_BUILD_TYPE)
        << ", \"checker\": " << (check::enabled() ? "true" : "false")
        << "},\n";
    out << "  \"scenarios\": [\n";
    for (size_t i = 0; i < report.scenarios.size(); ++i) {
        appendScenarioJson(out, report.scenarios[i], "    ");
        out << (i + 1 < report.scenarios.size() ? ",\n" : "\n");
    }
    out << "  ]";
    if (baseline.has_value()) {
        out << ",\n  \"baseline\": {\"label\": "
            << obs::jsonQuote(baseline->label) << ", \"scenarios\": [\n";
        for (size_t i = 0; i < baseline->scenarios.size(); ++i) {
            appendScenarioJson(out, baseline->scenarios[i], "    ");
            out << (i + 1 < baseline->scenarios.size() ? ",\n" : "\n");
        }
        out << "  ]},\n";
        out << "  \"speedup\": [\n";
        bool first = true;
        for (const auto &cur : report.scenarios) {
            const ScenarioResult *base =
                findScenario(baseline->scenarios, cur.name, cur.mode);
            if (base == nullptr || base->quantaPerSec <= 0.0 ||
                base->runsPerSec <= 0.0) {
                continue;
            }
            if (!first)
                out << ",\n";
            first = false;
            out << "    {\"name\":" << obs::jsonQuote(cur.name)
                << ",\"mode\":" << obs::jsonQuote(cur.mode)
                << ",\"quanta_per_sec_ratio\":"
                << obs::jsonDouble(cur.quantaPerSec / base->quantaPerSec)
                << ",\"runs_per_sec_ratio\":"
                << obs::jsonDouble(cur.runsPerSec / base->runsPerSec)
                << "}";
        }
        out << "\n  ]";
    }
    out << "\n}\n";
    return out.str();
}

std::optional<SimRateBaseline>
baselineFromSnapshot(const std::string &jsonText, const std::string &label)
{
    std::string error;
    auto doc = obs::parseJson(jsonText, &error);
    if (!doc.has_value() || !doc->isObject())
        return std::nullopt;
    const obs::JsonValue *scenarios = doc->find("scenarios");
    if (scenarios == nullptr || !scenarios->isArray())
        return std::nullopt;
    SimRateBaseline base;
    base.label = label;
    for (const auto &entry : scenarios->array) {
        if (!entry.isObject())
            return std::nullopt;
        ScenarioResult r;
        r.name = entry.stringOr("name", "");
        r.mode = entry.stringOr("mode", "");
        r.reps = int(entry.numberOr("reps", 0.0));
        r.warmup = int(entry.numberOr("warmup", 0.0));
        r.quantaPerRun = uint64_t(entry.numberOr("quanta_per_run", 0.0));
        r.medianRunSec = entry.numberOr("median_run_sec", 0.0);
        r.minRunSec = entry.numberOr("min_run_sec", 0.0);
        r.maxRunSec = entry.numberOr("max_run_sec", 0.0);
        r.quantaPerSec = entry.numberOr("quanta_per_sec", 0.0);
        r.runsPerSec = entry.numberOr("runs_per_sec", 0.0);
        base.scenarios.push_back(std::move(r));
    }
    return base;
}

} // namespace dirigent::bench
