/**
 * @file
 * Predictor accuracy under workload drift: average midpoint prediction
 * error (paper Eq. 3) for every builtin predictor kind, driven over
 * identical synthetic executions in four contention regimes —
 *
 *   stationary  constant 1.5x slowdown, every execution
 *   alternate   each execution is flat at 1.9x or 1.15x (seeded coin):
 *               the regime flips *between* executions
 *   midshift    contention steps between 1.9x and 1.15x halfway
 *               through each execution (a co-runner churns mid-run)
 *   ramp        contention builds or drains linearly across each
 *               execution (1.15x ↔ 2.05x)
 *
 * The predictors are driven directly through the CompletionPredictor
 * seam (one observation per profile segment), so this isolates the
 * prediction math from scheduling effects. Midpoint error is scored
 * from the first observation at >= 50% progress, after a warmup of
 * 8 executions so cross-execution state (penalty EMAs, posterior
 * weights) has settled.
 *
 * Expectation: ema is the most accurate when contention is constant
 * within an execution (stationary, alternate) — its prefix-rate
 * scaling is near-optimal there; generative is the most accurate when
 * contention shifts *during* an execution (midshift, ramp), the
 * regime a prefix extrapolation gets structurally wrong.
 */

#include <cmath>
#include <iostream>
#include <map>
#include <sstream>
#include <vector>

#include "common/random.h"
#include "common/strfmt.h"
#include "common/table.h"
#include "dirigent/fallback_predictor.h"
#include "dirigent/predictor_spec.h"
#include "dirigent/profile.h"
#include "harness/report.h"

using namespace dirigent;

namespace {

constexpr unsigned kWarmupExecutions = 8;

core::Profile
syntheticProfile()
{
    std::vector<core::ProfileSegment> segs(
        40, core::ProfileSegment{1e6, Time::ms(5.0)});
    return core::Profile("synthetic-drift", Time::ms(5.0), segs);
}

/** Contention slowdown of segment fraction @p frac in one execution. */
double
slowdown(const std::string &mode, bool flip, double frac)
{
    if (mode == "stationary")
        return 1.5;
    if (mode == "alternate")
        return flip ? 1.9 : 1.15;
    if (mode == "midshift")
        return (frac < 0.5) == flip ? 1.9 : 1.15;
    // ramp: builds (1.15 -> 2.05) or drains (2.05 -> 1.15).
    return flip ? 1.15 + 0.9 * frac : 2.05 - 0.9 * frac;
}

/** Average relative midpoint prediction error over scored executions. */
double
midpointError(const core::PredictorSpec &spec,
              const core::Profile &profile, const std::string &mode,
              unsigned executions, uint64_t seed)
{
    auto pred = core::makePredictor(spec, &profile, seed);
    Rng regimeRng(seed + 1);
    const auto &segs = profile.segments();

    double errorSum = 0.0;
    unsigned scored = 0;
    Time now;
    for (unsigned exec = 0; exec < executions; ++exec) {
        bool flip = regimeRng.chance(0.5);

        double actualSec = 0.0;
        for (size_t i = 0; i < segs.size(); ++i)
            actualSec += segs[i].duration.sec() *
                         slowdown(mode, flip,
                                  double(i) / double(segs.size() - 1));

        pred->beginExecution(now);
        double progress = 0.0;
        double elapsedSec = 0.0;
        double midError = 0.0;
        bool gotMid = false;
        for (size_t i = 0; i < segs.size(); ++i) {
            elapsedSec += segs[i].duration.sec() *
                          slowdown(mode, flip,
                                   double(i) / double(segs.size() - 1));
            progress += segs[i].progress;
            pred->observe(now + Time::sec(elapsedSec), progress);
            if (!gotMid &&
                progress >= 0.5 * profile.totalProgress()) {
                midError = std::fabs(pred->predictTotal().sec() -
                                     actualSec) /
                           actualSec;
                gotMid = true;
            }
        }
        pred->endExecution(now + Time::sec(elapsedSec), progress);
        now += Time::sec(elapsedSec + 0.01);

        if (exec >= kWarmupExecutions && gotMid) {
            errorSum += midError;
            ++scored;
        }
    }
    return scored > 0 ? errorSum / scored : 0.0;
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Ablation: predictor accuracy under workload drift "
                "(EMA vs generative vs decomposition)");

    unsigned executions = harness::envExecutions(40);
    uint64_t seed = harness::envSeed(1234);
    core::Profile profile = syntheticProfile();

    std::vector<std::string> modes = {"stationary", "alternate",
                                      "midshift", "ramp"};

    TextTable table({"drift mode", "predictor", "avg midpoint error"});
    std::cout << "\nCSV:\n";
    std::ostringstream csvBuf;
    CsvWriter csv(csvBuf);
    csv.row({"mode", "predictor", "avg_error"});

    // error[mode][kind], for the closing summary.
    std::map<std::string, std::map<std::string, double>> errors;

    for (const std::string &mode : modes) {
        for (const core::PredictorSpec &spec :
             core::builtinPredictorSpecs()) {
            double err = midpointError(spec, profile, mode,
                                       executions, seed);
            errors[mode][spec.kind] = err;
            table.addRow({mode, spec.kind, TextTable::pct(err)});
            csv.row({mode, spec.kind, strfmt("%.4f", err)});
        }
    }
    table.print(std::cout);

    std::cout << "\n";
    for (const std::string &mode : modes) {
        std::string best;
        double bestErr = 0.0;
        for (const auto &[kind, err] : errors[mode])
            if (best.empty() || err < bestErr) {
                best = kind;
                bestErr = err;
            }
        std::cout << mode << ": best " << best << " ("
                  << TextTable::pct(bestErr) << ")\n";
    }
    std::cout << "\n" << csvBuf.str();

    std::cout
        << "\nExpectation: ema wins while contention is constant "
           "within an execution\n(stationary, alternate — prefix-rate "
           "scaling is near-optimal there);\ngenerative wins once "
           "contention drifts during an execution (midshift,\nramp), "
           "where extrapolating the prefix rate is structurally "
           "wrong.\n";
    return 0;
}
