/**
 * @file
 * End-to-end simulation-rate benchmark: measures quanta/second and
 * runs/second of full harness runs in both stepping modes (reference
 * single-quantum vs event skip-ahead) and writes a schema-validated
 * BENCH_sim_rate.json snapshot (tools/schema/bench.schema.json).
 *
 * Usage:
 *   sim_rate [--out FILE] [--reps N] [--warmup N] [--executions N]
 *            [--serving-horizon SEC] [--quick] [--mode reference|fast]
 *            [--baseline-from FILE] [--baseline-label TEXT]
 *
 * --baseline-from embeds the scenarios of an earlier snapshot as the
 * new snapshot's baseline section, producing a per-scenario speedup
 * table; CI's perf job compares the fresh run against the committed
 * BENCH_sim_rate.json this way.
 */

#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_util.h"
#include "sim_rate_lib.h"

using namespace dirigent;

namespace {

void
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " [--out FILE] [--reps N] [--warmup N] [--executions N]\n"
                 "          [--serving-horizon SEC] [--quick]"
                 " [--mode reference|fast]\n"
                 "          [--baseline-from FILE] [--baseline-label TEXT]\n";
}

} // namespace

int
main(int argc, char **argv)
{
    // Rates are only comparable detached: the invariant checker hooks
    // the engine as an observer, which forces the reference path.
    check::setEnabled(false);

    bench::SimRateOptions opts;
    std::string outPath = "BENCH_sim_rate.json";
    std::string baselineFrom;
    std::string baselineLabel = "committed snapshot";
    std::vector<std::string> modes;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal(strfmt("missing value for %s", arg.c_str()));
            return argv[++i];
        };
        if (arg == "--out") {
            outPath = next();
        } else if (arg == "--reps") {
            opts.reps = std::stoi(next());
        } else if (arg == "--warmup") {
            opts.warmup = std::stoi(next());
        } else if (arg == "--executions") {
            opts.executions = unsigned(std::stoul(next()));
        } else if (arg == "--serving-horizon") {
            opts.servingHorizonSec = std::stod(next());
        } else if (arg == "--quick") {
            bench::SimRateOptions quick = bench::quickSimRateOptions();
            quick.modes = opts.modes;
            opts = quick;
        } else if (arg == "--mode") {
            modes.push_back(next());
        } else if (arg == "--baseline-from") {
            baselineFrom = next();
        } else if (arg == "--baseline-label") {
            baselineLabel = next();
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            fatal(strfmt("unknown argument: %s", arg.c_str()));
        }
    }
    if (!modes.empty())
        opts.modes = modes;
    for (const std::string &mode : opts.modes)
        if (mode != "reference" && mode != "fast")
            fatal(strfmt("unknown mode '%s' (want reference|fast)",
                  mode.c_str()));

    std::optional<bench::SimRateBaseline> baseline;
    if (!baselineFrom.empty()) {
        std::ifstream in(baselineFrom);
        if (!in)
            fatal(strfmt("cannot read baseline snapshot %s",
                  baselineFrom.c_str()));
        std::ostringstream text;
        text << in.rdbuf();
        baseline = bench::baselineFromSnapshot(text.str(), baselineLabel);
        if (!baseline.has_value())
            fatal(strfmt("cannot parse baseline snapshot %s",
                  baselineFrom.c_str()));
    }

    bench::SimRateReport report = bench::runSimRate(opts);

    std::string json = bench::formatSimRateJson(report, baseline);
    std::ofstream out(outPath);
    if (!out)
        fatal(strfmt("cannot write %s", outPath.c_str()));
    out << json;
    out.close();

    std::cout << "scenario              mode       quanta/run   median s"
                 "   Mquanta/s   runs/s\n";
    for (const auto &r : report.scenarios) {
        char line[160];
        std::snprintf(line, sizeof line,
                      "%-21s %-9s %11llu %10.4f %11.3f %8.3f\n",
                      r.name.c_str(), r.mode.c_str(),
                      (unsigned long long)r.quantaPerRun, r.medianRunSec,
                      r.quantaPerSec / 1e6, r.runsPerSec);
        std::cout << line;
    }
    std::cout << "wrote " << outPath << "\n";
    return 0;
}
