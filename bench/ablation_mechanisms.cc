/**
 * @file
 * Ablation: alternative static throttling mechanisms (paper §3.2).
 *
 * The paper's static comparison point throttles BG cores with DVFS.
 * §3.2 discusses memory-bandwidth reservation (MemGuard-style) as an
 * alternative mechanism not yet available in the paper's hardware —
 * implemented here. This bench sweeps static per-BG-core bandwidth
 * caps and compares the resulting FG-QoS / BG-throughput frontier with
 * static DVFS throttling and with Dirigent's dynamic control.
 */

#include <iostream>
#include <sstream>

#include "bench_util.h"

using namespace dirigent;

int
main()
{
    harness::ExperimentRunner runner(bench::defaultConfig(40));
    printBanner(std::cout,
                "Ablation: DVFS vs bandwidth-reservation throttling "
                "(streamcluster + 5x bwaves)");

    auto mix = workload::makeMix({"streamcluster"},
                                 workload::BgSpec::single("bwaves"));
    auto baseline = runner.run(mix, core::Scheme::Baseline, {});
    auto deadlines = runner.deadlinesFromBaseline(baseline);
    harness::applyDeadlines(baseline, deadlines);

    TextTable table({"config", "FG success", "FG mean (s)",
                     "BG throughput"});
    std::cout << "\nCSV:\n";
    std::ostringstream csvBuf;
    CsvWriter csv(csvBuf);
    csv.row({"config", "fg_success", "fg_mean_s", "bg_ratio"});

    auto report = [&](const std::string &name,
                      const harness::SchemeRunResult &res) {
        table.addRow({name, TextTable::pct(res.fgSuccessRatio()),
                      TextTable::num(res.fgDurationMean(), 3),
                      TextTable::pct(
                          harness::bgThroughputRatio(res, baseline))});
        csv.row({name, strfmt("%.4f", res.fgSuccessRatio()),
                 strfmt("%.4f", res.fgDurationMean()),
                 strfmt("%.4f",
                        harness::bgThroughputRatio(res, baseline))});
    };

    report("Baseline", baseline);
    report("StaticFreq (BG at 1.2GHz)",
           runner.run(mix, core::Scheme::StaticFreq, deadlines));

    // Static bandwidth caps, from harsh to generous.
    for (double cap : {0.2e9, 0.4e9, 0.7e9, 1.0e9, 1.5e9}) {
        harness::RunOptions opts;
        opts.bgBandwidthCap = cap;
        auto res =
            runner.run(mix, core::Scheme::Baseline, deadlines, opts);
        report(strfmt("StaticBw (%.1f GB/s per BG core)", cap / 1e9),
               res);
    }

    report("Dirigent (dynamic)",
           runner.run(mix, core::Scheme::Dirigent, deadlines));
    table.print(std::cout);
    std::cout << "\n" << csvBuf.str();

    std::cout << "\nExpectation: bandwidth caps trade BG throughput "
                 "for FG QoS along a frontier\nsimilar to DVFS "
                 "throttling (tight caps protect the FG at a large "
                 "static BG\ncost); Dirigent's dynamic control sits "
                 "above both static frontiers.\n";
    return 0;
}
