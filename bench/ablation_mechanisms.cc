/**
 * @file
 * Ablation: alternative static throttling mechanisms (paper §3.2).
 *
 * The paper's static comparison point throttles BG cores with DVFS.
 * §3.2 discusses memory-bandwidth reservation (MemGuard-style) as an
 * alternative mechanism not yet available in the paper's hardware —
 * implemented here. This bench sweeps static per-BG-core bandwidth
 * caps and compares the resulting FG-QoS / BG-throughput frontier with
 * static DVFS throttling and with Dirigent's dynamic control.
 */

#include <iostream>
#include <sstream>

#include "bench_util.h"

using namespace dirigent;

int
main()
{
    printBanner(std::cout,
                "Ablation: DVFS vs bandwidth-reservation throttling "
                "(streamcluster + 5x bwaves)");

    auto mix = workload::makeMix({"streamcluster"},
                                 workload::BgSpec::single("bwaves"));

    exec::SweepExecutor executor(bench::defaultConfig(40),
                                 bench::defaultExecutorConfig());

    // Stage 1: the Baseline calibration every configuration depends on.
    harness::SchemeRunResult baseline;
    std::map<std::string, Time> deadlines;
    executor.forEach({{mix.name, "Baseline", 0}},
                     [&](size_t, const exec::JobKey &,
                         harness::ExperimentRunner &runner) {
                         baseline = runner.run(
                             mix, core::Scheme::Baseline, {});
                         deadlines =
                             runner.deadlinesFromBaseline(baseline);
                         harness::applyDeadlines(baseline, deadlines);
                     });

    // Stage 2: the throttling mechanisms are independent — shard them.
    struct Cfg
    {
        std::string name;
        core::Scheme scheme;
        double bgBandwidthCap; // 0 = none
    };
    std::vector<Cfg> cfgs = {
        {"StaticFreq (BG at 1.2GHz)", core::Scheme::StaticFreq, 0.0},
    };
    // Static bandwidth caps, from harsh to generous.
    for (double cap : {0.2e9, 0.4e9, 0.7e9, 1.0e9, 1.5e9})
        cfgs.push_back({strfmt("StaticBw (%.1f GB/s per BG core)",
                               cap / 1e9),
                        core::Scheme::Baseline, cap});
    cfgs.push_back({"Dirigent (dynamic)", core::Scheme::Dirigent, 0.0});

    std::vector<harness::SchemeRunResult> results(cfgs.size());
    std::vector<exec::JobKey> keys;
    for (const auto &cfg : cfgs)
        keys.push_back({mix.name, cfg.name, 0});
    executor.forEach(keys, [&](size_t i, const exec::JobKey &,
                               harness::ExperimentRunner &runner) {
        harness::RunOptions opts;
        opts.bgBandwidthCap = cfgs[i].bgBandwidthCap;
        results[i] = runner.run(mix, cfgs[i].scheme, deadlines, opts);
    });

    TextTable table({"config", "FG success", "FG mean (s)",
                     "BG throughput"});
    std::cout << "\nCSV:\n";
    std::ostringstream csvBuf;
    CsvWriter csv(csvBuf);
    csv.row({"config", "fg_success", "fg_mean_s", "bg_ratio"});

    auto report = [&](const std::string &name,
                      const harness::SchemeRunResult &res) {
        table.addRow({name, TextTable::pct(res.fgSuccessRatio()),
                      TextTable::num(res.fgDurationMean(), 3),
                      TextTable::pct(
                          harness::bgThroughputRatio(res, baseline))});
        csv.row({name, strfmt("%.4f", res.fgSuccessRatio()),
                 strfmt("%.4f", res.fgDurationMean()),
                 strfmt("%.4f",
                        harness::bgThroughputRatio(res, baseline))});
    };

    report("Baseline", baseline);
    for (size_t i = 0; i < cfgs.size(); ++i)
        report(cfgs[i].name, results[i]);
    table.print(std::cout);
    std::cout << "\n" << csvBuf.str();

    std::cout << "\nExpectation: bandwidth caps trade BG throughput "
                 "for FG QoS along a frontier\nsimilar to DVFS "
                 "throttling (tight caps protect the FG at a large "
                 "static BG\ncost); Dirigent's dynamic control sits "
                 "above both static frontiers.\n";
    return 0;
}
