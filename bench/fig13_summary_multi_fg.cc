/**
 * @file
 * Figure 13: summary of the 15 multi-FG workload mixes — arithmetic
 * mean FG success ratio and harmonic mean BG throughput per scheme.
 */

#include <iostream>

#include "bench_util.h"

using namespace dirigent;

int
main()
{
    printBanner(std::cout,
                "Fig. 13: summary of all multi-FG workload mixes");
    auto perMix = bench::runAndReport(bench::defaultConfig(25),
                                      workload::multiFgMixes());

    auto summaries = harness::summarizeSchemes(perMix);
    double worst = 1.0;
    for (const auto &mixResults : perMix)
        worst = std::min(worst, mixResults[4].fgSuccessRatio());
    printBanner(std::cout, "Headline numbers");
    std::cout << "Dirigent FG success (mean): "
              << TextTable::pct(summaries[4].meanFgSuccess)
              << "  worst mix: " << TextTable::pct(worst)
              << " (paper: always > 98%)\n";
    return 0;
}
