/**
 * @file
 * Sensitivity ablations the paper reports in §4.2/§4.3:
 *  - EMA weight 0.1–0.3: predictor robust across the range;
 *  - sampling period: even ~40 samples per execution remain accurate;
 *  - pause threshold: Dirigent insensitive to the (arbitrary) 10%.
 */

#include <iostream>
#include <sstream>

#include "bench_util.h"

using namespace dirigent;

namespace {

void
emaWeightAblation()
{
    printBanner(std::cout, "Ablation: predictor EMA weight (paper: "
                           "robust in 0.1-0.3)");
    TextTable table({"weight", "avg midpoint error"});
    std::ostringstream csvBuf;
    CsvWriter csv(csvBuf);
    csv.row({"weight", "avg_error"});
    auto mix =
        workload::makeMix({"raytrace"}, workload::BgSpec::single("rs"));
    for (double w : {0.1, 0.15, 0.2, 0.25, 0.3}) {
        harness::HarnessConfig cfg = bench::defaultConfig(30);
        cfg.runtime.predictor.penaltyEmaWeight = w;
        cfg.runtime.predictor.rateEmaWeight = w;
        harness::ExperimentRunner runner(cfg);
        harness::RunOptions opts;
        opts.attachObserver = true;
        auto res = runner.run(mix, core::Scheme::Baseline, {}, opts);
        table.addRow({TextTable::num(w, 2),
                      TextTable::pct(res.predictionError())});
        csv.numericRow({w, res.predictionError()});
    }
    table.print(std::cout);
    std::cout << "\nCSV:\n" << csvBuf.str();
}

void
samplingPeriodAblation()
{
    printBanner(std::cout, "Ablation: sampling period (paper: ~40 "
                           "samples per execution suffice)");
    TextTable table({"period (ms)", "samples/exec", "avg error"});
    std::ostringstream csvBuf;
    CsvWriter csv(csvBuf);
    csv.row({"period_ms", "samples_per_exec", "avg_error"});
    auto mix =
        workload::makeMix({"raytrace"}, workload::BgSpec::single("rs"));
    for (double ms : {2.5, 5.0, 10.0, 15.0, 20.0}) {
        harness::HarnessConfig cfg = bench::defaultConfig(30);
        cfg.profiler.samplingPeriod = Time::ms(ms);
        cfg.runtime.samplingPeriod = Time::ms(ms);
        harness::ExperimentRunner runner(cfg);
        harness::RunOptions opts;
        opts.attachObserver = true;
        auto res = runner.run(mix, core::Scheme::Baseline, {}, opts);
        double samples =
            res.fgDurationMean() / (ms * 1e-3);
        table.addRow({TextTable::num(ms, 1),
                      TextTable::num(samples, 0),
                      TextTable::pct(res.predictionError())});
        csv.numericRow({ms, samples, res.predictionError()});
    }
    table.print(std::cout);
    std::cout << "\nCSV:\n" << csvBuf.str();
}

void
pauseThresholdAblation()
{
    printBanner(std::cout, "Ablation: pause threshold (paper: "
                           "insensitive around 10%)");
    TextTable table({"threshold", "FG success", "BG throughput"});
    std::ostringstream csvBuf;
    CsvWriter csv(csvBuf);
    csv.row({"threshold", "fg_success", "bg_ratio"});
    auto mix =
        workload::makeMix({"ferret"}, workload::BgSpec::single("rs"));
    harness::HarnessConfig base = bench::defaultConfig(30);
    harness::ExperimentRunner calRunner(base);
    auto baseline = calRunner.run(mix, core::Scheme::Baseline, {});
    auto deadlines = calRunner.deadlinesFromBaseline(baseline);
    for (double thr : {0.05, 0.08, 0.10, 0.15, 0.20}) {
        harness::HarnessConfig cfg = base;
        cfg.runtime.fine.pauseThreshold = thr;
        harness::ExperimentRunner runner(cfg);
        auto res = runner.run(mix, core::Scheme::Dirigent, deadlines);
        table.addRow({TextTable::pct(thr, 0),
                      TextTable::pct(res.fgSuccessRatio()),
                      TextTable::num(
                          harness::bgThroughputRatio(res, baseline),
                          3)});
        csv.numericRow({thr, res.fgSuccessRatio(),
                        harness::bgThroughputRatio(res, baseline)});
    }
    table.print(std::cout);
    std::cout << "\nCSV:\n" << csvBuf.str();
}

void
decisionCadenceAblation()
{
    printBanner(std::cout, "Ablation: control decision cadence "
                           "(paper: every 5 prediction segments)");
    TextTable table({"segments/decision", "FG success",
                     "BG throughput"});
    std::ostringstream csvBuf;
    CsvWriter csv(csvBuf);
    csv.row({"ticks", "fg_success", "bg_ratio"});
    auto mix =
        workload::makeMix({"ferret"}, workload::BgSpec::single("rs"));
    harness::HarnessConfig base = bench::defaultConfig(30);
    harness::ExperimentRunner calRunner(base);
    auto baseline = calRunner.run(mix, core::Scheme::Baseline, {});
    auto deadlines = calRunner.deadlinesFromBaseline(baseline);
    for (unsigned ticks : {2u, 5u, 10u, 20u}) {
        harness::HarnessConfig cfg = base;
        cfg.runtime.decisionPeriodTicks = ticks;
        harness::ExperimentRunner runner(cfg);
        auto res = runner.run(mix, core::Scheme::Dirigent, deadlines);
        table.addRow({strfmt("%u", ticks),
                      TextTable::pct(res.fgSuccessRatio()),
                      TextTable::num(
                          harness::bgThroughputRatio(res, baseline),
                          3)});
        csv.numericRow({double(ticks), res.fgSuccessRatio(),
                        harness::bgThroughputRatio(res, baseline)});
    }
    table.print(std::cout);
    std::cout << "\nCSV:\n" << csvBuf.str();
}

} // namespace

int
main()
{
    emaWeightAblation();
    samplingPeriodAblation();
    pauseThresholdAblation();
    decisionCadenceAblation();
    return 0;
}
