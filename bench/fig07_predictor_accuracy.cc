/**
 * @file
 * Figure 7: predictor accuracy for all 35 single-FG workload mixes
 * (5 FG × 7 BG) in the Baseline configuration: average midpoint
 * prediction error (paper Eq. 3) and the completion-time standard
 * deviation normalized to the mean.
 */

#include <iostream>
#include <sstream>

#include "common/stats.h"
#include "common/table.h"
#include "common/strfmt.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "workload/mix.h"

using namespace dirigent;

int
main()
{
    harness::HarnessConfig cfg;
    cfg.executions = harness::envExecutions(40);
    cfg.seed = harness::envSeed(cfg.seed);
    harness::ExperimentRunner runner(cfg);

    printBanner(std::cout,
                "Fig. 7: predictor accuracy for all 35 single-FG mixes "
                "(Baseline)");

    harness::RunOptions opts;
    opts.attachObserver = true;

    TextTable table({"mix", "average error", "normalized std"});
    std::cout << "\nCSV:\n";
    std::ostringstream csvBuf;
    CsvWriter csv(csvBuf);
    csv.row({"mix", "avg_error", "norm_std"});

    std::vector<double> errors;
    double worst = 0.0;
    std::string worstMix;
    for (const auto &mix : workload::allSingleFgMixes()) {
        auto res = runner.run(mix, core::Scheme::Baseline, {}, opts);
        double err = res.predictionError();
        double normStd = res.fgDurationStd() / res.fgDurationMean();
        errors.push_back(err);
        if (err > worst) {
            worst = err;
            worstMix = mix.name;
        }
        table.addRow({mix.name, TextTable::pct(err),
                      TextTable::pct(normStd)});
        csv.row({mix.name, strfmt("%.4f", err),
                 strfmt("%.4f", normStd)});
    }
    table.print(std::cout);

    std::cout << "\noverall average error: "
              << TextTable::pct(arithmeticMean(errors)) << "\n";
    std::cout << "worst mix: " << worstMix << " ("
              << TextTable::pct(worst) << ")\n";
    size_t above4 = 0;
    for (double e : errors)
        if (e > 0.04)
            ++above4;
    std::cout << "mixes with average error > 4%: " << above4 << " of "
              << errors.size() << "\n";
    std::cout << "\n" << csvBuf.str();

    std::cout << "\nPaper expectation: overall average error ~2.4%; a "
                 "handful of mixes exceed 4%\n(the most "
                 "memory-sensitive FG tasks), worst ~12.5%; normalized "
                 "std is much\nlarger than the prediction error.\n";
    return 0;
}
