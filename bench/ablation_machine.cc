/**
 * @file
 * Ablation: robustness to the machine configuration.
 *
 * The paper evaluates one testbed. This bench varies the two machine
 * parameters Dirigent's mechanisms depend on — LLC capacity and
 * effective memory bandwidth — and checks that the qualitative result
 * (Dirigent ≈ perfect FG success at small BG cost, Baseline far below)
 * holds across the range, i.e. the reproduction is not tuned to one
 * magic configuration.
 */

#include <iostream>
#include <sstream>

#include "bench_util.h"

using namespace dirigent;

namespace {

void
runPoint(const std::string &label, harness::HarnessConfig cfg,
         TextTable &table, CsvWriter &csv)
{
    cfg.executions = harness::envExecutions(30);
    harness::ExperimentRunner runner(cfg);
    auto mix =
        workload::makeMix({"ferret"}, workload::BgSpec::single("rs"));
    auto baseline = runner.run(mix, core::Scheme::Baseline, {});
    auto deadlines = runner.deadlinesFromBaseline(baseline);
    harness::applyDeadlines(baseline, deadlines);
    auto dirigent = runner.run(mix, core::Scheme::Dirigent, deadlines);

    table.addRow({label, TextTable::pct(baseline.fgSuccessRatio()),
                  TextTable::pct(dirigent.fgSuccessRatio()),
                  TextTable::num(
                      harness::stdRatio(dirigent, baseline), 3),
                  TextTable::pct(
                      harness::bgThroughputRatio(dirigent, baseline))});
    csv.row({label, strfmt("%.4f", baseline.fgSuccessRatio()),
             strfmt("%.4f", dirigent.fgSuccessRatio()),
             strfmt("%.4f", harness::stdRatio(dirigent, baseline)),
             strfmt("%.4f",
                    harness::bgThroughputRatio(dirigent, baseline))});
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Ablation: machine-configuration robustness "
                "(ferret + 5x RS)");

    TextTable table({"machine", "Baseline success", "Dirigent success",
                     "Dirigent norm std", "Dirigent BG kept"});
    std::ostringstream csvBuf;
    CsvWriter csv(csvBuf);
    csv.row({"machine", "baseline_success", "dirigent_success",
             "dirigent_norm_std", "dirigent_bg"});

    // LLC capacity sweep (ways at fixed way size).
    for (unsigned ways : {12u, 20u, 28u}) {
        harness::HarnessConfig cfg;
        cfg.machine.cache.numWays = ways;
        runPoint(strfmt("LLC %u ways (%.1f MiB)", ways,
                        ways * 0.75),
                 cfg, table, csv);
    }
    // Memory bandwidth sweep.
    for (double gbps : {6.0, 8.5, 12.0}) {
        harness::HarnessConfig cfg;
        cfg.machine.dram.peakBandwidth = gbps * 1e9;
        runPoint(strfmt("DRAM %.1f GB/s", gbps), cfg, table, csv);
    }
    // DVFS floor sweep (how much throttling range exists).
    for (double minGhz : {1.0, 1.2, 1.5}) {
        harness::HarnessConfig cfg;
        cfg.machine.minFreq = Freq::ghz(minGhz);
        runPoint(strfmt("DVFS floor %.1f GHz", minGhz), cfg, table,
                 csv);
    }
    table.print(std::cout);
    std::cout << "\nCSV:\n" << csvBuf.str();

    std::cout << "\nExpectation: across cache sizes, bandwidths and "
                 "DVFS ranges, Baseline\nsuccess stays near the ~60% "
                 "implied by the deadline formula while Dirigent\n"
                 "stays near 100% with large variance reduction — the "
                 "result is a property of\nthe control loop, not of "
                 "one machine point.\n";
    return 0;
}
