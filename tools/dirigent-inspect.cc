/**
 * @file
 * Trace inspection CLI: reads the combined Perfetto/exact trace
 * documents written by `run_experiment --trace-out` (the lossless
 * "dirigent" section), the per-request span documents written by
 * `--span-out`, and the Prometheus text files written by
 * `--metrics-out` — and answers questions about a recorded run, most
 * importantly "why did this deadline or SLO get missed?".
 *
 * Usage:
 *   dirigent-inspect summary       RUN.json
 *   dirigent-inspect why-miss      RUN.json|SPANS.json [--window MS]
 *                                  [--fg SLOT] [--target SEC]
 *   dirigent-inspect csv           RUN.json
 *   dirigent-inspect critical-path SPANS.json TRACE_ID
 *   dirigent-inspect slowest       SPANS.json [--top N]
 *   dirigent-inspect prom          FILE.prom
 *   dirigent-inspect validate      FILE.json SCHEMA.json
 *
 * `summary` prints the run manifest plus series/event/slice counts.
 * `why-miss` walks every missed FG execution (batch runs) or every
 * SLO-violating request (serving runs / span documents) and
 * reconstructs its decision window: queue-wait/service decomposition,
 * the admission limit at arrival, and the controller decisions and
 * fault events leading up to the miss. `critical-path` prints one
 * request's stage timeline and causally linked decisions.
 * `slowest` ranks completed requests by end-to-end latency.
 * `prom` parses a Prometheus text file and checks that re-rendering
 * it reproduces the input byte for byte. `csv` dumps every series as
 * flat CSV. `validate` checks any JSON document against a JSON-Schema
 * subset (see obs/export.h) — used by CI against tools/schema/.
 *
 * Unknown subcommands and missing file arguments exit non-zero (2)
 * with the usage text on stderr.
 */

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/strfmt.h"
#include "obs/export.h"
#include "obs/fleet.h"
#include "obs/json.h"
#include "obs/span.h"

using namespace dirigent;
using namespace dirigent::obs;

namespace {

[[noreturn]] void
usage()
{
    std::cerr
        << "usage: dirigent-inspect summary       RUN.json\n"
           "       dirigent-inspect why-miss      RUN.json|SPANS.json "
           "[--window MS] [--fg SLOT] [--target SEC]\n"
           "       dirigent-inspect csv           RUN.json\n"
           "       dirigent-inspect critical-path SPANS.json TRACE_ID\n"
           "       dirigent-inspect slowest       SPANS.json [--top N]\n"
           "       dirigent-inspect prom          FILE.prom\n"
           "       dirigent-inspect validate      FILE.json "
           "SCHEMA.json\n";
    std::exit(2);
}

RunData
loadOrDie(const std::string &path)
{
    std::string error;
    auto run = loadRunFile(path, &error);
    if (!run) {
        std::cerr << "dirigent-inspect: cannot load '" << path
                  << "': " << error << "\n";
        std::exit(1);
    }
    return std::move(*run);
}

std::vector<Span>
loadSpansOrDie(const std::string &path)
{
    std::string error;
    auto spans = loadSpansFile(path, &error);
    if (!spans) {
        std::cerr << "dirigent-inspect: cannot load spans from '"
                  << path << "': " << error << "\n";
        std::exit(1);
    }
    return std::move(*spans);
}

/** Last sample of @p s at or before @p t (NaN when none). */
double
valueAt(const Series *s, double t)
{
    if (s == nullptr || s->times.empty())
        return std::nan("");
    auto it = std::upper_bound(s->times.begin(), s->times.end(), t);
    if (it == s->times.begin())
        return std::nan("");
    return s->values[size_t(it - s->times.begin()) - 1];
}

std::string
num(double v, const char *fmt = "%.4g")
{
    return std::isnan(v) ? std::string("n/a") : strfmt(fmt, v);
}

void
cmdSummary(const RunData &run)
{
    const RunManifest &m = run.manifest;
    std::cout << "run: mix=" << m.mixName << " scheme=" << m.scheme
              << " seed=" << m.seed << "\n"
              << "tool: " << m.tool << " (" << m.version << ")\n"
              << "window: warmup=" << m.warmup
              << " executions=" << m.executions << " sampling="
              << strfmt("%.3gms", m.samplingPeriod.sec() * 1e3)
              << " decisionPeriodTicks=" << m.decisionPeriodTicks
              << "\n";
    if (m.faultPlanHash != 0) {
        std::cout << "faults: hash=" << m.faultPlanHash << "\n";
        std::istringstream in(m.faultPlanText);
        std::string line;
        while (std::getline(in, line))
            if (!line.empty())
                std::cout << "    " << line << "\n";
    }
    if (m.schemeSpecHash != 0) {
        std::cout << "scheme spec: hash=" << m.schemeSpecHash << "\n";
        std::istringstream in(m.schemeSpecText);
        std::string line;
        while (std::getline(in, line))
            if (!line.empty())
                std::cout << "    " << line << "\n";
    }
    for (const auto &[key, value] : m.extra)
        std::cout << key << ": " << value << "\n";

    std::cout << "series: " << run.series.size() << "\n";
    for (const auto &s : run.series)
        std::cout << "    " << s.name << " [" << s.unit << "] "
                  << s.times.size() << " samples\n";

    size_t decisions = 0, faults = 0;
    for (const auto &e : run.events)
        (e.category == "fault" ? faults : decisions) += 1;
    std::cout << "events: " << decisions << " decisions, " << faults
              << " faults\n";

    size_t misses = 0;
    for (const auto &s : run.slices)
        misses += s.missed ? 1 : 0;
    std::cout << "slices: " << run.slices.size()
              << " FG executions, " << misses << " deadline misses\n";

    // Serving-mode runs carry a request summary in the manifest and
    // (optionally) the per-request records in the exact section.
    if (m.requests.present) {
        const auto &r = m.requests;
        std::cout << strfmt(
            "requests: %llu arrivals, %llu completed, %llu dropped, "
            "%llu shed\n",
            (unsigned long long)r.arrivals,
            (unsigned long long)r.completed,
            (unsigned long long)r.dropped, (unsigned long long)r.shed);
        std::cout << "    response: mean=" << num(r.meanSec)
                  << " s p50=" << num(r.p50Sec) << " s p95="
                  << num(r.p95Sec) << " s p99=" << num(r.p99Sec)
                  << " s p999=" << num(r.p999Sec) << " s\n";
        for (const auto &v : r.slos)
            std::cout << "    slo " << v.label << ": target "
                      << num(v.targetSec) << " s, achieved "
                      << num(v.achievedSec) << " s -> "
                      << (v.met ? "met" : "MISSED") << "\n";
        if (!r.slos.empty())
            std::cout << "    slo_met: "
                      << (r.sloMet ? "true" : "false") << "\n";
        for (const auto &b : r.burnRates)
            std::cout << strfmt(
                "    burn %s %s: budget %s, %llu/%llu errors, "
                "max %sx mean %sx -> %s\n",
                b.scope.c_str(), b.label.c_str(),
                num(b.budget).c_str(), (unsigned long long)b.errors,
                (unsigned long long)b.total, num(b.maxBurn).c_str(),
                num(b.meanBurn).c_str(),
                b.exhausted ? "EXHAUSTED" : "within budget");
    }
    // Cluster-mode manifests carry the fleet summary.
    if (m.cluster.present) {
        const auto &c = m.cluster;
        std::cout << strfmt(
            "cluster: policy=%s nodes=%u %llu generated "
            "(%llu completed, %llu dropped, %llu shed)%s\n",
            c.policy.c_str(), c.nodes,
            (unsigned long long)c.generated,
            (unsigned long long)c.completed,
            (unsigned long long)c.dropped, (unsigned long long)c.shed,
            c.degraded ? " DEGRADED" : "");
        std::cout << "    response: mean=" << num(c.meanSec)
                  << " s p50=" << num(c.p50Sec) << " s p95="
                  << num(c.p95Sec) << " s p99=" << num(c.p99Sec)
                  << " s p999=" << num(c.p999Sec) << " s\n";
        std::cout << strfmt(
            "    utilization: mean=%.1f%% min=%.1f%% max=%.1f%% "
            "imbalance=%.2f\n",
            c.utilizationMean * 100.0, c.utilizationMin * 100.0,
            c.utilizationMax * 100.0, c.imbalance);
        for (const auto &v : c.slos)
            std::cout << "    slo " << v.label << ": target "
                      << num(v.targetSec) << " s, achieved "
                      << num(v.achievedSec) << " s -> "
                      << (v.met ? "met" : "MISSED") << "\n";
        if (!c.slos.empty())
            std::cout << "    slo_met: "
                      << (c.sloMet ? "true" : "false") << "\n";
        for (const auto &b : c.burnRates)
            std::cout << strfmt(
                "    burn %s %s: budget %s, %llu/%llu errors, "
                "max %sx mean %sx -> %s\n",
                b.scope.c_str(), b.label.c_str(),
                num(b.budget).c_str(), (unsigned long long)b.errors,
                (unsigned long long)b.total, num(b.maxBurn).c_str(),
                num(b.meanBurn).c_str(),
                b.exhausted ? "EXHAUSTED" : "within budget");
        for (const auto &n : c.perNode) {
            std::cout << strfmt(
                "    node%u: %s/%s speed=%g %llu arrivals, "
                "p99=%s s, util=%.1f%%%s\n",
                n.node, n.mix.c_str(), n.scheme.c_str(), n.speed,
                (unsigned long long)n.arrivals,
                num(n.p99Sec).c_str(), n.utilization * 100.0,
                n.degraded ? " DEGRADED" : "");
            if (n.faultPlanHash != 0)
                std::cout << strfmt(
                    "        faults: hash=%llu%s%s\n",
                    (unsigned long long)n.faultPlanHash,
                    n.faultsFile.empty() ? "" : " plan=",
                    n.faultsFile.c_str());
        }
    }
    if (!run.requests.empty()) {
        size_t completed = 0, dropped = 0, shed = 0;
        size_t maxDepth = 0;
        for (const auto &req : run.requests) {
            completed += req.outcome == "completed" ? 1 : 0;
            dropped += req.outcome == "dropped" ? 1 : 0;
            shed += req.outcome == "shed" ? 1 : 0;
            maxDepth = std::max(maxDepth, req.queueDepth);
        }
        std::cout << "request records: " << run.requests.size() << " ("
                  << completed << " completed, " << dropped
                  << " dropped, " << shed << " shed), max queue depth "
                  << maxDepth << "\n";
    }
}

void
printMiss(const RunData &run, const ExecutionSlice &slice,
          double windowSec)
{
    const double start = slice.start.sec();
    const double end = slice.end.sec();
    const double from = std::max(0.0, start - windowSec);

    std::cout << strfmt("\nmiss: fg%u pid=%u %s execution #%llu\n",
                        slice.fgSlot, slice.pid,
                        slice.program.c_str(),
                        (unsigned long long)slice.executionIndex);
    std::cout << strfmt(
        "    ran %.6f s .. %.6f s: duration %.4f s vs deadline %.4f s "
        "(%+.1f%%)\n",
        start, end, slice.duration().sec(), slice.deadlineSec,
        slice.deadlineSec > 0.0
            ? (slice.duration().sec() / slice.deadlineSec - 1.0) * 100.0
            : 0.0);
    std::cout << strfmt(
        "    last prediction before completion: %.4f s\n",
        slice.predictedSec);

    // The predictor/machine view at the time of the miss.
    std::string slot = strfmt("fg%u", slice.fgSlot);
    std::cout << "    at miss: slack_ratio="
              << num(valueAt(run.findSeries(slot + ".slack_ratio"), end))
              << " alpha_ma="
              << num(valueAt(run.findSeries(slot + ".alpha_ma"), end))
              << " progress="
              << num(valueAt(run.findSeries(slot + ".progress_fraction"),
                             end))
              << " cat.fg_ways="
              << num(valueAt(run.findSeries("cat.fg_ways"), end), "%.0f")
              << " core" << slice.fgSlot << ".freq="
              << num(valueAt(run.findSeries(
                                 strfmt("core%u.freq_ghz", slice.fgSlot)),
                             end))
              << " GHz\n";

    // Decision window: every decision/fault in [start - window, end].
    size_t shown = 0;
    for (const auto &e : run.events) {
        double t = e.when.sec();
        if (t < from || t > end)
            continue;
        std::cout << strfmt("    %10.6f s  %-8s %-18s", t,
                            e.category.c_str(), e.name.c_str());
        if (e.pid != 0)
            std::cout << strfmt(" pid=%u", e.pid);
        if (e.category == "decision")
            std::cout << strfmt(" slack=%.3f", e.value);
        if (!e.detail.empty())
            std::cout << "  " << e.detail;
        std::cout << "\n";
        ++shown;
    }
    if (shown == 0)
        std::cout << strfmt(
            "    no decisions or faults recorded in the %.0f ms before "
            "the miss\n",
            windowSec * 1e3);
}

/** One violating request's queue-wait/service/shed decomposition. */
void
printRequestMiss(const RunData &run, const RequestRecord &req,
                 double targetSec, double windowSec)
{
    const double arrived = req.arrived.sec();
    const bool started = !req.started.isNever();
    const double end =
        req.finished.isNever() ? arrived : req.finished.sec();

    std::cout << strfmt("\nviolation: fg%u pid=%u request #%llu -> %s\n",
                        req.fgSlot, req.pid,
                        (unsigned long long)req.id,
                        req.outcome.c_str());
    if (req.outcome == "completed") {
        const double queueWait = req.started.sec() - arrived;
        const double service = req.finished.sec() - req.started.sec();
        std::cout << strfmt(
            "    response %.4f s vs target %.4f s (%+.1f%%): "
            "queue_wait %.4f s (%.0f%%) + service %.4f s (%.0f%%)\n",
            req.responseSec, targetSec,
            targetSec > 0.0
                ? (req.responseSec / targetSec - 1.0) * 100.0
                : 0.0,
            queueWait,
            req.responseSec > 0.0
                ? queueWait / req.responseSec * 100.0
                : 0.0,
            service,
            req.responseSec > 0.0
                ? service / req.responseSec * 100.0
                : 0.0);
    } else {
        std::cout << strfmt(
            "    rejected at arrival (%s): never %s\n",
            req.outcome == "shed" ? "admission control"
                                  : "queue full",
            started ? "finished" : "started");
    }
    std::cout << strfmt("    at arrival (%.6f s): queue depth %zu\n",
                        arrived, req.queueDepth);

    // Decision window: every decision/fault in [arrived - window, end].
    const double from = std::max(0.0, arrived - windowSec);
    size_t shown = 0;
    for (const auto &e : run.events) {
        double t = e.when.sec();
        if (t < from || t > end)
            continue;
        if (e.pid != 0 && e.pid != req.pid)
            continue;
        std::cout << strfmt("    %10.6f s  %-8s %-18s", t,
                            e.category.c_str(), e.name.c_str());
        if (e.pid != 0)
            std::cout << strfmt(" pid=%u", e.pid);
        if (e.category == "decision")
            std::cout << strfmt(" slack=%.3f", e.value);
        if (!e.detail.empty())
            std::cout << "  " << e.detail;
        std::cout << "\n";
        ++shown;
    }
    if (shown == 0)
        std::cout << "    no decisions or faults recorded in the "
                     "request's window\n";
}

int
cmdWhyMiss(const RunData &run, double windowSec, int fgFilter,
           double targetOverrideSec)
{
    std::vector<const ExecutionSlice *> misses;
    for (const auto &s : run.slices)
        if (s.missed && (fgFilter < 0 || int(s.fgSlot) == fgFilter))
            misses.push_back(&s);

    // Serving runs: judge the request records against the tightest SLO
    // target (or the --target override).
    double targetSec = targetOverrideSec;
    if (std::isnan(targetSec))
        for (const auto &v : run.manifest.requests.slos)
            if (std::isnan(targetSec) || v.targetSec < targetSec)
                targetSec = v.targetSec;
    std::vector<const RequestRecord *> violations;
    for (const auto &req : run.requests) {
        if (fgFilter >= 0 && int(req.fgSlot) != fgFilter)
            continue;
        bool violating =
            req.outcome != "completed" ||
            (!std::isnan(targetSec) && req.responseSec > targetSec);
        if (violating)
            violations.push_back(&req);
    }

    if (misses.empty() && violations.empty()) {
        std::cout << "no deadline misses or SLO violations recorded";
        if (fgFilter >= 0)
            std::cout << " for fg" << fgFilter;
        std::cout << " (" << run.slices.size() << " executions, "
                  << run.requests.size() << " requests)\n";
        return 0;
    }

    if (!misses.empty()) {
        std::cout << misses.size() << " deadline miss"
                  << (misses.size() == 1 ? "" : "es") << " of "
                  << run.slices.size() << " executions ("
                  << run.manifest.mixName << "/" << run.manifest.scheme
                  << ", window " << strfmt("%.0f", windowSec * 1e3)
                  << " ms):\n";
        for (const auto *slice : misses)
            printMiss(run, *slice, windowSec);
    }
    if (!violations.empty()) {
        std::cout << violations.size() << " SLO violation"
                  << (violations.size() == 1 ? "" : "s") << " of "
                  << run.requests.size() << " requests ("
                  << run.manifest.mixName << "/" << run.manifest.scheme;
        if (!std::isnan(targetSec))
            std::cout << ", target " << num(targetSec) << " s";
        std::cout << "):\n";
        for (const auto *req : violations)
            printRequestMiss(run, *req, targetSec, windowSec);
    }
    return 0;
}

void
printSpanLinks(const Span &span)
{
    for (const auto &link : span.links) {
        std::cout << strfmt("    %10.6f s  decision %-18s",
                            link.tSec, link.action.c_str());
        if (link.pid != 0)
            std::cout << strfmt(" pid=%u", link.pid);
        std::cout << strfmt(" value=%.3f", link.value);
        if (!link.detail.empty())
            std::cout << "  " << link.detail;
        std::cout << "\n";
    }
    if (span.links.empty())
        std::cout << "    no linked decisions inside the span's "
                     "window\n";
}

/** Span-document why-miss: stage decomposition per violating span. */
int
cmdWhyMissSpans(const std::vector<Span> &spans, int fgFilter,
                double targetSec)
{
    std::vector<const Span *> violations;
    for (const auto &span : spans) {
        if (fgFilter >= 0 && int(span.fgSlot) != fgFilter)
            continue;
        bool violating =
            span.outcome != "completed" ||
            (!std::isnan(targetSec) && span.e2eSec() > targetSec);
        if (violating)
            violations.push_back(&span);
    }
    if (violations.empty()) {
        std::cout << "no SLO violations recorded";
        if (fgFilter >= 0)
            std::cout << " for fg" << fgFilter;
        std::cout << " (" << spans.size() << " spans";
        if (std::isnan(targetSec))
            std::cout << "; pass --target SEC to judge completed "
                         "requests";
        std::cout << ")\n";
        return 0;
    }

    std::cout << violations.size() << " SLO violation"
              << (violations.size() == 1 ? "" : "s") << " of "
              << spans.size() << " spans";
    if (!std::isnan(targetSec))
        std::cout << " (target " << num(targetSec) << " s)";
    std::cout << ":\n";
    for (const auto *span : violations) {
        std::cout << strfmt(
            "\nviolation: trace %llu node%u fg%u request #%llu -> %s\n",
            (unsigned long long)span->traceId, span->node, span->fgSlot,
            (unsigned long long)span->requestId,
            span->outcome.c_str());
        if (span->outcome == "completed") {
            std::cout << strfmt("    e2e %.4f s:", span->e2eSec());
            for (const auto &stage : span->stages)
                std::cout << strfmt(
                    " %s %.4f s (%.0f%%)", stage.name.c_str(),
                    stage.durationSec(),
                    span->e2eSec() > 0.0
                        ? stage.durationSec() / span->e2eSec() * 100.0
                        : 0.0);
            std::cout << "\n";
        } else {
            std::cout << strfmt(
                "    rejected at arrival %.6f s (%s)\n",
                span->arrivedSec,
                span->outcome == "shed" ? "admission control"
                                        : "queue full");
        }
        std::cout << strfmt(
            "    at arrival: queue depth %zu, admission limit %s\n",
            span->queueDepth,
            span->admitLimit > 0.0 ? num(span->admitLimit).c_str()
                                   : "none");
        printSpanLinks(*span);
    }
    return 0;
}

int
cmdCriticalPath(const std::string &path, const std::string &traceIdArg)
{
    uint64_t traceId = std::strtoull(traceIdArg.c_str(), nullptr, 10);
    auto spans = loadSpansOrDie(path);
    const Span *match = nullptr;
    for (const auto &span : spans)
        if (span.traceId == traceId) {
            match = &span;
            break;
        }
    if (match == nullptr) {
        std::cerr << "dirigent-inspect: no span with trace id "
                  << traceIdArg << " in '" << path << "' ("
                  << spans.size() << " spans)\n";
        return 1;
    }

    std::cout << strfmt(
        "trace %llu: node%u fg%u pid=%u request #%llu -> %s\n",
        (unsigned long long)match->traceId, match->node, match->fgSlot,
        match->pid, (unsigned long long)match->requestId,
        match->outcome.c_str());
    std::cout << strfmt(
        "    arrived %.6f s, queue depth %zu, admission limit %s\n",
        match->arrivedSec, match->queueDepth,
        match->admitLimit > 0.0 ? num(match->admitLimit).c_str()
                                : "none");
    const SpanStage *dominant = match->dominantStage();
    for (const auto &stage : match->stages)
        std::cout << strfmt(
            "    %10.6f s .. %10.6f s  %-10s %.4f s%s\n",
            stage.startSec, stage.endSec, stage.name.c_str(),
            stage.durationSec(),
            &stage == dominant ? "  <- critical" : "");
    if (match->stages.empty())
        std::cout << "    no stages: the request was rejected at "
                     "arrival\n";
    if (!std::isnan(match->e2eSec()))
        std::cout << strfmt("    e2e %.4f s\n", match->e2eSec());
    printSpanLinks(*match);
    return 0;
}

int
cmdSlowest(const std::string &path, size_t top)
{
    auto spans = loadSpansOrDie(path);
    std::vector<const Span *> completed;
    size_t rejected = 0;
    for (const auto &span : spans) {
        if (span.outcome == "completed")
            completed.push_back(&span);
        else
            ++rejected;
    }
    // Ties broken by canonical identity so output is deterministic.
    std::sort(completed.begin(), completed.end(),
              [](const Span *a, const Span *b) {
                  if (a->e2eSec() != b->e2eSec())
                      return a->e2eSec() > b->e2eSec();
                  if (a->node != b->node)
                      return a->node < b->node;
                  if (a->fgSlot != b->fgSlot)
                      return a->fgSlot < b->fgSlot;
                  return a->requestId < b->requestId;
              });
    if (completed.size() > top)
        completed.resize(top);

    std::cout << "slowest " << completed.size() << " of "
              << spans.size() << " spans (" << rejected
              << " rejected):\n";
    for (const auto *span : completed) {
        const SpanStage *dominant = span->dominantStage();
        std::cout << strfmt(
            "    trace %-20llu node%u fg%u request #%-6llu "
            "e2e %.4f s  dominant %s %.4f s (%.0f%%)\n",
            (unsigned long long)span->traceId, span->node, span->fgSlot,
            (unsigned long long)span->requestId, span->e2eSec(),
            dominant != nullptr ? dominant->name.c_str() : "-",
            dominant != nullptr ? dominant->durationSec() : 0.0,
            dominant != nullptr && span->e2eSec() > 0.0
                ? dominant->durationSec() / span->e2eSec() * 100.0
                : 0.0);
    }
    return 0;
}

int
cmdProm(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::cerr << "dirigent-inspect: cannot open '" << path
                  << "'\n";
        return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    std::string error;
    auto doc = parsePrometheus(text, &error);
    if (!doc) {
        std::cerr << path << ": parse error: " << error << "\n";
        return 1;
    }
    size_t samples = 0;
    for (const auto &family : doc->families) {
        samples += family.samples.size();
        std::cout << family.name << " (" << family.type << "): "
                  << family.samples.size() << " samples\n";
    }
    std::cout << doc->families.size() << " families, " << samples
              << " samples\n";

    // The exporter and parser are exact inverses; anything else means
    // a lossy export.
    if (renderPrometheus(*doc) != text) {
        std::cerr << path << ": round-trip mismatch: re-rendering the "
                     "parsed document does not reproduce the input\n";
        return 1;
    }
    std::cout << "round-trip: byte-identical\n";
    return 0;
}

int
cmdValidate(const std::string &filePath, const std::string &schemaPath)
{
    auto slurp = [](const std::string &path) -> std::string {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            std::cerr << "dirigent-inspect: cannot open '" << path
                      << "'\n";
            std::exit(1);
        }
        std::ostringstream out;
        out << in.rdbuf();
        return out.str();
    };
    std::string error;
    auto doc = parseJson(slurp(filePath), &error);
    if (!doc) {
        std::cerr << filePath << ": parse error: " << error << "\n";
        return 1;
    }
    auto schema = parseJson(slurp(schemaPath), &error);
    if (!schema) {
        std::cerr << schemaPath << ": parse error: " << error << "\n";
        return 1;
    }
    std::string violation = validateAgainstSchema(*doc, *schema);
    if (!violation.empty()) {
        std::cerr << filePath << ": schema violation: " << violation
                  << "\n";
        return 1;
    }
    std::cout << filePath << ": valid against " << schemaPath << "\n";
    return 0;
}

bool
knownCommand(const std::string &cmd)
{
    static const char *known[] = {"summary",       "why-miss", "csv",
                                  "critical-path", "slowest",  "prom",
                                  "validate"};
    for (const char *k : known)
        if (cmd == k)
            return true;
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    std::string cmd = argv[1];
    // Reject unknown subcommands before touching any file: a typo must
    // exit non-zero with the usage text, not a confusing load error.
    if (!knownCommand(cmd)) {
        std::cerr << "dirigent-inspect: unknown subcommand '" << cmd
                  << "'\n";
        usage();
    }
    if (argc < 3) {
        std::cerr << "dirigent-inspect: " << cmd
                  << " requires a file argument\n";
        usage();
    }

    if (cmd == "validate") {
        if (argc != 4) {
            std::cerr << "dirigent-inspect: validate takes FILE.json "
                         "and SCHEMA.json\n";
            usage();
        }
        return cmdValidate(argv[2], argv[3]);
    }
    if (cmd == "prom")
        return cmdProm(argv[2]);
    if (cmd == "critical-path") {
        if (argc != 4) {
            std::cerr << "dirigent-inspect: critical-path takes "
                         "SPANS.json and a TRACE_ID\n";
            usage();
        }
        return cmdCriticalPath(argv[2], argv[3]);
    }

    std::string runPath = argv[2];
    double windowSec = 0.050;
    double targetSec = std::nan("");
    int fgFilter = -1;
    size_t top = 10;
    for (int i = 3; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--window" && i + 1 < argc) {
            windowSec = std::strtod(argv[++i], nullptr) / 1e3;
        } else if (arg == "--fg" && i + 1 < argc) {
            fgFilter = int(std::strtol(argv[++i], nullptr, 10));
        } else if (arg == "--target" && i + 1 < argc) {
            targetSec = std::strtod(argv[++i], nullptr);
        } else if (arg == "--top" && i + 1 < argc) {
            top = size_t(std::strtoul(argv[++i], nullptr, 10));
        } else {
            std::cerr << "dirigent-inspect: unknown option '" << arg
                      << "'\n";
            usage();
        }
    }

    if (cmd == "slowest")
        return cmdSlowest(runPath, top);

    if (cmd == "summary") {
        // summary also accepts a bare *.manifest.json (no trace
        // document around it) — cluster cells and sweep manifests are
        // written that way.
        std::string error;
        auto run = loadRunFile(runPath, &error);
        if (run) {
            cmdSummary(*run);
            return 0;
        }
        std::ifstream in(runPath, std::ios::binary);
        std::ostringstream text;
        if (in)
            text << in.rdbuf();
        std::string parseError;
        auto doc = parseJson(text.str(), &parseError);
        if (doc && doc->isObject() && doc->find("tool") != nullptr) {
            RunData bare;
            bare.manifest = RunManifest::fromJson(*doc);
            cmdSummary(bare);
            return 0;
        }
        std::cerr << "dirigent-inspect: cannot load '" << runPath
                  << "': " << error << "\n";
        return 1;
    }

    if (cmd == "why-miss") {
        // A spans document gets the span-based decomposition; anything
        // else is treated as a recorded run/trace document.
        {
            std::ifstream in(runPath, std::ios::binary);
            std::ostringstream text;
            if (in)
                text << in.rdbuf();
            std::string parseError;
            auto doc = parseJson(text.str(), &parseError);
            if (doc && doc->isObject() &&
                doc->stringOr("schema", "") == "dirigent-spans-v1") {
                auto spans = parseSpans(*doc, &parseError);
                if (!spans) {
                    std::cerr << "dirigent-inspect: cannot load spans "
                                 "from '"
                              << runPath << "': " << parseError << "\n";
                    return 1;
                }
                return cmdWhyMissSpans(*spans, fgFilter, targetSec);
            }
        }
        RunData run = loadOrDie(runPath);
        return cmdWhyMiss(run, windowSec, fgFilter, targetSec);
    }

    RunData run = loadOrDie(runPath);
    writeSeriesCsv(std::cout, run); // cmd == "csv"
    return 0;
}
