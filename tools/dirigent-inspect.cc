/**
 * @file
 * Trace inspection CLI: reads the combined Perfetto/exact trace
 * documents written by `run_experiment --trace-out` (the lossless
 * "dirigent" section) and answers questions about a recorded run —
 * most importantly "why did FG k miss its deadline?".
 *
 * Usage:
 *   dirigent-inspect summary  RUN.json
 *   dirigent-inspect why-miss RUN.json [--window MS] [--fg SLOT]
 *   dirigent-inspect csv      RUN.json
 *   dirigent-inspect validate FILE.json SCHEMA.json
 *
 * `summary` prints the run manifest plus series/event/slice counts.
 * `why-miss` walks every missed FG execution and reconstructs its
 * decision window: the controller decisions and fault events leading
 * up to the miss, the predictor's view (predicted total, slack ratio,
 * MA({α})), and the machine state (DVFS grades, CAT partition) at the
 * time of the miss. `csv` dumps every series as flat CSV. `validate`
 * checks any JSON document against a JSON-Schema subset (see
 * obs/export.h) — used by CI against tools/schema/.
 */

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/strfmt.h"
#include "obs/export.h"
#include "obs/json.h"

using namespace dirigent;
using namespace dirigent::obs;

namespace {

[[noreturn]] void
usage()
{
    std::cerr
        << "usage: dirigent-inspect summary  RUN.json\n"
           "       dirigent-inspect why-miss RUN.json [--window MS] "
           "[--fg SLOT]\n"
           "       dirigent-inspect csv      RUN.json\n"
           "       dirigent-inspect validate FILE.json SCHEMA.json\n";
    std::exit(2);
}

RunData
loadOrDie(const std::string &path)
{
    std::string error;
    auto run = loadRunFile(path, &error);
    if (!run) {
        std::cerr << "dirigent-inspect: cannot load '" << path
                  << "': " << error << "\n";
        std::exit(1);
    }
    return std::move(*run);
}

/** Last sample of @p s at or before @p t (NaN when none). */
double
valueAt(const Series *s, double t)
{
    if (s == nullptr || s->times.empty())
        return std::nan("");
    auto it = std::upper_bound(s->times.begin(), s->times.end(), t);
    if (it == s->times.begin())
        return std::nan("");
    return s->values[size_t(it - s->times.begin()) - 1];
}

std::string
num(double v, const char *fmt = "%.4g")
{
    return std::isnan(v) ? std::string("n/a") : strfmt(fmt, v);
}

void
cmdSummary(const RunData &run)
{
    const RunManifest &m = run.manifest;
    std::cout << "run: mix=" << m.mixName << " scheme=" << m.scheme
              << " seed=" << m.seed << "\n"
              << "tool: " << m.tool << " (" << m.version << ")\n"
              << "window: warmup=" << m.warmup
              << " executions=" << m.executions << " sampling="
              << strfmt("%.3gms", m.samplingPeriod.sec() * 1e3)
              << " decisionPeriodTicks=" << m.decisionPeriodTicks
              << "\n";
    if (m.faultPlanHash != 0) {
        std::cout << "faults: hash=" << m.faultPlanHash << "\n";
        std::istringstream in(m.faultPlanText);
        std::string line;
        while (std::getline(in, line))
            if (!line.empty())
                std::cout << "    " << line << "\n";
    }
    if (m.schemeSpecHash != 0) {
        std::cout << "scheme spec: hash=" << m.schemeSpecHash << "\n";
        std::istringstream in(m.schemeSpecText);
        std::string line;
        while (std::getline(in, line))
            if (!line.empty())
                std::cout << "    " << line << "\n";
    }
    for (const auto &[key, value] : m.extra)
        std::cout << key << ": " << value << "\n";

    std::cout << "series: " << run.series.size() << "\n";
    for (const auto &s : run.series)
        std::cout << "    " << s.name << " [" << s.unit << "] "
                  << s.times.size() << " samples\n";

    size_t decisions = 0, faults = 0;
    for (const auto &e : run.events)
        (e.category == "fault" ? faults : decisions) += 1;
    std::cout << "events: " << decisions << " decisions, " << faults
              << " faults\n";

    size_t misses = 0;
    for (const auto &s : run.slices)
        misses += s.missed ? 1 : 0;
    std::cout << "slices: " << run.slices.size()
              << " FG executions, " << misses << " deadline misses\n";

    // Serving-mode runs carry a request summary in the manifest and
    // (optionally) the per-request records in the exact section.
    if (m.requests.present) {
        const auto &r = m.requests;
        std::cout << strfmt(
            "requests: %llu arrivals, %llu completed, %llu dropped, "
            "%llu shed\n",
            (unsigned long long)r.arrivals,
            (unsigned long long)r.completed,
            (unsigned long long)r.dropped, (unsigned long long)r.shed);
        std::cout << "    response: mean=" << num(r.meanSec)
                  << " s p50=" << num(r.p50Sec) << " s p95="
                  << num(r.p95Sec) << " s p99=" << num(r.p99Sec)
                  << " s p999=" << num(r.p999Sec) << " s\n";
        for (const auto &v : r.slos)
            std::cout << "    slo " << v.label << ": target "
                      << num(v.targetSec) << " s, achieved "
                      << num(v.achievedSec) << " s -> "
                      << (v.met ? "met" : "MISSED") << "\n";
        if (!r.slos.empty())
            std::cout << "    slo_met: "
                      << (r.sloMet ? "true" : "false") << "\n";
    }
    // Cluster-mode manifests carry the fleet summary.
    if (m.cluster.present) {
        const auto &c = m.cluster;
        std::cout << strfmt(
            "cluster: policy=%s nodes=%u %llu generated "
            "(%llu completed, %llu dropped, %llu shed)%s\n",
            c.policy.c_str(), c.nodes,
            (unsigned long long)c.generated,
            (unsigned long long)c.completed,
            (unsigned long long)c.dropped, (unsigned long long)c.shed,
            c.degraded ? " DEGRADED" : "");
        std::cout << "    response: mean=" << num(c.meanSec)
                  << " s p50=" << num(c.p50Sec) << " s p95="
                  << num(c.p95Sec) << " s p99=" << num(c.p99Sec)
                  << " s p999=" << num(c.p999Sec) << " s\n";
        std::cout << strfmt(
            "    utilization: mean=%.1f%% min=%.1f%% max=%.1f%% "
            "imbalance=%.2f\n",
            c.utilizationMean * 100.0, c.utilizationMin * 100.0,
            c.utilizationMax * 100.0, c.imbalance);
        for (const auto &v : c.slos)
            std::cout << "    slo " << v.label << ": target "
                      << num(v.targetSec) << " s, achieved "
                      << num(v.achievedSec) << " s -> "
                      << (v.met ? "met" : "MISSED") << "\n";
        if (!c.slos.empty())
            std::cout << "    slo_met: "
                      << (c.sloMet ? "true" : "false") << "\n";
        for (const auto &n : c.perNode)
            std::cout << strfmt(
                "    node%u: %s/%s speed=%g %llu arrivals, "
                "p99=%s s, util=%.1f%%%s\n",
                n.node, n.mix.c_str(), n.scheme.c_str(), n.speed,
                (unsigned long long)n.arrivals,
                num(n.p99Sec).c_str(), n.utilization * 100.0,
                n.degraded ? " DEGRADED" : "");
    }
    if (!run.requests.empty()) {
        size_t completed = 0, dropped = 0, shed = 0;
        size_t maxDepth = 0;
        for (const auto &req : run.requests) {
            completed += req.outcome == "completed" ? 1 : 0;
            dropped += req.outcome == "dropped" ? 1 : 0;
            shed += req.outcome == "shed" ? 1 : 0;
            maxDepth = std::max(maxDepth, req.queueDepth);
        }
        std::cout << "request records: " << run.requests.size() << " ("
                  << completed << " completed, " << dropped
                  << " dropped, " << shed << " shed), max queue depth "
                  << maxDepth << "\n";
    }
}

void
printMiss(const RunData &run, const ExecutionSlice &slice,
          double windowSec)
{
    const double start = slice.start.sec();
    const double end = slice.end.sec();
    const double from = std::max(0.0, start - windowSec);

    std::cout << strfmt("\nmiss: fg%u pid=%u %s execution #%llu\n",
                        slice.fgSlot, slice.pid,
                        slice.program.c_str(),
                        (unsigned long long)slice.executionIndex);
    std::cout << strfmt(
        "    ran %.6f s .. %.6f s: duration %.4f s vs deadline %.4f s "
        "(%+.1f%%)\n",
        start, end, slice.duration().sec(), slice.deadlineSec,
        slice.deadlineSec > 0.0
            ? (slice.duration().sec() / slice.deadlineSec - 1.0) * 100.0
            : 0.0);
    std::cout << strfmt(
        "    last prediction before completion: %.4f s\n",
        slice.predictedSec);

    // The predictor/machine view at the time of the miss.
    std::string slot = strfmt("fg%u", slice.fgSlot);
    std::cout << "    at miss: slack_ratio="
              << num(valueAt(run.findSeries(slot + ".slack_ratio"), end))
              << " alpha_ma="
              << num(valueAt(run.findSeries(slot + ".alpha_ma"), end))
              << " progress="
              << num(valueAt(run.findSeries(slot + ".progress_fraction"),
                             end))
              << " cat.fg_ways="
              << num(valueAt(run.findSeries("cat.fg_ways"), end), "%.0f")
              << " core" << slice.fgSlot << ".freq="
              << num(valueAt(run.findSeries(
                                 strfmt("core%u.freq_ghz", slice.fgSlot)),
                             end))
              << " GHz\n";

    // Decision window: every decision/fault in [start - window, end].
    size_t shown = 0;
    for (const auto &e : run.events) {
        double t = e.when.sec();
        if (t < from || t > end)
            continue;
        std::cout << strfmt("    %10.6f s  %-8s %-18s", t,
                            e.category.c_str(), e.name.c_str());
        if (e.pid != 0)
            std::cout << strfmt(" pid=%u", e.pid);
        if (e.category == "decision")
            std::cout << strfmt(" slack=%.3f", e.value);
        if (!e.detail.empty())
            std::cout << "  " << e.detail;
        std::cout << "\n";
        ++shown;
    }
    if (shown == 0)
        std::cout << strfmt(
            "    no decisions or faults recorded in the %.0f ms before "
            "the miss\n",
            windowSec * 1e3);
}

int
cmdWhyMiss(const RunData &run, double windowSec, int fgFilter)
{
    std::vector<const ExecutionSlice *> misses;
    for (const auto &s : run.slices)
        if (s.missed && (fgFilter < 0 || int(s.fgSlot) == fgFilter))
            misses.push_back(&s);

    if (misses.empty()) {
        std::cout << "no deadline misses recorded";
        if (fgFilter >= 0)
            std::cout << " for fg" << fgFilter;
        std::cout << " (" << run.slices.size() << " executions)\n";
        return 0;
    }

    std::cout << misses.size() << " deadline miss"
              << (misses.size() == 1 ? "" : "es") << " of "
              << run.slices.size() << " executions ("
              << run.manifest.mixName << "/" << run.manifest.scheme
              << ", window " << strfmt("%.0f", windowSec * 1e3)
              << " ms):\n";
    for (const auto *slice : misses)
        printMiss(run, *slice, windowSec);
    return 0;
}

int
cmdValidate(const std::string &filePath, const std::string &schemaPath)
{
    auto slurp = [](const std::string &path) -> std::string {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            std::cerr << "dirigent-inspect: cannot open '" << path
                      << "'\n";
            std::exit(1);
        }
        std::ostringstream out;
        out << in.rdbuf();
        return out.str();
    };
    std::string error;
    auto doc = parseJson(slurp(filePath), &error);
    if (!doc) {
        std::cerr << filePath << ": parse error: " << error << "\n";
        return 1;
    }
    auto schema = parseJson(slurp(schemaPath), &error);
    if (!schema) {
        std::cerr << schemaPath << ": parse error: " << error << "\n";
        return 1;
    }
    std::string violation = validateAgainstSchema(*doc, *schema);
    if (!violation.empty()) {
        std::cerr << filePath << ": schema violation: " << violation
                  << "\n";
        return 1;
    }
    std::cout << filePath << ": valid against " << schemaPath << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        usage();
    std::string cmd = argv[1];

    if (cmd == "validate") {
        if (argc != 4)
            usage();
        return cmdValidate(argv[2], argv[3]);
    }

    std::string runPath = argv[2];
    double windowSec = 0.050;
    int fgFilter = -1;
    for (int i = 3; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--window" && i + 1 < argc) {
            windowSec = std::strtod(argv[++i], nullptr) / 1e3;
        } else if (arg == "--fg" && i + 1 < argc) {
            fgFilter = int(std::strtol(argv[++i], nullptr, 10));
        } else {
            usage();
        }
    }

    if (cmd == "summary") {
        // summary also accepts a bare *.manifest.json (no trace
        // document around it) — cluster cells and sweep manifests are
        // written that way.
        std::string error;
        auto run = loadRunFile(runPath, &error);
        if (run) {
            cmdSummary(*run);
            return 0;
        }
        std::ifstream in(runPath, std::ios::binary);
        std::ostringstream text;
        if (in)
            text << in.rdbuf();
        std::string parseError;
        auto doc = parseJson(text.str(), &parseError);
        if (doc && doc->isObject() && doc->find("tool") != nullptr) {
            RunData bare;
            bare.manifest = RunManifest::fromJson(*doc);
            cmdSummary(bare);
            return 0;
        }
        std::cerr << "dirigent-inspect: cannot load '" << runPath
                  << "': " << error << "\n";
        return 1;
    }

    RunData run = loadOrDie(runPath);
    if (cmd == "why-miss")
        return cmdWhyMiss(run, windowSec, fgFilter);
    if (cmd == "csv") {
        writeSeriesCsv(std::cout, run);
        return 0;
    }
    usage();
}
