/**
 * @file
 * Profile inspection tool: run the offline profiler on a benchmark (or
 * a custom workload definition), print the profile's segment structure,
 * and optionally save/load it through the serialization format —
 * the workflow a deployment would use to ship profiles with binaries.
 *
 * Usage:
 *   dump_profile <benchmark> [--save FILE] [--period 5ms]
 *                [--executions 3] [--metric instr|beats]
 *   dump_profile --load FILE
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/config.h"
#include "common/log.h"
#include "common/stats.h"
#include "common/strfmt.h"
#include "common/table.h"
#include "dirigent/profiler.h"
#include "workload/benchmarks.h"

using namespace dirigent;

namespace {

[[noreturn]] void
usage()
{
    std::cerr << "usage: dump_profile <benchmark> [--save FILE] "
                 "[--period 5ms] [--executions N] "
                 "[--metric instr|beats]\n"
                 "       dump_profile --load FILE\n";
    std::exit(2);
}

void
printProfile(const core::Profile &profile)
{
    printBanner(std::cout, "Profile: " + profile.benchmark());
    std::cout << "sampling period: "
              << TextTable::num(profile.samplingPeriod().ms(), 2)
              << " ms; segments: " << profile.size()
              << "; total progress: "
              << strfmt("%.4g", profile.totalProgress())
              << "; standalone time: "
              << TextTable::num(profile.totalTime().sec(), 4) << " s\n";

    // Segment summary by decile: progress rate variation across the
    // execution (the structure the predictor exploits).
    OnlineStats rates;
    for (const auto &seg : profile.segments())
        rates.add(seg.progress / seg.duration.sec());
    std::cout << "progress rate: mean " << strfmt("%.4g", rates.mean())
              << "/s, min " << strfmt("%.4g", rates.min()) << ", max "
              << strfmt("%.4g", rates.max()) << "\n\n";

    TextTable table({"decile", "segments", "progress share",
                     "avg rate (/s)"});
    size_t n = profile.size();
    double total = profile.totalProgress();
    for (size_t d = 0; d < 10 && n >= 10; ++d) {
        size_t lo = d * n / 10, hi = (d + 1) * n / 10;
        double progress = 0.0, duration = 0.0;
        for (size_t i = lo; i < hi; ++i) {
            progress += profile.segments()[i].progress;
            duration += profile.segments()[i].duration.sec();
        }
        table.addRow({strfmt("%zu", d), strfmt("%zu", hi - lo),
                      TextTable::pct(progress / total),
                      strfmt("%.4g", progress / duration)});
    }
    table.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string benchmark, saveFile, loadFile;
    core::ProfilerConfig pcfg;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        if (arg == "--save") {
            saveFile = next();
        } else if (arg == "--load") {
            loadFile = next();
        } else if (arg == "--period") {
            auto t = parseTime(next());
            if (!t)
                fatal("bad --period");
            pcfg.samplingPeriod = *t;
        } else if (arg == "--executions") {
            pcfg.executions =
                unsigned(std::strtoul(next().c_str(), nullptr, 10));
            pcfg.executions = std::max(1u, pcfg.executions);
        } else if (arg == "--metric") {
            std::string m = next();
            if (m == "beats")
                pcfg.metric = core::ProgressMetric::Heartbeats;
            else if (m == "instr")
                pcfg.metric = core::ProgressMetric::RetiredInstructions;
            else
                fatal("unknown metric '" + m + "'");
        } else if (benchmark.empty() && arg[0] != '-') {
            benchmark = arg;
        } else {
            usage();
        }
    }

    if (!loadFile.empty()) {
        std::ifstream in(loadFile);
        if (!in)
            fatal("cannot open '" + loadFile + "'");
        std::ostringstream text;
        text << in.rdbuf();
        auto profile = core::Profile::deserialize(text.str());
        if (!profile)
            fatal("'" + loadFile + "' is not a valid profile");
        printProfile(*profile);
        return 0;
    }

    if (benchmark.empty())
        usage();
    const auto &lib = workload::BenchmarkLibrary::instance();
    if (!lib.has(benchmark))
        fatal("unknown benchmark '" + benchmark + "'");

    core::OfflineProfiler profiler(pcfg);
    core::Profile profile =
        profiler.profileAlone(lib.get(benchmark),
                              machine::MachineConfig{});
    printProfile(profile);

    if (!saveFile.empty()) {
        std::ofstream out(saveFile);
        if (!out)
            fatal("cannot write '" + saveFile + "'");
        out << profile.serialize();
        inform("profile saved to " + saveFile);
    }
    return 0;
}
