/**
 * @file
 * Maintainer calibration tool: prints the standalone and contended
 * behaviour of every FG benchmark and the Baseline variation of chosen
 * mixes, for tuning the workload models against the paper's Fig. 4/5/7
 * ranges. Not part of the evaluation suite.
 *
 * Usage: calibrate [fg|mix|bg] (default: all)
 */

#include <cstring>
#include <iostream>

#include "common/stats.h"
#include "common/strfmt.h"
#include "common/table.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "workload/benchmarks.h"
#include "workload/mix.h"

using namespace dirigent;

namespace {

void
fgOverview(harness::ExperimentRunner &runner)
{
    printBanner(std::cout, "FG standalone vs contended (5x bwaves)");
    TextTable table({"fg", "alone mean", "alone std", "alone MPKI",
                     "contend mean", "contend std", "norm std",
                     "contend MPKI", "slowdown"});
    const auto &lib = workload::BenchmarkLibrary::instance();
    for (const auto &fg : lib.foregroundNames()) {
        auto alone = runner.runStandalone(fg);
        auto mix = workload::makeMix({fg}, workload::BgSpec::single("bwaves"));
        auto contended = runner.run(mix, core::Scheme::Baseline, {});
        table.addRow({fg,
                      TextTable::num(alone.fgDurationMean(), 3),
                      TextTable::num(alone.fgDurationStd(), 4),
                      TextTable::num(alone.fgMpki(), 2),
                      TextTable::num(contended.fgDurationMean(), 3),
                      TextTable::num(contended.fgDurationStd(), 4),
                      TextTable::pct(contended.fgDurationStd() /
                                     contended.fgDurationMean()),
                      TextTable::num(contended.fgMpki(), 2),
                      TextTable::num(contended.fgDurationMean() /
                                         alone.fgDurationMean(),
                                     2)});
    }
    table.print(std::cout);
}

void
bgOverview(harness::ExperimentRunner &runner)
{
    printBanner(std::cout, "BG pressure spectrum (ferret FG)");
    TextTable table({"bg", "total MPK-FG-I", "fg miss share",
                     "fg norm std", "fg slowdown"});
    auto alone = runner.runStandalone("ferret");
    const auto &lib = workload::BenchmarkLibrary::instance();
    std::vector<workload::BgSpec> specs;
    for (const auto &bg : lib.singleBgNames())
        specs.push_back(workload::BgSpec::single(bg));
    for (const auto &[a, b] : lib.rotatePairs())
        specs.push_back(workload::BgSpec::rotate(a, b));
    for (const auto &spec : specs) {
        auto mix = workload::makeMix({"ferret"}, spec);
        auto res = runner.run(mix, core::Scheme::Baseline, {});
        double mpkfgi = res.totalMisses / (res.fgInstructions / 1000.0);
        table.addRow({spec.label(),
                      TextTable::num(mpkfgi, 1),
                      TextTable::num(res.fgMisses / res.totalMisses, 2),
                      TextTable::pct(res.fgDurationStd() /
                                     res.fgDurationMean()),
                      TextTable::num(res.fgDurationMean() /
                                         alone.fgDurationMean(),
                                     2)});
    }
    table.print(std::cout);
}

void
mixCheck(harness::ExperimentRunner &runner)
{
    printBanner(std::cout, "Scheme comparison on pilot mixes");
    std::vector<workload::WorkloadMix> mixes = {
        workload::makeMix({"ferret"}, workload::BgSpec::single("rs")),
        workload::makeMix({"raytrace"}, workload::BgSpec::single("bwaves")),
        workload::makeMix({"streamcluster"},
                          workload::BgSpec::single("pca")),
        workload::makeMix({"bodytrack"},
                          workload::BgSpec::rotate("libquantum", "soplex")),
    };
    std::vector<std::vector<harness::SchemeRunResult>> perMix;
    for (const auto &mix : mixes)
        perMix.push_back(runner.runAllSchemes(mix));
    harness::printSchemeComparison(std::cout, perMix);
    std::cout << "\n";
    harness::printStdComparison(std::cout, perMix);
    std::cout << "\nSummary:\n";
    harness::printSchemeSummary(std::cout,
                                harness::summarizeSchemes(perMix));
    std::cout << "\nPrediction error (Dirigent runs): ";
    for (const auto &mixResults : perMix)
        std::cout << TextTable::pct(mixResults[4].predictionError())
                  << " ";
    std::cout << "\nConverged partitions: ";
    for (const auto &mixResults : perMix)
        std::cout << mixResults[4].finalFgWays << " ";
    std::cout << "\n";
}

void
predictorCheck(harness::ExperimentRunner &runner)
{
    printBanner(std::cout, "Predictor accuracy (observer under Baseline)");
    TextTable table({"mix", "avg error", "norm std"});
    std::vector<workload::WorkloadMix> mixes = {
        workload::makeMix({"raytrace"}, workload::BgSpec::single("rs")),
        workload::makeMix({"ferret"}, workload::BgSpec::single("bwaves")),
        workload::makeMix({"streamcluster"},
                          workload::BgSpec::single("rs")),
        workload::makeMix({"bodytrack"},
                          workload::BgSpec::rotate("lbm", "namd")),
        workload::makeMix({"fluidanimate"},
                          workload::BgSpec::single("pca")),
    };
    harness::RunOptions opts;
    opts.attachObserver = true;
    for (const auto &mix : mixes) {
        auto res = runner.run(mix, core::Scheme::Baseline, {}, opts);
        table.addRow({mix.name, TextTable::pct(res.predictionError()),
                      TextTable::pct(res.fgDurationStd() /
                                     res.fgDurationMean())});
    }
    table.print(std::cout);
}

void
traceCheck(harness::ExperimentRunner &runner)
{
    printBanner(std::cout, "DirigentFreq per-execution trace");
    auto mix = workload::makeMix(
        {"bodytrack"}, workload::BgSpec::rotate("libquantum", "soplex"));
    auto baseline = runner.run(mix, core::Scheme::Baseline, {});
    auto deadlines = runner.deadlinesFromBaseline(baseline);
    auto res = runner.run(mix, core::Scheme::DirigentFreq, deadlines);
    double deadline = deadlines.at("bodytrack").sec();
    std::cout << "deadline: " << deadline << " s\n";
    TextTable table({"exec", "midpoint pred", "actual", "pred err",
                     "missed"});
    for (const auto &s : res.midpointSamples) {
        table.addRow(
            {strfmt("%lu", (unsigned long)s.executionIndex),
             TextTable::num(s.predictedTotal.sec(), 3),
             TextTable::num(s.actualTotal.sec(), 3),
             TextTable::pct((s.predictedTotal.sec() -
                             s.actualTotal.sec()) /
                            s.actualTotal.sec()),
             s.actualTotal.sec() > deadline ? "MISS" : ""});
    }
    table.print(std::cout);
    std::cout << "success " << res.fgSuccessRatio() << " pauses "
              << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    harness::HarnessConfig config;
    config.executions = harness::envExecutions(40);
    harness::ExperimentRunner runner(config);

    const char *what = argc > 1 ? argv[1] : "all";
    if (!std::strcmp(what, "fg") || !std::strcmp(what, "all"))
        fgOverview(runner);
    if (!std::strcmp(what, "bg") || !std::strcmp(what, "all"))
        bgOverview(runner);
    if (!std::strcmp(what, "mix") || !std::strcmp(what, "all"))
        mixCheck(runner);
    if (!std::strcmp(what, "pred") || !std::strcmp(what, "all"))
        predictorCheck(runner);
    if (!std::strcmp(what, "trace"))
        traceCheck(runner);
    return 0;
}
