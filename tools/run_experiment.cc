/**
 * @file
 * Command-line experiment runner: evaluate any workload mix under any
 * scheme with machine/harness parameters from a config file and/or
 * `key=value` command-line overrides — no recompilation needed.
 *
 * Usage:
 *   run_experiment <fg>[,<fg>...] <bg>[+<bg2>] [options] [key=value...]
 *
 * Options / keys (all optional):
 *   --config FILE          read key=value pairs from an INI file first
 *   --fg-program FILE      use a custom FG workload definition
 *                          (see workload/parser.h for the format)
 *   --threads N            sweep worker threads for scheme=all
 *                          (0 = hardware concurrency, 1 = serial;
 *                          also DIRIGENT_THREADS / threads=N)
 *   --jsonl FILE           append per-run JSONL records to FILE
 *                          (also DIRIGENT_JSONL)
 *   --faults FILE          inject boundary faults from the fault-plan
 *                          DSL in FILE (also DIRIGENT_FAULTS; see
 *                          fault/plan.h for the format)
 *   --trace-out FILE       record run telemetry and write a combined
 *                          Perfetto/Chrome trace-event JSON document
 *                          to FILE, plus FILE.manifest.json (also
 *                          DIRIGENT_TRACE_OUT). With scheme=all the
 *                          Dirigent scheme is re-run once, recorded.
 *                          Inspect with dirigent-inspect, or open FILE
 *                          in ui.perfetto.dev
 *   --span-out FILE        serving/cluster runs: write per-request
 *                          trace spans (dirigent-spans-v1 JSON) to
 *                          FILE. In cluster mode FILE is a base path;
 *                          each cell writes
 *                          FILE.<policy><nodes>.spans.json. Inspect
 *                          with dirigent-inspect critical-path /
 *                          slowest / why-miss
 *   --metrics-out FILE     write the run's metrics registry in
 *                          Prometheus text exposition format to FILE
 *                          (cluster mode: FILE.<policy><nodes>.prom
 *                          per cell, with per-node labels and a fleet
 *                          rollup)
 *   --check                enable the runtime invariant checker for this
 *                          run (also DIRIGENT_CHECK=1; --no-check forces
 *                          it off)
 *   --scheme-file FILE     run a declarative scheme spec (INI; see
 *                          dirigent/scheme_spec.h for the format; also
 *                          DIRIGENT_SCHEME_FILE). Mutually exclusive
 *                          with scheme=
 *   --serve-file FILE      request-serving mode: feed each FG slot from
 *                          the arrival process in FILE (INI; see
 *                          serve/spec.h for the format; also
 *                          DIRIGENT_SERVE_FILE). scheme=all becomes the
 *                          Baseline / Dirigent / DirigentGradient load
 *                          sweep over the spec's `rates` grid; any
 *                          other scheme (or --scheme-file) runs one
 *                          serving cell
 *   --cluster-file FILE    cluster mode: run the fleet described by the
 *                          cluster spec in FILE (INI; see
 *                          cluster/spec.h for the format; also
 *                          DIRIGENT_CLUSTER_FILE). FILE may also name a
 *                          builtin cluster (see --list-clusters). Takes
 *                          no positional mix — the spec carries per-node
 *                          mixes/schemes. Sweeps the spec's
 *                          sweep_policies × sweep_nodes grid (one cell
 *                          when both are empty) and prints the fleet
 *                          comparison
 *   --list-clusters        print the builtin cluster registry and exit
 *   --list-schemes         print the builtin scheme registry and exit
 *   --list-predictors      print the builtin completion-predictor
 *                          registry and exit
 *   scheme = any registry name (see --list-schemes) or `all`;
 *            baseline|staticfreq|staticboth|dirigentfreq|dirigent plus
 *            the ablations observer|reactive|coarseonly
 *   executions = 40        measured FG executions
 *   warmup = 5             discarded executions
 *   seed = 1234
 *   deadline_sigma = 0.3   deadline = µ + this·σ of Baseline
 *   machine.cores = 6
 *   machine.max_freq = 2GHz
 *   machine.min_freq = 1.2GHz
 *   machine.cache_ways = 20
 *   machine.cache_way_size = 0.75MiB
 *   machine.dram_peak_gbps = 8.5
 *   machine.dram_latency = 80ns
 *   runtime.period = 5ms
 *   runtime.ema = 0.2
 *   runtime.predictor = ema   completion predictor for runtime schemes
 *                          (see --list-predictors); a scheme file's
 *                          [predictor] section overrides this
 *
 * Examples:
 *   run_experiment ferret bwaves scheme=all
 *   run_experiment streamcluster lbm+namd executions=100
 *   run_experiment ferret,ferret rs scheme=dirigent
 *   run_experiment --fg-program my_app.ini bwaves scheme=all
 */

#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "check/check.h"
#include "cluster/accountant.h"
#include "cluster/node.h"
#include "cluster/spec.h"
#include "common/config.h"
#include "common/stats.h"
#include "common/log.h"
#include "common/strfmt.h"
#include "common/table.h"
#include "dirigent/predictor_spec.h"
#include "dirigent/scheme_spec.h"
#include "exec/executor.h"
#include "fault/plan.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/serving.h"
#include "obs/export.h"
#include "obs/fleet.h"
#include "obs/manifest.h"
#include "obs/recorder.h"
#include "obs/span.h"
#include "serve/spec.h"
#include "workload/benchmarks.h"
#include "workload/mix.h"
#include "workload/parser.h"

using namespace dirigent;

namespace {

[[noreturn]] void
usage()
{
    std::cerr
        << "usage: run_experiment <fg>[,<fg>...] <bg>[+<bg2>] "
           "[--config FILE] [--fg-program FILE] [--threads N] "
           "[--jsonl FILE] [--faults FILE] [--trace-out FILE] "
           "[--span-out FILE] [--metrics-out FILE] "
           "[--scheme-file FILE] [--serve-file FILE] "
           "[--check|--no-check] [key=value...]\n"
           "       run_experiment --cluster-file FILE [options]\n"
           "       run_experiment --list\n"
           "       run_experiment --list-schemes\n"
           "       run_experiment --list-predictors\n"
           "       run_experiment --list-clusters\n";
    std::exit(2);
}

void
listBenchmarks()
{
    const auto &lib = workload::BenchmarkLibrary::instance();
    TextTable table({"type", "name", "description"});
    for (const auto &b : lib.all())
        table.addRow({workload::categoryName(b.category), b.name,
                      b.description});
    table.print(std::cout);
}

std::vector<std::string>
splitList(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::istringstream in(text);
    std::string item;
    while (std::getline(in, item, sep))
        if (!item.empty())
            out.push_back(item);
    return out;
}

harness::HarnessConfig
harnessFromConfig(const Config &cfg)
{
    harness::HarnessConfig hc;
    hc.executions = unsigned(cfg.getUint("executions", hc.executions));
    hc.warmup = unsigned(cfg.getUint("warmup", hc.warmup));
    hc.seed = cfg.getUint("seed", hc.seed);
    hc.deadlineSigmaFactor =
        cfg.getDouble("deadline_sigma", hc.deadlineSigmaFactor);

    auto &m = hc.machine;
    m.numCores = unsigned(cfg.getUint("machine.cores", m.numCores));
    m.maxFreq = cfg.getFreq("machine.max_freq", m.maxFreq);
    m.minFreq = cfg.getFreq("machine.min_freq", m.minFreq);
    m.cache.numWays =
        unsigned(cfg.getUint("machine.cache_ways", m.cache.numWays));
    m.cache.bytesPerWay =
        cfg.getBytes("machine.cache_way_size", m.cache.bytesPerWay);
    m.dram.peakBandwidth = cfg.getDouble("machine.dram_peak_gbps",
                                         m.dram.peakBandwidth / 1e9) *
                           1e9;
    m.dram.baseLatency =
        cfg.getTime("machine.dram_latency", m.dram.baseLatency);

    hc.runtime.samplingPeriod =
        cfg.getTime("runtime.period", hc.runtime.samplingPeriod);
    hc.profiler.samplingPeriod = hc.runtime.samplingPeriod;
    std::string predictorKind =
        cfg.getString("runtime.predictor", "ema");
    const core::PredictorSpec *pspec =
        core::findPredictorSpec(predictorKind);
    if (pspec == nullptr)
        fatal("unknown predictor '" + predictorKind +
              "' (try --list-predictors)");
    hc.runtime.predictor = *pspec;
    double ema = cfg.getDouble("runtime.ema", 0.2);
    hc.runtime.predictor.penaltyEmaWeight = ema;
    hc.runtime.predictor.rateEmaWeight = ema;
    hc.threads = unsigned(
        cfg.getUint("threads", harness::envThreads(hc.threads)));
    return hc;
}

/** Export recorded telemetry: the trace and a standalone manifest. */
void
writeTraceFiles(const std::string &path, obs::Recorder &recorder)
{
    recorder.manifest().tool = "run_experiment";
    recorder.manifest().version = obs::buildVersion();
    if (obs::writePerfettoTraceFile(path, recorder))
        inform("telemetry trace written to " + path +
               " (open in ui.perfetto.dev or dirigent-inspect)");
    const std::string manifestPath = path + ".manifest.json";
    std::ofstream os(manifestPath, std::ios::trunc);
    if (!os) {
        warn("cannot write run manifest '" + manifestPath + "'");
        return;
    }
    os << recorder.manifest().toJson() << "\n";
}

/** Export the run's metrics registry as a one-node Prometheus file. */
void
writeMetricsProm(const std::string &path, const obs::Recorder &recorder)
{
    obs::FleetMetrics fm;
    fm.addNode(0, recorder.metrics());
    if (obs::writePrometheusFile(path, fm))
        inform("Prometheus metrics written to " + path);
}

/** Export collected spans (finalizing first). */
void
writeSpanFiles(const std::string &path, obs::SpanCollector &spans)
{
    spans.finalize();
    if (obs::writeSpansFile(path, spans))
        inform(strfmt("%zu request spans written to %s",
                      spans.spans().size(), path.c_str()));
}

/** NaN-safe quantile cell: "-" when nothing completed. */
std::string
quantileCell(double seconds)
{
    return std::isfinite(seconds) ? TextTable::num(seconds, 4) : "-";
}

/** SLO verdict cell: "met" / "MISSED p99" / "-" without targets. */
std::string
sloCell(const harness::ServingRunResult &res)
{
    if (res.verdicts.empty())
        return "-";
    std::string missed;
    for (const auto &v : res.verdicts)
        if (!v.met)
            missed +=
                (missed.empty() ? "MISSED " : ",") + v.target.label();
    return missed.empty() ? "met" : missed;
}

/** Per-cell serving comparison (one row per scheme × rate). */
void
printServingComparison(std::ostream &os,
                       const std::vector<harness::ServingRunResult> &cells)
{
    TextTable table({"scheme", "rate", "arrivals", "rejected",
                     "p50 (s)", "p95 (s)", "p99 (s)", "p999 (s)",
                     "SLO"});
    for (const auto &res : cells)
        table.addRow({res.schemeLabel,
                      std::isfinite(res.offeredRate)
                          ? TextTable::num(res.offeredRate, 2)
                          : "trace",
                      strfmt("%llu", (unsigned long long)res.arrivals),
                      TextTable::pct(res.rejectRate()),
                      quantileCell(res.p50Sec), quantileCell(res.p95Sec),
                      quantileCell(res.p99Sec),
                      quantileCell(res.p999Sec), sloCell(res)});
    table.print(os);
}

void
listClusters()
{
    TextTable table({"cluster", "nodes", "policy", "mix", "scheme",
                     "spec hash"});
    for (const auto &spec : cluster::builtinClusterSpecs())
        table.addRow({spec.name, strfmt("%u", spec.nodes),
                      cluster::dispatchPolicyName(spec.policy),
                      spec.mix, spec.scheme,
                      strfmt("%llu",
                             (unsigned long long)
                                 cluster::clusterSpecHash(spec))});
    table.print(std::cout);
    std::cout << "\nCustom clusters: write the spec to a file "
                 "(--cluster-file FILE or DIRIGENT_CLUSTER_FILE);\n"
                 "round-trippable INI format documented in "
                 "cluster/spec.h.\n";
}

/** Fleet comparison: one row per cluster cell (policy × nodes). */
void
printFleetComparison(std::ostream &os,
                     const std::vector<exec::ClusterCellResult> &cells)
{
    TextTable table({"policy", "nodes", "requests", "rejected",
                     "p50 (s)", "p95 (s)", "p99 (s)", "util", "imb",
                     "SLO"});
    for (const auto &cell : cells) {
        const cluster::FleetSummary &fleet = cell.fleet;
        std::string slo;
        if (fleet.verdicts.empty()) {
            slo = "-";
        } else {
            for (const auto &v : fleet.verdicts)
                if (!v.met)
                    slo += (slo.empty() ? "MISSED " : ",") +
                           v.target.label();
            if (slo.empty())
                slo = "met";
        }
        if (fleet.degraded)
            slo += " degraded";
        table.addRow(
            {cluster::dispatchPolicyName(fleet.policy),
             strfmt("%u", fleet.nodes),
             strfmt("%llu", (unsigned long long)fleet.generated),
             TextTable::pct(fleet.rejectRate()),
             quantileCell(fleet.p50Sec), quantileCell(fleet.p95Sec),
             quantileCell(fleet.p99Sec),
             TextTable::pct(fleet.utilizationMean),
             TextTable::num(fleet.imbalance, 2), slo});
    }
    table.print(os);
}

/** Cluster mode: the whole fleet run, from spec to comparison table. */
int
runClusterMode(const cluster::ClusterSpec &spec,
               const harness::HarnessConfig &hc,
               const std::string &jsonlPath, const std::string &spanOut,
               const std::string &metricsOut)
{
    printBanner(std::cout, "run_experiment: cluster " + spec.name +
                               strfmt(" (%u nodes)", spec.nodes));
    exec::ExecutorConfig ecfg;
    ecfg.jsonlPath = jsonlPath;
    ecfg.spanOutBase = spanOut;
    ecfg.metricsOutBase = metricsOut;
    exec::SweepExecutor executor(hc, ecfg);
    auto cells = executor.runClusterSweep(spec);
    std::cout << "\n";
    printFleetComparison(std::cout, cells);
    if (cells.size() == 1) {
        std::cout << "\nPer-node health:\n";
        for (const auto &node : cells.front().nodes)
            std::cout << "  " << cluster::formatNodeHealth(node.health)
                      << "\n";
    }
    return 0;
}

void
listSchemes()
{
    TextTable table({"scheme", "knobs", "spec hash"});
    for (const auto &spec : core::builtinSchemeSpecs())
        table.addRow({spec.name, core::schemeKnobSummary(spec),
                      strfmt("%llu", (unsigned long long)
                                         core::schemeSpecHash(spec))});
    table.print(std::cout);
    std::cout << "\nCustom schemes: write the spec to a file "
                 "(--scheme-file FILE or DIRIGENT_SCHEME_FILE);\n"
                 "round-trippable INI format documented in "
                 "dirigent/scheme_spec.h.\n";
}

void
listPredictors()
{
    TextTable table({"predictor", "knobs", "spec hash"});
    for (const auto &spec : core::builtinPredictorSpecs())
        table.addRow({spec.kind, core::predictorKnobSummary(spec),
                      strfmt("%llu",
                             (unsigned long long)
                                 core::predictorSpecHash(spec))});
    table.print(std::cout);
    std::cout << "\nSelect with runtime.predictor=<kind> or a scheme "
                 "file's [predictor] section;\nround-trippable INI "
                 "format documented in dirigent/predictor_spec.h.\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> positional;
    Config overrides;
    std::string configFile, fgProgramFile, jsonlPath, faultsFile;
    std::string traceOut, schemeFile, serveFile, clusterFile;
    std::string spanOut, metricsOut;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--list") {
            listBenchmarks();
            return 0;
        } else if (arg == "--list-schemes") {
            listSchemes();
            return 0;
        } else if (arg == "--list-predictors") {
            listPredictors();
            return 0;
        } else if (arg == "--scheme-file") {
            if (++i >= argc)
                usage();
            schemeFile = argv[i];
        } else if (arg == "--serve-file") {
            if (++i >= argc)
                usage();
            serveFile = argv[i];
        } else if (arg == "--cluster-file") {
            if (++i >= argc)
                usage();
            clusterFile = argv[i];
        } else if (arg == "--list-clusters") {
            listClusters();
            return 0;
        } else if (arg == "--config") {
            if (++i >= argc)
                usage();
            configFile = argv[i];
        } else if (arg == "--fg-program") {
            if (++i >= argc)
                usage();
            fgProgramFile = argv[i];
        } else if (arg == "--threads") {
            if (++i >= argc)
                usage();
            overrides.set("threads", argv[i]);
        } else if (arg == "--jsonl") {
            if (++i >= argc)
                usage();
            jsonlPath = argv[i];
        } else if (arg == "--faults") {
            if (++i >= argc)
                usage();
            faultsFile = argv[i];
        } else if (arg == "--trace-out") {
            if (++i >= argc)
                usage();
            traceOut = argv[i];
        } else if (arg == "--span-out") {
            if (++i >= argc)
                usage();
            spanOut = argv[i];
        } else if (arg == "--metrics-out") {
            if (++i >= argc)
                usage();
            metricsOut = argv[i];
        } else if (arg == "--check") {
            check::setEnabled(true);
        } else if (arg == "--no-check") {
            check::setEnabled(false);
        } else if (arg.find('=') != std::string::npos) {
            size_t eq = arg.find('=');
            overrides.set(arg.substr(0, eq), arg.substr(eq + 1));
        } else {
            positional.push_back(arg);
        }
    }
    if (clusterFile.empty())
        clusterFile = cluster::envClusterFilePath().value_or("");
    if (!clusterFile.empty()) {
        if (!positional.empty())
            fatal("cluster mode takes no positional mix: the cluster "
                  "spec carries per-node mixes and schemes");
    } else if (positional.size() != 2 &&
               !(positional.size() == 1 && !fgProgramFile.empty())) {
        usage();
    }

    Config cfg;
    if (!configFile.empty())
        cfg = Config::load(configFile);
    cfg.merge(overrides);

    harness::HarnessConfig hc = harnessFromConfig(cfg);
    if (faultsFile.empty())
        faultsFile = fault::envFaultPlanPath().value_or("");
    if (!faultsFile.empty()) {
        hc.faultPlan = fault::loadFaultPlan(faultsFile);
        if (!hc.faultPlan.empty())
            inform("fault injection active (plan: " + faultsFile + ")");
    }
    // Cluster mode: the spec carries per-node mixes, schemes, and the
    // serve spec; none of the single-node selection flags apply.
    if (!clusterFile.empty()) {
        if (!schemeFile.empty() || !serveFile.empty() ||
            cfg.has("scheme"))
            fatal("--cluster-file conflicts with --scheme-file, "
                  "--serve-file, and scheme=: the cluster spec "
                  "carries scheme and serving configuration");
        auto builtin = cluster::findClusterSpec(clusterFile);
        cluster::ClusterSpec cspec =
            builtin ? *builtin : cluster::loadClusterSpec(clusterFile);
        inform(strfmt("cluster spec '%s' (hash %llu, %u nodes, %s) "
                      "loaded from %s",
                      cspec.name.c_str(),
                      (unsigned long long)
                          cluster::clusterSpecHash(cspec),
                      cspec.nodes,
                      cluster::dispatchPolicyName(cspec.policy),
                      builtin ? "builtin registry"
                              : clusterFile.c_str()));
        return runClusterMode(cspec, hc,
                              jsonlPath.empty() ? exec::envJsonlPath()
                                                : jsonlPath,
                              spanOut, metricsOut);
    }

    harness::ExperimentRunner runner(hc);
    const auto &lib = workload::BenchmarkLibrary::instance();

    // Build the mix. A custom FG program definition is registered in
    // the benchmark library and then used like a built-in.
    std::vector<std::string> fgs;
    std::string bgArg;
    if (!fgProgramFile.empty()) {
        workload::PhaseProgram customFg =
            workload::parsePhaseProgram(Config::load(fgProgramFile));
        if (customFg.loop)
            fatal("--fg-program must define a one-shot (non-looping) "
                  "program");
        inform("custom FG program '" + customFg.name + "' with " +
               strfmt("%zu phases", customFg.phases.size()));
        const auto &bench = workload::BenchmarkLibrary::registerCustom(
            customFg.name, "user-defined workload (" + fgProgramFile +
                               ")",
            customFg);
        fgs = {bench.name};
        bgArg = positional.back();
    } else {
        fgs = splitList(positional[0], ',');
        bgArg = positional[1];
    }
    auto bgParts = splitList(bgArg, '+');
    if (bgParts.empty() || bgParts.size() > 2)
        usage();
    for (const auto &bg : bgParts)
        if (!lib.has(bg))
            fatal("unknown BG benchmark '" + bg + "' (try --list)");
    workload::BgSpec bgSpec =
        bgParts.size() == 1
            ? workload::BgSpec::single(bgParts[0])
            : workload::BgSpec::rotate(bgParts[0], bgParts[1]);

    for (const auto &fg : fgs)
        if (!lib.has(fg))
            fatal("unknown FG benchmark '" + fg + "' (try --list)");
    auto mix = workload::makeMix(fgs, bgSpec);

    // Resolve the scheme spec: an explicit scheme file beats the
    // registry; both routes funnel into the same spec-driven run.
    if (schemeFile.empty())
        schemeFile = core::envSchemeFilePath().value_or("");
    std::string schemeName = cfg.getString("scheme", "all");
    core::SchemeSpec spec;
    if (!schemeFile.empty()) {
        if (cfg.has("scheme"))
            fatal("--scheme-file conflicts with scheme=" + schemeName +
                  ": pick one way to select the scheme");
        spec = core::loadSchemeSpec(schemeFile);
        schemeName = spec.name;
        inform(strfmt("scheme spec '%s' (hash %llu) loaded from %s",
                      spec.name.c_str(),
                      (unsigned long long)core::schemeSpecHash(spec),
                      schemeFile.c_str()));
    } else if (schemeName != "all") {
        const core::SchemeSpec *builtin = core::findSchemeSpec(schemeName);
        if (!builtin)
            fatal("unknown scheme '" + schemeName +
                  "' (try --list-schemes)");
        spec = *builtin;
        schemeName = spec.name;
    }
    printBanner(std::cout, "run_experiment: " + mix.name +
                               " (scheme=" + schemeName + ")");
    if (check::enabled())
        inform("runtime invariant checker enabled");

    if (traceOut.empty())
        traceOut = obs::envTraceOutPath();

    // Request-serving mode: every FG slot serves an arrival stream
    // instead of running back-to-back executions.
    if (serveFile.empty())
        serveFile = serve::envServeFilePath().value_or("");
    if (!serveFile.empty()) {
        serve::ServeSpec serveSpec = serve::loadServeSpec(serveFile);
        inform(strfmt(
            "serve spec (hash %llu, %s arrivals) loaded from %s",
            (unsigned long long)serve::serveSpecHash(serveSpec),
            serve::arrivalKindName(serveSpec.arrivals.kind),
            serveFile.c_str()));
        std::string outPath =
            jsonlPath.empty() ? exec::envJsonlPath() : jsonlPath;

        if (schemeFile.empty() && schemeName == "all") {
            // The load sweep: Baseline / Dirigent / DirigentGradient
            // across the spec's rate grid, sharded like scheme=all.
            exec::ExecutorConfig ecfg;
            ecfg.jsonlPath = outPath;
            exec::SweepExecutor executor(hc, ecfg);
            auto perMix = executor.runServingSweep(
                {mix}, serveSpec, exec::defaultServingSchemes());
            std::cout << "\n";
            printServingComparison(std::cout, perMix.front());
            if (!traceOut.empty() || !spanOut.empty() ||
                !metricsOut.empty()) {
                inform("re-running DirigentGradient instrumented for "
                       "telemetry export");
                obs::Recorder recorder;
                obs::SpanCollector spans(runner.mixSeed(mix));
                auto baseline =
                    runner.run(mix, core::Scheme::Baseline, {});
                harness::RunOptions opts;
                opts.recorder = &recorder;
                if (!spanOut.empty())
                    opts.spans = &spans;
                serve::ServeSpec one = serveSpec;
                one.sweepRates.clear();
                runner.runServing(mix,
                                  exec::defaultServingSchemes().back(),
                                  one,
                                  runner.deadlinesFromBaseline(baseline),
                                  opts);
                if (!traceOut.empty())
                    writeTraceFiles(traceOut, recorder);
                if (!spanOut.empty())
                    writeSpanFiles(spanOut, spans);
                if (!metricsOut.empty())
                    writeMetricsProm(metricsOut, recorder);
            }
            return 0;
        }

        // One serving cell under the selected scheme; a Baseline batch
        // run calibrates the deadlines first, as in the sweep.
        obs::Recorder recorder;
        obs::SpanCollector spans(runner.mixSeed(mix));
        auto baseline = runner.run(mix, core::Scheme::Baseline, {});
        auto deadlines = runner.deadlinesFromBaseline(baseline);
        harness::RunOptions runOpts;
        if (!traceOut.empty() || !metricsOut.empty())
            runOpts.recorder = &recorder;
        if (!spanOut.empty())
            runOpts.spans = &spans;
        serve::ServeSpec one = serveSpec;
        one.sweepRates.clear();
        auto t0 = std::chrono::steady_clock::now();
        auto res = runner.runServing(mix, spec, one, deadlines, runOpts);
        double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        if (!traceOut.empty())
            writeTraceFiles(traceOut, recorder);
        if (!spanOut.empty())
            writeSpanFiles(spanOut, spans);
        if (!metricsOut.empty())
            writeMetricsProm(metricsOut, recorder);
        if (!outPath.empty())
            if (auto writer = exec::JsonlWriter::open(outPath))
                writer->writeServing(res, schemeName,
                                     runner.mixSeed(mix), wall);

        TextTable table({"metric", "value"});
        table.addRow({"arrivals",
                      strfmt("%llu", (unsigned long long)res.arrivals)});
        table.addRow({"completed",
                      strfmt("%llu", (unsigned long long)res.completed)});
        table.addRow(
            {"dropped (queue full)",
             strfmt("%llu", (unsigned long long)res.dropped)});
        table.addRow({"shed (admission)",
                      strfmt("%llu", (unsigned long long)res.shed)});
        table.addRow({"reject rate", TextTable::pct(res.rejectRate())});
        table.addRow({"response mean (s)", quantileCell(res.meanSec)});
        table.addRow({"response p50 (s)", quantileCell(res.p50Sec)});
        table.addRow({"response p95 (s)", quantileCell(res.p95Sec)});
        table.addRow({"response p99 (s)", quantileCell(res.p99Sec)});
        table.addRow({"response p999 (s)", quantileCell(res.p999Sec)});
        table.addRow({"max queue depth",
                      strfmt("%zu", res.maxQueueDepth)});
        for (const auto &v : res.verdicts)
            table.addRow(
                {v.target.label() + " SLO (target " +
                     TextTable::num(v.target.targetSec, 4) + " s)",
                 std::string(v.met ? "met" : "MISSED") + " at " +
                     quantileCell(v.achievedSec) + " s"});
        table.print(std::cout);
        return 0;
    }

    // Batch mode has no requests, hence no spans; metrics still apply.
    if (!spanOut.empty())
        warn("--span-out applies to serving and cluster runs only; "
             "ignored for batch executions");

    if (schemeFile.empty() && schemeName == "all") {
        // Sharded across hc.threads workers (scheme stages of the one
        // mix overlap where their data dependencies allow).
        exec::ExecutorConfig ecfg;
        ecfg.jsonlPath = jsonlPath.empty() ? exec::envJsonlPath()
                                           : jsonlPath;
        exec::SweepExecutor executor(hc, ecfg);
        auto perMix = executor.runSchemeSweep({mix});
        harness::printSchemeComparison(std::cout, perMix);
        std::cout << "\nNormalized FG std:\n";
        harness::printStdComparison(std::cout, perMix);
        std::cout << "\nCSV:\n";
        harness::printComparisonCsv(std::cout, perMix);
        if (!traceOut.empty() || !metricsOut.empty()) {
            // Telemetry wants a single instrumented run; replay the
            // Dirigent scheme with the sweep's calibrated deadlines.
            inform("re-running dirigent scheme instrumented for "
                   "telemetry export");
            obs::Recorder recorder;
            harness::RunOptions opts;
            opts.recorder = &recorder;
            runner.run(mix, core::Scheme::Dirigent,
                       perMix.front().front().deadlines, opts);
            if (!traceOut.empty())
                writeTraceFiles(traceOut, recorder);
            if (!metricsOut.empty())
                writeMetricsProm(metricsOut, recorder);
        }
    } else {
        obs::Recorder recorder;
        auto t0 = std::chrono::steady_clock::now();
        auto baseline = runner.run(mix, core::Scheme::Baseline, {});
        auto deadlines = runner.deadlinesFromBaseline(baseline);
        harness::applyDeadlines(baseline, deadlines);
        harness::RunOptions runOpts;
        if (!traceOut.empty() || !metricsOut.empty())
            runOpts.recorder = &recorder;
        // Baseline is re-run instrumented (the calibration run above
        // has no deadlines yet, so its slices could not be judged).
        bool isBaseline =
            spec == core::schemeSpec(core::Scheme::Baseline);
        auto res = isBaseline && runOpts.recorder == nullptr
                       ? baseline
                       : runner.run(mix, spec, deadlines, runOpts);
        double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        if (!traceOut.empty())
            writeTraceFiles(traceOut, recorder);
        if (!metricsOut.empty())
            writeMetricsProm(metricsOut, recorder);
        std::string outPath =
            jsonlPath.empty() ? exec::envJsonlPath() : jsonlPath;
        if (!outPath.empty()) {
            if (auto writer = exec::JsonlWriter::open(outPath))
                writer->write(res, schemeName, runner.mixSeed(mix),
                              wall);
        }
        TextTable table({"metric", "value"});
        table.addRow({"FG success ratio",
                      TextTable::pct(res.fgSuccessRatio())});
        auto ci = meanConfidence(res.pooledDurations(), 0.95);
        table.addRow({"FG mean (s)",
                      TextTable::num(res.fgDurationMean(), 4) +
                          " +/- " + TextTable::num(ci.half, 4) +
                          " (95% CI)"});
        table.addRow({"FG std (s)",
                      TextTable::num(res.fgDurationStd(), 4)});
        table.addRow({"deadline (s)",
                      TextTable::num(
                          deadlines.begin()->second.sec(), 4)});
        table.addRow({"BG throughput vs Baseline",
                      TextTable::pct(harness::bgThroughputRatio(
                          res, baseline))});
        if (res.finalFgWays)
            table.addRow({"FG cache ways",
                          strfmt("%u", res.finalFgWays)});
        table.print(std::cout);
    }
    return 0;
}
