/**
 * @file
 * Scenario example: consolidating multiple latency-critical services
 * on one node.
 *
 * A cluster operator wants to know how many copies of a
 * latency-critical service can share a node (with batch backfill)
 * before QoS degrades — the paper's multi-FG evaluation (Fig. 9c/13/14)
 * as a sizing exercise. For 1–3 concurrent service instances the
 * example reports per-scheme QoS and the batch throughput retained,
 * plus the coarse controller's converged cache partition.
 */

#include <iostream>

#include "common/strfmt.h"
#include "common/table.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "workload/mix.h"

using namespace dirigent;

int
main()
{
    harness::HarnessConfig config;
    config.executions = harness::envExecutions(25);
    config.warmup = 4;
    harness::ExperimentRunner runner(config);

    const std::string service = "ferret"; // similarity-search service

    printBanner(std::cout,
                "Node consolidation: how many '" + service +
                    "' instances fit?");

    TextTable table({"instances", "scheme", "QoS attainment",
                     "exec std (ms)", "batch kept", "FG ways"});
    for (size_t n = 1; n <= 3; ++n) {
        std::vector<std::string> fgs(n, service);
        auto mix = workload::makeMix(fgs,
                                     workload::BgSpec::single("bwaves"));
        auto results = runner.runAllSchemes(mix);
        const auto &baseline = results[0];
        for (const auto &res : results) {
            table.addRow(
                {strfmt("%zu", n), core::schemeName(res.scheme),
                 TextTable::pct(res.fgSuccessRatio()),
                 TextTable::num(res.fgDurationStd() * 1e3, 1),
                 TextTable::pct(
                     harness::bgThroughputRatio(res, baseline)),
                 res.finalFgWays ? strfmt("%u", res.finalFgWays)
                                 : std::string("shared")});
        }
    }
    table.print(std::cout);

    std::cout
        << "\nReading the table: each added instance displaces one "
           "batch core outright;\nthe interesting question is whether "
           "QoS holds for all instances and how much\nof the remaining "
           "batch capacity each scheme preserves. Dirigent keeps "
           "QoS\nnear 100% at every instance count while giving batch "
           "tasks most of their\nunmanaged throughput; static schemes "
           "pay for the same QoS with an\nacross-the-board batch "
           "slowdown.\n";
    return 0;
}
