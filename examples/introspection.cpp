/**
 * @file
 * Scenario example: watching Dirigent work, from the inside.
 *
 * Builds a machine by hand (the lower-level API the harness wraps),
 * attaches the full Dirigent runtime, and records a time series of the
 * control state — per-core DVFS frequency, DRAM utilization, the FG
 * task's cache occupancy and progress, and the live completion-time
 * prediction — while the mix runs. The CSV shows the fine controller
 * reacting within executions: exactly the fine-time-scale behaviour
 * that distinguishes Dirigent from coarse-grain managers.
 */

#include <iostream>

#include "common/strfmt.h"
#include "common/table.h"
#include "dirigent/profiler.h"
#include "dirigent/runtime.h"
#include "dirigent/trace.h"
#include "harness/timeline.h"
#include "machine/cat.h"
#include "machine/cpufreq.h"
#include "workload/benchmarks.h"

using namespace dirigent;

int
main()
{
    const auto &lib = workload::BenchmarkLibrary::instance();

    // 1. Machine: ferret on core 0, five RS instances on cores 1–5.
    machine::MachineConfig mcfg;
    mcfg.seed = 2718;
    machine::Machine machine(mcfg);
    sim::Engine engine(machine, mcfg.maxQuantum);
    machine::CpuFreqGovernor governor(machine, engine);
    machine::CatController cat(machine);

    machine::ProcessSpec fg;
    fg.name = "ferret";
    fg.program = &lib.get("ferret").program;
    fg.core = 0;
    fg.foreground = true;
    fg.niceness = -20;
    machine::Pid fgPid = machine.spawnProcess(fg);
    for (unsigned c = 1; c < machine.numCores(); ++c) {
        machine::ProcessSpec bg;
        bg.name = strfmt("rs@%u", c);
        bg.program = &lib.get("rs").program;
        bg.core = c;
        bg.foreground = false;
        bg.niceness = 5;
        machine.spawnProcess(bg);
    }

    // 2. Offline profile + deadline.
    core::OfflineProfiler profiler;
    core::Profile profile =
        profiler.profileAlone(lib.get("ferret"), mcfg);
    Time deadline = profile.totalTime() * 1.5;
    std::cout << "standalone ferret: "
              << TextTable::num(profile.totalTime().sec(), 3)
              << " s over " << profile.size()
              << " profiled segments; deadline set to "
              << TextTable::num(deadline.sec(), 3) << " s\n";

    // 3. The Dirigent runtime.
    core::RuntimeConfig rcfg;
    rcfg.runtimeCore = 1;
    core::DirigentRuntime runtime(machine, engine, governor, cat, rcfg);
    runtime.addForeground(fgPid, &profile, deadline);
    core::DecisionTrace trace;
    runtime.setTrace(&trace);
    runtime.start();

    // 4. Record the control state every 10 ms.
    harness::Timeline timeline(engine, Time::ms(10.0));
    timeline.addSeries("fg_freq_ghz", [&] {
        return machine.core(0).frequency().ghz();
    });
    timeline.addSeries("bg_freq_ghz", [&] {
        return machine.core(2).frequency().ghz();
    });
    timeline.addSeries("dram_util", [&] {
        return machine.dram().utilization();
    });
    timeline.addSeries("fg_cache_mib", [&] {
        return machine.cache().occupancy(0) / (1 << 20);
    });
    timeline.addSeries("fg_progress", [&] {
        return runtime.predictor(fgPid).progressFraction();
    });
    timeline.addSeries("predicted_total_s", [&] {
        const auto &pred = runtime.predictor(fgPid);
        return pred.hasObservation() ? pred.predictTotal().sec() : 0.0;
    });
    timeline.addSeries("fg_ways", [&] {
        return double(cat.fgWays());
    });
    timeline.start();

    // 5. Run ~8 executions.
    engine.runUntil(Time::sec(14.0));
    runtime.stop();
    timeline.stop();

    // 6. Report.
    printBanner(std::cout, "Control-state time series (CSV)");
    timeline.writeCsv(std::cout);

    printBanner(std::cout, "Summary");
    const auto &samples = runtime.midpointSamples(fgPid);
    TextTable table({"exec", "midpoint prediction (s)", "actual (s)",
                     "deadline met"});
    for (const auto &s : samples) {
        table.addRow({strfmt("%lu", (unsigned long)s.executionIndex),
                      TextTable::num(s.predictedTotal.sec(), 3),
                      TextTable::num(s.actualTotal.sec(), 3),
                      s.actualTotal <= deadline ? "yes" : "NO"});
    }
    table.print(std::cout);
    std::cout << "fine-controller decisions: "
              << runtime.fineController().stats().decisions
              << ", BG throttle actions: "
              << runtime.fineController().stats().bgThrottles
              << ", pauses: "
              << runtime.fineController().stats().pauses << "\n";
    if (auto *coarse = runtime.coarseController()) {
        std::cout << "coarse partition: " << coarse->fgWays()
                  << " FG ways after " << coarse->invocations()
                  << " invocations\n";
    }

    printBanner(std::cout, "Last control decisions (decision trace)");
    size_t shown = 0;
    for (auto it = trace.events().rbegin();
         it != trace.events().rend() && shown < 12; ++it, ++shown) {
        std::cout << strfmt("  t=%.3fs  %-16s slack=%.3f  %s\n",
                            it->when.sec(),
                            core::traceActionName(it->action),
                            it->slackRatio, it->detail.c_str());
    }
    std::cout << trace.recorded()
              << " control actions recorded in total\n";
    return 0;
}
