/**
 * @file
 * Quickstart: the smallest end-to-end Dirigent session.
 *
 * 1. Profile a latency-critical (foreground) application standalone.
 * 2. Run it collocated with five copies of a memory-hungry background
 *    application, unmanaged (Baseline): deadlines are missed.
 * 3. Run the same mix under the full Dirigent runtime: the deadline is
 *    enforced with minimal background throughput loss.
 */

#include <iostream>

#include "common/table.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "workload/mix.h"

using namespace dirigent;

int
main()
{
    harness::HarnessConfig config;
    config.executions = harness::envExecutions(30);
    config.warmup = 4;

    harness::ExperimentRunner runner(config);

    // The workload: ferret (content-similarity search, the paper's
    // running example) against five bwaves-like background tasks.
    auto mix = workload::makeMix({"ferret"},
                                 workload::BgSpec::single("bwaves"));

    printBanner(std::cout, "Dirigent quickstart: " + mix.name);

    // Standalone behaviour of the FG application.
    auto alone = runner.runStandalone("ferret", config.executions);
    std::cout << "\nStandalone ferret: mean "
              << TextTable::num(alone.fgDurationMean(), 3) << " s, std "
              << TextTable::num(alone.fgDurationStd(), 4) << " s, MPKI "
              << TextTable::num(alone.fgMpki(), 2) << "\n";

    // Baseline (free contention) calibrates the deadline: µ + 0.3σ.
    auto baseline = runner.run(mix, core::Scheme::Baseline, {});
    auto deadlines = runner.deadlinesFromBaseline(baseline);
    harness::applyDeadlines(baseline, deadlines);
    std::cout << "Contended (Baseline): mean "
              << TextTable::num(baseline.fgDurationMean(), 3)
              << " s, std " << TextTable::num(baseline.fgDurationStd(), 4)
              << " s, MPKI " << TextTable::num(baseline.fgMpki(), 2)
              << "\n";
    std::cout << "Deadline (mu + 0.3 sigma): "
              << TextTable::num(deadlines.at("ferret").sec(), 3)
              << " s -> Baseline success ratio "
              << TextTable::pct(baseline.fgSuccessRatio()) << "\n";

    // Full Dirigent: fine DVFS/pause control + coarse cache partition.
    auto dirigent = runner.run(mix, core::Scheme::Dirigent, deadlines);
    std::cout << "\nDirigent:             mean "
              << TextTable::num(dirigent.fgDurationMean(), 3)
              << " s, std " << TextTable::num(dirigent.fgDurationStd(), 4)
              << " s, success "
              << TextTable::pct(dirigent.fgSuccessRatio()) << "\n";
    std::cout << "BG throughput vs Baseline: "
              << TextTable::pct(
                     harness::bgThroughputRatio(dirigent, baseline))
              << "\n";
    std::cout << "FG execution-time std reduction: "
              << TextTable::pct(
                     1.0 - harness::stdRatio(dirigent, baseline))
              << "\n";
    std::cout << "Converged FG cache partition: " << dirigent.finalFgWays
              << " of " << runner.config().machine.cache.numWays
              << " ways\n";
    std::cout << "Midpoint prediction error: "
              << TextTable::pct(dirigent.predictionError()) << "\n";

    return 0;
}
