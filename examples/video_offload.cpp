/**
 * @file
 * Scenario example: cloud video/vision offload.
 *
 * The paper's motivating third workload class: computationally
 * intensive, latency-critical tasks offloaded from user devices to the
 * cloud — live video processing and recognition. Each frame batch is a
 * foreground task with a service-level objective (SLO); the operator
 * backfills the node with batch analytics and must decide how tight an
 * SLO the node can honour.
 *
 * This example sweeps the SLO from aggressive to relaxed and reports,
 * for each target, what Dirigent delivers: SLO attainment, completion
 * predictability, and how much batch (background) throughput the node
 * retains — the Fig. 15 tradeoff operationalized as capacity planning.
 */

#include <iostream>

#include "common/stats.h"
#include "common/strfmt.h"
#include "common/table.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "workload/mix.h"

using namespace dirigent;

int
main()
{
    harness::HarnessConfig config;
    config.executions = harness::envExecutions(30);
    config.warmup = 4;
    harness::ExperimentRunner runner(config);

    // bodytrack stands in for the per-frame vision pipeline; the node
    // is backfilled with a rotating pair of batch analytics jobs.
    const std::string app = "bodytrack";
    auto mix = workload::makeMix(
        {app}, workload::BgSpec::rotate("libquantum", "soplex"));

    printBanner(std::cout, "Cloud vision offload: SLO planning for " +
                               mix.name);

    auto alone = runner.runStandalone(app);
    auto baseline = runner.run(mix, core::Scheme::Baseline, {});
    std::cout << "frame-batch service time: standalone "
              << TextTable::num(alone.fgDurationMean() * 1e3, 0)
              << " ms; backfilled & unmanaged "
              << TextTable::num(baseline.fgDurationMean() * 1e3, 0)
              << " ms (std "
              << TextTable::num(baseline.fgDurationStd() * 1e3, 0)
              << " ms)\n\n";

    TextTable table({"SLO (ms)", "SLO vs standalone", "attainment",
                     "p95 (ms)", "std (ms)", "batch throughput kept"});
    for (double factor : {1.05, 1.10, 1.15, 1.20, 1.30}) {
        Time slo = Time::sec(alone.fgDurationMean() * factor);
        std::map<std::string, Time> deadlines = {{app, slo}};
        auto res = runner.run(mix, core::Scheme::Dirigent, deadlines);
        auto durations = res.pooledDurations();
        table.addRow({TextTable::num(slo.sec() * 1e3, 0),
                      strfmt("%.2fx", factor),
                      TextTable::pct(res.fgSuccessRatio()),
                      TextTable::num(
                          percentile(durations, 0.95) * 1e3, 0),
                      TextTable::num(res.fgDurationStd() * 1e3, 1),
                      TextTable::pct(harness::bgThroughputRatio(
                          res, baseline))});
    }
    table.print(std::cout);

    std::cout
        << "\nReading the table: pick the tightest SLO whose attainment "
           "meets your target\n(e.g. 95%); everything looser than that "
           "is batch throughput you can keep.\nWithout Dirigent the "
           "same node would need the SLO set past "
        << TextTable::num((baseline.fgDurationMean() +
                           2.0 * baseline.fgDurationStd()) *
                              1e3,
                          0)
        << " ms\n(mean + 2 std of the unmanaged distribution) for "
           "comparable attainment.\n";
    return 0;
}
