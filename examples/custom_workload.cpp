/**
 * @file
 * Scenario example: bringing your own application model.
 *
 * Walks the full workflow a user follows to evaluate Dirigent for
 * *their* service: define the application's phase structure as an INI
 * workload (here, inline text — normally a file), register it in the
 * benchmark library, profile it offline, persist the profile the way a
 * deployment would ship it, and evaluate the collocation QoS against a
 * chosen batch backfill.
 */

#include <iostream>

#include "common/strfmt.h"
#include "common/table.h"
#include "dirigent/profile.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "workload/benchmarks.h"
#include "workload/mix.h"
#include "workload/parser.h"

using namespace dirigent;

namespace {

/** The user's service: a three-stage speech-to-text-like pipeline. */
const char *kWorkloadIni = R"(
[program]
name = asr-pipeline
loop = false

[phase.0]
name = feature-extraction
instructions = 0.5e9
instr_jitter = 0.04     ; utterance-length dependence
cpi = 0.9
apki = 6
working_set = 1.5MiB
max_hit = 0.94
mlp = 2.4

[phase.1]
name = acoustic-model
instructions = 1.1e9
instr_jitter = 0.04
cpi = 0.85
apki = 13
working_set = 3.5MiB
max_hit = 0.90
mlp = 1.8

[phase.2]
name = decoder
instructions = 0.6e9
instr_jitter = 0.06
cpi = 1.05
apki = 8
working_set = 2MiB
max_hit = 0.92
mlp = 1.7
)";

} // namespace

int
main()
{
    // 1. Parse and register the user workload. From here on it behaves
    //    exactly like a built-in benchmark.
    workload::PhaseProgram program =
        workload::parsePhaseProgram(std::string(kWorkloadIni));
    const auto &bench = workload::BenchmarkLibrary::registerCustom(
        program.name, "speech-to-text offload pipeline", program);
    printBanner(std::cout, "Custom workload: " + bench.name);
    std::cout << program.phases.size()
              << " phases, nominal work "
              << strfmt("%.2fG", program.totalInstructions() / 1e9)
              << " instructions\n";

    // 2. Profile it standalone and persist the profile — the artifact
    //    a deployment ships alongside the binary.
    core::OfflineProfiler profiler;
    core::Profile profile =
        profiler.profileAlone(bench, machine::MachineConfig{});
    std::string serialized = profile.serialize();
    auto restored = core::Profile::deserialize(serialized);
    std::cout << "profiled standalone: "
              << TextTable::num(profile.totalTime().sec(), 3) << " s in "
              << profile.size() << " segments ("
              << serialized.size() << " bytes serialized, round-trip "
              << (restored ? "ok" : "FAILED") << ")\n";

    // 3. Evaluate collocation against two batch backfills.
    harness::HarnessConfig cfg;
    cfg.executions = harness::envExecutions(25);
    cfg.warmup = 3;
    harness::ExperimentRunner runner(cfg);

    TextTable table({"backfill", "scheme", "QoS attainment",
                     "service std (ms)", "batch kept"});
    for (const auto &bg :
         {workload::BgSpec::single("bwaves"),
          workload::BgSpec::rotate("libquantum", "soplex")}) {
        auto mix = workload::makeMix({bench.name}, bg);
        auto results = runner.runAllSchemes(mix);
        const auto &baseline = results[0];
        for (const auto &res : {results[0], results[4]}) {
            table.addRow(
                {bg.label(), core::schemeName(res.scheme),
                 TextTable::pct(res.fgSuccessRatio()),
                 TextTable::num(res.fgDurationStd() * 1e3, 1),
                 TextTable::pct(
                     harness::bgThroughputRatio(res, baseline))});
        }
    }
    table.print(std::cout);

    std::cout << "\nThe same workload definition drives the CLI:\n"
                 "  run_experiment --fg-program asr.ini bwaves "
                 "scheme=all\n";
    return 0;
}
