/**
 * @file
 * Scenario example: interactive-style exploration of Dirigent's
 * mechanism space on a chosen mix.
 *
 * Usage: tradeoff_explorer [fg] [bg] [bg2]
 *   fg   foreground benchmark (default raytrace)
 *   bg   background benchmark (default bwaves); pass bg2 for a
 *        rotating pair.
 *
 * Compares the five schemes on the requested mix, then isolates each
 * Dirigent mechanism (prediction-guided DVFS, pausing, partitioning)
 * by sweeping the deadline. A quick way to reproduce any single cell
 * of the paper's Fig. 9 matrix.
 */

#include <iostream>

#include "common/log.h"
#include "common/strfmt.h"
#include "common/table.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "workload/benchmarks.h"
#include "workload/mix.h"

using namespace dirigent;

int
main(int argc, char **argv)
{
    std::string fg = argc > 1 ? argv[1] : "raytrace";
    std::string bg = argc > 2 ? argv[2] : "bwaves";
    std::string bg2 = argc > 3 ? argv[3] : "";

    const auto &lib = workload::BenchmarkLibrary::instance();
    if (!lib.has(fg) || !lib.has(bg) || (!bg2.empty() && !lib.has(bg2)))
        fatal("unknown benchmark; see table1_benchmarks for the list");

    auto spec = bg2.empty() ? workload::BgSpec::single(bg)
                            : workload::BgSpec::rotate(bg, bg2);
    auto mix = workload::makeMix({fg}, spec);

    harness::HarnessConfig config;
    config.executions = harness::envExecutions(30);
    harness::ExperimentRunner runner(config);

    printBanner(std::cout, "Scheme comparison: " + mix.name);
    auto results = runner.runAllSchemes(mix);
    std::vector<std::vector<harness::SchemeRunResult>> perMix = {
        results};
    harness::printSchemeComparison(std::cout, perMix);
    std::cout << "\nNormalized FG std:\n";
    harness::printStdComparison(std::cout, perMix);

    const auto &dirigent = results[4];
    std::cout << "\nDirigent internals: converged partition "
              << dirigent.finalFgWays << " ways; midpoint prediction "
              << "error " << TextTable::pct(dirigent.predictionError())
              << "\n";
    if (!dirigent.bgGradeResidency.empty()) {
        std::cout << "BG frequency residency:";
        double total = 0.0;
        for (uint64_t c : dirigent.bgGradeResidency)
            total += double(c);
        for (size_t g = 0; g < dirigent.bgGradeResidency.size(); ++g) {
            std::cout << strfmt(
                "  %.1fGHz:%.0f%%", dirigent.ladderGhz[g],
                100.0 * double(dirigent.bgGradeResidency[g]) / total);
        }
        std::cout << "\n";
    }

    printBanner(std::cout, "Deadline sweep (Dirigent)");
    auto alone = runner.runStandalone(fg);
    TextTable sweep({"target (x standalone)", "attainment",
                     "FG mean (x)", "batch kept"});
    for (double factor : {1.05, 1.10, 1.15, 1.20}) {
        std::map<std::string, Time> deadlines = {
            {fg, Time::sec(alone.fgDurationMean() * factor)}};
        auto res = runner.run(mix, core::Scheme::Dirigent, deadlines);
        sweep.addRow({strfmt("%.2fx", factor),
                      TextTable::pct(res.fgSuccessRatio()),
                      TextTable::num(res.fgDurationMean() /
                                         alone.fgDurationMean(),
                                     3),
                      TextTable::pct(harness::bgThroughputRatio(
                          res, results[0]))});
    }
    sweep.print(std::cout);
    return 0;
}
