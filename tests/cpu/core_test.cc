/**
 * @file
 * Tests of the core execution model: DVFS scaling, memory stalls,
 * phase-boundary handling, completion timing, and stolen time.
 */

#include <gtest/gtest.h>

#include "common/random.h"
#include "cpu/core.h"

namespace dirigent::cpu {
namespace {

mem::CacheConfig
cacheConfig()
{
    mem::CacheConfig cfg;
    cfg.numWays = 4;
    cfg.bytesPerWay = 1.0_MiB;
    return cfg;
}

mem::DramConfig
dramConfig()
{
    mem::DramConfig cfg;
    cfg.peakBandwidth = 10e9;
    cfg.baseLatency = Time::ns(100.0);
    cfg.smoothing = 1.0;
    return cfg;
}

/** Compute-only program: no LLC accesses, no jitter. */
workload::PhaseProgram
computeProgram(double instructions, double cpi)
{
    workload::PhaseProgram prog;
    prog.name = "compute";
    workload::Phase p;
    p.name = "only";
    p.instructions = instructions;
    p.cpiBase = cpi;
    p.llcApki = 0.0;
    p.cpiJitterSigma = 0.0;
    p.instrJitterSigma = 0.0;
    prog.phases = {p};
    return prog;
}

class CoreTest : public testing::Test
{
  protected:
    CoreTest()
        : cache_(cacheConfig(), 1), dram_(dramConfig()),
          core_(0, 0, cache_, dram_, Freq::ghz(2.0))
    {
    }

    mem::SharedCache cache_;
    mem::DramModel dram_;
    Core core_;
};

TEST_F(CoreTest, ComputeRateMatchesFrequency)
{
    // 2 GHz, CPI 1.0, no memory: 2e9 instructions per second.
    auto prog = computeProgram(1e12, 1.0);
    workload::Task task(&prog, Rng(1));
    auto res = core_.advance(&task, Time::ms(1.0));
    EXPECT_NEAR(res.instructions, 2e6, 1.0);
    EXPECT_FALSE(res.completed);
}

TEST_F(CoreTest, DvfsScalesComputeRate)
{
    auto prog = computeProgram(1e12, 1.0);
    workload::Task task(&prog, Rng(1));
    core_.setFrequency(Freq::ghz(1.0));
    auto res = core_.advance(&task, Time::ms(1.0));
    EXPECT_NEAR(res.instructions, 1e6, 1.0);
}

TEST_F(CoreTest, MemoryStallSlowsExecution)
{
    workload::PhaseProgram prog = computeProgram(1e12, 1.0);
    prog.phases[0].llcApki = 10.0;       // 1% of instructions access LLC
    prog.phases[0].maxHitRatio = 0.0;    // all accesses miss
    prog.phases[0].mlp = 1.0;
    workload::Task task(&prog, Rng(1));
    auto res = core_.advance(&task, Time::ms(1.0));
    // spi = 0.5 ns + 0.01 × 100 ns = 1.5 ns → 2/3e6 instructions.
    EXPECT_NEAR(res.instructions, 1e-3 / 1.5e-9, 100.0);
}

TEST_F(CoreTest, MlpDividesStall)
{
    workload::PhaseProgram prog = computeProgram(1e12, 1.0);
    prog.phases[0].llcApki = 10.0;
    prog.phases[0].maxHitRatio = 0.0;
    prog.phases[0].mlp = 4.0;
    workload::Task task(&prog, Rng(1));
    auto res = core_.advance(&task, Time::ms(1.0));
    // spi = 0.5 + 0.01 × 100/4 = 0.75 ns.
    EXPECT_NEAR(res.instructions, 1e-3 / 0.75e-9, 100.0);
}

TEST_F(CoreTest, MemoryBoundInsensitiveToDvfs)
{
    workload::PhaseProgram prog = computeProgram(1e12, 0.1);
    prog.phases[0].llcApki = 100.0; // extremely memory bound
    prog.phases[0].maxHitRatio = 0.0;
    prog.phases[0].mlp = 1.0;
    workload::Task t1(&prog, Rng(1));
    auto fast = core_.advance(&t1, Time::ms(1.0));
    core_.setFrequency(Freq::ghz(1.0));
    workload::Task t2(&prog, Rng(1));
    cache_.flush(0);
    auto slow = core_.advance(&t2, Time::ms(1.0));
    // Halving frequency loses well under half the throughput.
    EXPECT_GT(slow.instructions / fast.instructions, 0.95);
}

TEST_F(CoreTest, CompletionMidQuantum)
{
    // 1e6 instructions at 2 GHz CPI 1 = 0.5 ms.
    auto prog = computeProgram(1e6, 1.0);
    workload::Task task(&prog, Rng(1));
    auto res = core_.advance(&task, Time::ms(1.0));
    EXPECT_TRUE(res.completed);
    EXPECT_NEAR(res.completionOffset.ms(), 0.5, 1e-6);
    EXPECT_NEAR(res.instructions, 1e6, 1e-3);
    EXPECT_TRUE(task.finished());
}

TEST_F(CoreTest, PhaseBoundaryCrossedWithinQuantum)
{
    workload::PhaseProgram prog;
    prog.name = "two";
    workload::Phase a = computeProgram(1e5, 1.0).phases[0];
    workload::Phase b = computeProgram(1e5, 2.0).phases[0];
    prog.phases = {a, b};
    workload::Task task(&prog, Rng(1));
    // Phase a: 50 µs; phase b: 100 µs. Advance 120 µs → finish a,
    // retire 70 µs worth of b at 1e9/s.
    auto res = core_.advance(&task, Time::us(120.0));
    EXPECT_FALSE(res.completed);
    EXPECT_EQ(task.phaseIndex(), 1u);
    EXPECT_NEAR(res.instructions, 1e5 + 70e-6 * 1e9, 100.0);
}

TEST_F(CoreTest, StolenTimeReducesRetirement)
{
    auto prog = computeProgram(1e12, 1.0);
    workload::Task task(&prog, Rng(1));
    core_.stealTime(Time::us(500.0));
    auto res = core_.advance(&task, Time::ms(1.0));
    // Half the quantum was stolen.
    EXPECT_NEAR(res.instructions, 1e6, 1.0);
    // Stolen time still burns cycles (the runtime ran).
    EXPECT_NEAR(core_.counters().read().cycles, 2e6, 10.0);
}

TEST_F(CoreTest, StolenTimeCarriesOver)
{
    auto prog = computeProgram(1e12, 1.0);
    workload::Task task(&prog, Rng(1));
    core_.stealTime(Time::ms(1.5));
    auto res1 = core_.advance(&task, Time::ms(1.0));
    EXPECT_DOUBLE_EQ(res1.instructions, 0.0); // fully stolen
    auto res2 = core_.advance(&task, Time::ms(1.0));
    EXPECT_NEAR(res2.instructions, 1e6, 1.0); // 0.5 ms left stolen
}

TEST_F(CoreTest, IdleCoreRetiresNothing)
{
    auto res = core_.advance(nullptr, Time::ms(1.0));
    EXPECT_DOUBLE_EQ(res.instructions, 0.0);
    EXPECT_FALSE(res.completed);
}

TEST_F(CoreTest, CountersTrackTraffic)
{
    workload::PhaseProgram prog = computeProgram(1e12, 1.0);
    prog.phases[0].llcApki = 10.0;
    prog.phases[0].maxHitRatio = 0.0;
    workload::Task task(&prog, Rng(1));
    auto res = core_.advance(&task, Time::ms(1.0));
    const auto &sample = core_.counters().read();
    EXPECT_DOUBLE_EQ(sample.instructions, res.instructions);
    EXPECT_NEAR(sample.llcAccesses, res.instructions * 0.01, 1e-6);
    EXPECT_NEAR(sample.llcMisses, sample.llcAccesses, 1e-6);
}

TEST_F(CoreTest, MissTrafficReachesDram)
{
    workload::PhaseProgram prog = computeProgram(1e12, 1.0);
    prog.phases[0].llcApki = 10.0;
    prog.phases[0].maxHitRatio = 0.0;
    workload::Task task(&prog, Rng(1));
    core_.advance(&task, Time::ms(1.0));
    double misses = core_.counters().read().llcMisses;
    EXPECT_DOUBLE_EQ(dram_.totalBytes(), misses * 64.0);
}

TEST_F(CoreTest, FinishedTaskIsIdle)
{
    auto prog = computeProgram(100.0, 1.0);
    workload::Task task(&prog, Rng(1));
    core_.advance(&task, Time::ms(1.0));
    ASSERT_TRUE(task.finished());
    auto res = core_.advance(&task, Time::ms(1.0));
    EXPECT_DOUBLE_EQ(res.instructions, 0.0);
}

TEST(CoreDeathTest, RejectsBadConstruction)
{
    mem::SharedCache cache(cacheConfig(), 1);
    mem::DramModel dram(dramConfig());
    EXPECT_DEATH(Core(0, 5, cache, dram, Freq::ghz(2.0)), "slot");
    EXPECT_DEATH(Core(0, 0, cache, dram, Freq()), "frequency");
}

} // namespace
} // namespace dirigent::cpu
