/**
 * @file
 * Unit tests for the performance-counter model.
 */

#include <gtest/gtest.h>

#include "cpu/perf_counters.h"

namespace dirigent::cpu {
namespace {

TEST(PerfCountersTest, StartsAtZero)
{
    PerfCounters ctr;
    EXPECT_DOUBLE_EQ(ctr.read().instructions, 0.0);
    EXPECT_DOUBLE_EQ(ctr.read().llcAccesses, 0.0);
    EXPECT_DOUBLE_EQ(ctr.read().llcMisses, 0.0);
    EXPECT_DOUBLE_EQ(ctr.read().cycles, 0.0);
}

TEST(PerfCountersTest, Accumulates)
{
    PerfCounters ctr;
    ctr.addInstructions(100.0);
    ctr.addInstructions(50.0);
    ctr.addLlcTraffic(10.0, 3.0);
    ctr.addLlcTraffic(5.0, 1.0);
    ctr.addCycles(200.0);
    EXPECT_DOUBLE_EQ(ctr.read().instructions, 150.0);
    EXPECT_DOUBLE_EQ(ctr.read().llcAccesses, 15.0);
    EXPECT_DOUBLE_EQ(ctr.read().llcMisses, 4.0);
    EXPECT_DOUBLE_EQ(ctr.read().cycles, 200.0);
}

TEST(PerfCountersTest, ResetZeroes)
{
    PerfCounters ctr;
    ctr.addInstructions(10.0);
    ctr.reset();
    EXPECT_DOUBLE_EQ(ctr.read().instructions, 0.0);
}

TEST(CounterSampleTest, DeltaSubtraction)
{
    CounterSample before{100.0, 20.0, 5.0, 300.0};
    CounterSample after{180.0, 50.0, 9.0, 500.0};
    CounterSample delta = after - before;
    EXPECT_DOUBLE_EQ(delta.instructions, 80.0);
    EXPECT_DOUBLE_EQ(delta.llcAccesses, 30.0);
    EXPECT_DOUBLE_EQ(delta.llcMisses, 4.0);
    EXPECT_DOUBLE_EQ(delta.cycles, 200.0);
}

} // namespace
} // namespace dirigent::cpu
