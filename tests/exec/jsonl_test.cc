/**
 * @file
 * Tests of the JSONL sweep export: JSON string escaping and the
 * per-record line format.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "exec/jsonl.h"

namespace dirigent::exec {
namespace {

TEST(JsonEscapeTest, PassesPlainTextThrough)
{
    EXPECT_EQ(jsonEscape("ferret rs"), "ferret rs");
}

TEST(JsonEscapeTest, EscapesSpecials)
{
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
    EXPECT_EQ(jsonEscape(std::string("a\x01z")), "a\\u0001z");
}

TEST(JsonlWriterTest, WritesOneSelfDescribingLinePerRecord)
{
    harness::SchemeRunResult res;
    res.mixName = "ferret rs";
    res.scheme = core::Scheme::Dirigent;
    res.schemeLabel = "Dirigent";
    res.specHash = 13608946627194072229ull;
    res.perFgDurations = {{0.5, 0.6, 0.7}};
    res.onTime = 2;
    res.total = 3;
    res.span = Time::sec(10.0);
    res.fgInstructions = 1e9;
    res.bgInstructions = 2e9;
    res.finalFgWays = 7;

    std::ostringstream out;
    JsonlWriter writer(out);
    writer.write(res, "Dirigent", 1234, 0.25);
    writer.write(res, "Dirigent", 1234, 0.25);

    std::istringstream lines(out.str());
    std::string line;
    size_t count = 0;
    while (std::getline(lines, line)) {
        ++count;
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        EXPECT_NE(line.find("\"mix\":\"ferret rs\""),
                  std::string::npos);
        EXPECT_NE(line.find("\"stage\":\"Dirigent\""),
                  std::string::npos);
        EXPECT_NE(line.find("\"scheme\":\"Dirigent\""),
                  std::string::npos);
        // 64-bit spec hash as a decimal string (see manifest schema).
        EXPECT_NE(line.find("\"spec_hash\":\"13608946627194072229\""),
                  std::string::npos);
        EXPECT_NE(line.find("\"seed\":1234"), std::string::npos);
        EXPECT_NE(line.find("\"on_time\":2"), std::string::npos);
        EXPECT_NE(line.find("\"total\":3"), std::string::npos);
        EXPECT_NE(line.find("\"final_fg_ways\":7"), std::string::npos);
    }
    EXPECT_EQ(count, 2u);
}

TEST(JsonlWriterTest, SchemeFallsBackToEnumNameWithoutLabel)
{
    harness::SchemeRunResult res;
    res.mixName = "m";
    res.scheme = core::Scheme::StaticBoth;
    std::ostringstream out;
    JsonlWriter writer(out);
    writer.write(res, "stage", 1, 0.0);
    EXPECT_NE(out.str().find("\"scheme\":\"StaticBoth\""),
              std::string::npos);
    EXPECT_NE(out.str().find("\"spec_hash\":\"0\""), std::string::npos);
}

TEST(JsonlWriterTest, OpenFailureReturnsNull)
{
    EXPECT_EQ(JsonlWriter::open("/nonexistent-dir/sweep.jsonl"),
              nullptr);
}

TEST(EnvJsonlPathTest, FallsBackWhenUnset)
{
    unsetenv("DIRIGENT_JSONL");
    EXPECT_EQ(envJsonlPath(), "");
    EXPECT_EQ(envJsonlPath("out.jsonl"), "out.jsonl");
    setenv("DIRIGENT_JSONL", "/tmp/sweep.jsonl", 1);
    EXPECT_EQ(envJsonlPath("out.jsonl"), "/tmp/sweep.jsonl");
    unsetenv("DIRIGENT_JSONL");
}

} // namespace
} // namespace dirigent::exec
