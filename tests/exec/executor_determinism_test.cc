/**
 * @file
 * Determinism regression tests for the sharded experiment executor:
 * the same sweep run serially twice, through the executor with one
 * worker, and through the executor with many workers must produce
 * exactly equal results — bit-for-bit on every recorded duration and
 * counter. This is the executor's core contract: parallelism must not
 * perturb simulated results.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "exec/executor.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "workload/mix.h"

namespace dirigent::exec {
namespace {

harness::HarnessConfig
fastConfig()
{
    harness::HarnessConfig cfg;
    cfg.executions = 4;
    cfg.warmup = 1;
    cfg.seed = 20160402;
    return cfg;
}

std::vector<workload::WorkloadMix>
testMixes()
{
    return {
        workload::makeMix({"ferret"}, workload::BgSpec::single("rs")),
        workload::makeMix({"streamcluster"},
                          workload::BgSpec::rotate("lbm", "namd")),
    };
}

ExecutorConfig
quietConfig(unsigned threads)
{
    ExecutorConfig ecfg;
    ecfg.threads = threads;
    ecfg.progress = false;
    return ecfg;
}

void
expectSameResult(const harness::SchemeRunResult &a,
                 const harness::SchemeRunResult &b)
{
    EXPECT_EQ(a.mixName, b.mixName);
    EXPECT_EQ(a.scheme, b.scheme);
    EXPECT_EQ(a.deadlines, b.deadlines);
    EXPECT_EQ(a.fgBenchmarks, b.fgBenchmarks);
    // Exact double equality throughout: determinism means bit-for-bit
    // replay, not approximate agreement.
    EXPECT_EQ(a.perFgDurations, b.perFgDurations);
    EXPECT_EQ(a.onTime, b.onTime);
    EXPECT_EQ(a.total, b.total);
    EXPECT_EQ(a.span, b.span);
    EXPECT_EQ(a.bgInstructions, b.bgInstructions);
    EXPECT_EQ(a.fgInstructions, b.fgInstructions);
    EXPECT_EQ(a.fgMisses, b.fgMisses);
    EXPECT_EQ(a.totalMisses, b.totalMisses);
    EXPECT_EQ(a.finalFgWays, b.finalFgWays);
    EXPECT_EQ(a.bgGradeResidency, b.bgGradeResidency);
}

void
expectSameSweep(
    const std::vector<std::vector<harness::SchemeRunResult>> &a,
    const std::vector<std::vector<harness::SchemeRunResult>> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t m = 0; m < a.size(); ++m) {
        ASSERT_EQ(a[m].size(), b[m].size());
        for (size_t s = 0; s < a[m].size(); ++s)
            expectSameResult(a[m][s], b[m][s]);
    }
}

TEST(ExecutorDeterminismTest, SerialRunsReplayExactly)
{
    auto mix = testMixes()[0];
    harness::ExperimentRunner first(fastConfig());
    harness::ExperimentRunner second(fastConfig());
    auto a = first.runAllSchemes(mix);
    auto b = second.runAllSchemes(mix);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        expectSameResult(a[i], b[i]);
}

TEST(ExecutorDeterminismTest, SingleWorkerMatchesLegacySerialPath)
{
    auto mixes = testMixes();
    std::vector<std::vector<harness::SchemeRunResult>> legacy;
    harness::ExperimentRunner runner(fastConfig());
    for (const auto &mix : mixes)
        legacy.push_back(runner.runAllSchemes(mix));

    SweepExecutor executor(fastConfig(), quietConfig(1));
    EXPECT_EQ(executor.threads(), 1u);
    expectSameSweep(executor.runSchemeSweep(mixes), legacy);
}

TEST(ExecutorDeterminismTest, WorkerCountDoesNotChangeResults)
{
    auto mixes = testMixes();
    SweepExecutor serial(fastConfig(), quietConfig(1));
    auto one = serial.runSchemeSweep(mixes);

    // More workers than jobs that can be ready at once: maximal
    // interleaving pressure.
    SweepExecutor parallel(fastConfig(), quietConfig(4));
    EXPECT_EQ(parallel.threads(), 4u);
    expectSameSweep(parallel.runSchemeSweep(mixes), one);
}

TEST(ExecutorDeterminismTest, ForEachMatchesAcrossWorkerCounts)
{
    auto mixes = testMixes();
    std::vector<JobKey> keys;
    for (const auto &mix : mixes)
        keys.push_back({mix.name, "Baseline", 0});

    auto runSweep = [&](unsigned threads) {
        std::vector<harness::SchemeRunResult> out(mixes.size());
        SweepExecutor executor(fastConfig(), quietConfig(threads));
        executor.forEach(keys, [&](size_t i, const JobKey &,
                                   harness::ExperimentRunner &runner) {
            out[i] = runner.run(mixes[i], core::Scheme::Baseline, {});
        });
        return out;
    };

    auto one = runSweep(1);
    auto four = runSweep(4);
    ASSERT_EQ(one.size(), four.size());
    for (size_t i = 0; i < one.size(); ++i)
        expectSameResult(one[i], four[i]);
}

TEST(ResolveThreadsTest, ZeroMeansHardwareConcurrency)
{
    EXPECT_GE(resolveThreads(0), 1u);
    EXPECT_EQ(resolveThreads(1), 1u);
    EXPECT_EQ(resolveThreads(6), 6u);
}

TEST(EnvThreadsTest, ParsesAndValidates)
{
    unsetenv("DIRIGENT_THREADS");
    EXPECT_EQ(harness::envThreads(3), 3u);
    setenv("DIRIGENT_THREADS", "8", 1);
    EXPECT_EQ(harness::envThreads(3), 8u);
    setenv("DIRIGENT_THREADS", "0", 1);
    EXPECT_EQ(harness::envThreads(3), 0u);
    setenv("DIRIGENT_THREADS", "bogus", 1);
    EXPECT_EQ(harness::envThreads(3), 3u);
    setenv("DIRIGENT_THREADS", "-2", 1);
    EXPECT_EQ(harness::envThreads(3), 3u);
    unsetenv("DIRIGENT_THREADS");
}

} // namespace
} // namespace dirigent::exec
