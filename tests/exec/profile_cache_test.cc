/**
 * @file
 * Tests of the shared profile cache: profile-once semantics under
 * concurrent access, stable references, and parity with the offline
 * profiler it wraps.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "dirigent/profiler.h"
#include "exec/profile_cache.h"
#include "harness/experiment.h"
#include "workload/benchmarks.h"

namespace dirigent::exec {
namespace {

harness::HarnessConfig
fastConfig()
{
    harness::HarnessConfig cfg;
    cfg.executions = 4;
    cfg.warmup = 1;
    cfg.seed = 99;
    return cfg;
}

TEST(SharedProfileCacheTest, ProfilesOnceAndReturnsStableReference)
{
    auto cfg = fastConfig();
    SharedProfileCache cache(cfg.machine, cfg.profiler);
    const core::Profile &first = cache.get("ferret");
    const core::Profile &second = cache.get("ferret");
    EXPECT_EQ(&first, &second);
    EXPECT_EQ(cache.profileCount(), 1u);
    EXPECT_EQ(first.benchmark(), "ferret");
    EXPECT_FALSE(first.empty());
}

TEST(SharedProfileCacheTest, MatchesOfflineProfiler)
{
    auto cfg = fastConfig();
    SharedProfileCache cache(cfg.machine, cfg.profiler);
    const core::Profile &cached = cache.get("streamcluster");
    const auto &bench =
        workload::BenchmarkLibrary::instance().get("streamcluster");
    core::Profile direct = core::OfflineProfiler(cfg.profiler)
                               .profileAlone(bench, cfg.machine);
    EXPECT_EQ(cached.totalTime(), direct.totalTime());
    ASSERT_EQ(cached.size(), direct.size());
    EXPECT_TRUE(std::equal(cached.segments().begin(),
                           cached.segments().end(),
                           direct.segments().begin()));
}

TEST(SharedProfileCacheTest, ConcurrentGetProfilesEachBenchmarkOnce)
{
    auto cfg = fastConfig();
    SharedProfileCache cache(cfg.machine, cfg.profiler);
    const std::vector<std::string> benchmarks = {"ferret",
                                                 "streamcluster"};

    // 8 threads hammer the same two benchmarks; each benchmark must be
    // profiled exactly once and every caller must see the same object.
    std::vector<const core::Profile *> seen(8);
    std::vector<std::thread> threads;
    for (size_t t = 0; t < seen.size(); ++t)
        threads.emplace_back([&, t] {
            seen[t] = &cache.get(benchmarks[t % benchmarks.size()]);
            // Re-request both; must not trigger extra profiling.
            for (const auto &name : benchmarks)
                cache.get(name);
        });
    for (auto &thread : threads)
        thread.join();

    EXPECT_EQ(cache.profileCount(), benchmarks.size());
    for (size_t t = 0; t < seen.size(); ++t) {
        ASSERT_NE(seen[t], nullptr);
        EXPECT_EQ(seen[t]->benchmark(),
                  benchmarks[t % benchmarks.size()]);
        // Same benchmark → same object, regardless of thread.
        EXPECT_EQ(seen[t],
                  &cache.get(benchmarks[t % benchmarks.size()]));
    }
}

} // namespace
} // namespace dirigent::exec
