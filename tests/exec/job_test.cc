/**
 * @file
 * Tests of job identity and deterministic per-job seed derivation: the
 * seed must be a pure function of (master seed, key) — stable across
 * calls, sensitive to every key field, and free of ambiguity between
 * adjacent string fields.
 */

#include <gtest/gtest.h>

#include <set>

#include "exec/job.h"

namespace dirigent::exec {
namespace {

TEST(JobKeyTest, EqualityComparesAllFields)
{
    JobKey a{"ferret rs", "Dirigent", 0};
    EXPECT_EQ(a, (JobKey{"ferret rs", "Dirigent", 0}));
    EXPECT_FALSE(a == (JobKey{"ferret rs", "Dirigent", 1}));
    EXPECT_FALSE(a == (JobKey{"ferret rs", "Baseline", 0}));
    EXPECT_FALSE(a == (JobKey{"ferret lbm", "Dirigent", 0}));
}

TEST(JobLabelTest, FormatsMixStageAndRepeat)
{
    EXPECT_EQ(jobLabel({"ferret rs", "Dirigent", 0}),
              "ferret rs/Dirigent");
    EXPECT_EQ(jobLabel({"ferret rs", "Dirigent", 3}),
              "ferret rs/Dirigent#3");
}

TEST(JobSeedTest, PureFunctionOfKey)
{
    JobKey key{"streamcluster bwaves", "StaticBoth", 2};
    uint64_t first = deriveJobSeed(1234, key);
    // Stable across repeated calls and fresh but equal keys — the
    // property that makes sharded sweeps replay bit-for-bit.
    EXPECT_EQ(deriveJobSeed(1234, key), first);
    EXPECT_EQ(deriveJobSeed(
                  1234, JobKey{"streamcluster bwaves", "StaticBoth", 2}),
              first);
}

TEST(JobSeedTest, SensitiveToEveryField)
{
    JobKey key{"ferret rs", "Dirigent", 0};
    uint64_t base = deriveJobSeed(1234, key);
    EXPECT_NE(deriveJobSeed(4321, key), base);
    EXPECT_NE(deriveJobSeed(1234, {"ferret lbm", "Dirigent", 0}), base);
    EXPECT_NE(deriveJobSeed(1234, {"ferret rs", "Baseline", 0}), base);
    EXPECT_NE(deriveJobSeed(1234, {"ferret rs", "Dirigent", 1}), base);
}

TEST(JobSeedTest, FieldBoundariesAreUnambiguous)
{
    // Moving a character across the mix/stage boundary must change the
    // hash: "ab"/"c" and "a"/"bc" are different jobs.
    EXPECT_NE(deriveJobSeed(1, {"ab", "c", 0}),
              deriveJobSeed(1, {"a", "bc", 0}));
    EXPECT_NE(deriveJobSeed(1, {"ab", "", 0}),
              deriveJobSeed(1, {"a", "b", 0}));
}

TEST(JobSeedTest, SpreadsAcrossSweepCells)
{
    // All cells of a realistic sweep get distinct seeds.
    std::set<uint64_t> seeds;
    size_t cells = 0;
    for (const char *mix : {"ferret rs", "ferret pca", "raytrace lbm",
                            "streamcluster bwaves"})
        for (const char *stage : {"Baseline", "StaticFreq",
                                  "StaticBoth", "DirigentFreq",
                                  "Dirigent"})
            for (uint32_t repeat = 0; repeat < 4; ++repeat) {
                seeds.insert(
                    deriveJobSeed(1234, {mix, stage, repeat}));
                ++cells;
            }
    EXPECT_EQ(seeds.size(), cells);
}

} // namespace
} // namespace dirigent::exec
