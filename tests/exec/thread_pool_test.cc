/**
 * @file
 * Tests of the executor primitives: work-queue close/drain semantics,
 * thread-pool shutdown with a queued backlog, nested submission,
 * cancellation, and job-exception propagation through wait().
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "exec/thread_pool.h"
#include "exec/work_queue.h"

namespace dirigent::exec {
namespace {

TEST(WorkQueueTest, FifoOrder)
{
    WorkQueue<int> queue;
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(queue.push(i));
    EXPECT_EQ(queue.size(), 5u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(queue.pop(), i);
}

TEST(WorkQueueTest, CloseDrainsThenEnds)
{
    WorkQueue<int> queue;
    queue.push(1);
    queue.push(2);
    queue.close();
    EXPECT_FALSE(queue.push(3)); // refused once closed
    EXPECT_EQ(queue.pop(), 1);
    EXPECT_EQ(queue.pop(), 2);
    EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(WorkQueueTest, CloseWakesBlockedConsumer)
{
    WorkQueue<int> queue;
    std::thread consumer([&] { EXPECT_EQ(queue.pop(), std::nullopt); });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    queue.close();
    consumer.join();
}

TEST(WorkQueueTest, ClearDropsBacklog)
{
    WorkQueue<int> queue;
    queue.push(1);
    queue.push(2);
    EXPECT_EQ(queue.clear(), 2u);
    EXPECT_EQ(queue.size(), 0u);
}

TEST(ThreadPoolTest, RunsAllJobs)
{
    std::atomic<int> count{0};
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedJobs)
{
    // More jobs than workers: destruction must finish the backlog,
    // not drop it or hang.
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i)
            pool.submit([&] {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(100));
                count.fetch_add(1);
            });
        // No wait(): the destructor handles the queued backlog.
    }
    EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, NestedSubmissionCountsTowardWait)
{
    std::atomic<int> count{0};
    ThreadPool pool(3);
    for (int i = 0; i < 10; ++i)
        pool.submit([&] {
            count.fetch_add(1);
            pool.submit([&] { count.fetch_add(1); });
        });
    pool.wait();
    EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPoolTest, CancelDropsBacklog)
{
    std::atomic<int> count{0};
    ThreadPool pool(1);
    // First job blocks the single worker while the backlog builds.
    pool.submit([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        count.fetch_add(1);
    });
    for (int i = 0; i < 32; ++i)
        pool.submit([&] { count.fetch_add(1); });
    size_t dropped = pool.cancel();
    EXPECT_TRUE(pool.cancelled());
    pool.wait();
    EXPECT_EQ(count.load() + int(dropped), 33);
    EXPECT_GE(dropped, 1u);
}

TEST(ThreadPoolTest, JobExceptionCancelsAndRethrows)
{
    std::atomic<int> ran{0};
    ThreadPool pool(1); // serial worker: deterministic ordering
    pool.submit([] { throw std::runtime_error("job failed"); });
    for (int i = 0; i < 16; ++i)
        pool.submit([&] { ran.fetch_add(1); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The failing job cancelled the backlog.
    EXPECT_EQ(ran.load(), 0);
    // The error was collected; a second wait() is clean.
    pool.wait();
}

TEST(ThreadPoolTest, SubmitAfterCancelIsDropped)
{
    std::atomic<int> count{0};
    ThreadPool pool(2);
    pool.cancel();
    pool.submit([&] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 0);
}

} // namespace
} // namespace dirigent::exec
