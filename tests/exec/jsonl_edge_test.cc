/**
 * @file
 * Edge-case tests of the JSONL sweep export: non-finite numbers,
 * empty result sets, escaping corners, and concurrent writers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exec/jsonl.h"

namespace dirigent::exec {
namespace {

TEST(JsonNumberTest, FormatsFiniteValues)
{
    EXPECT_EQ(jsonNumber(0.25, 2), "0.25");
    EXPECT_EQ(jsonNumber(1.0, 0), "1");
    EXPECT_EQ(jsonNumber(-3.5, 1), "-3.5");
}

TEST(JsonNumberTest, NegativeDecimalsUsesShortestForm)
{
    EXPECT_EQ(jsonNumber(0.5, -1), "0.5");
    EXPECT_EQ(jsonNumber(1e9, -1), "1e+09");
}

// JSON has no NaN/Infinity literals; emitting them verbatim would make
// every line unparseable downstream.
TEST(JsonNumberTest, NonFiniteBecomesNull)
{
    EXPECT_EQ(jsonNumber(std::nan(""), 6), "null");
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity(), 6),
              "null");
    EXPECT_EQ(jsonNumber(-std::numeric_limits<double>::infinity(), -1),
              "null");
}

TEST(JsonlEdgeTest, EmptyResultProducesValidLine)
{
    // A result with no completed executions must still yield one
    // parseable line (the metrics layer degrades to 0/1 defaults).
    harness::SchemeRunResult res;
    res.mixName = "empty";
    res.scheme = core::Scheme::Baseline;

    std::ostringstream out;
    JsonlWriter writer(out);
    writer.write(res, "Baseline", 1, 0.0);

    std::string line = out.str();
    EXPECT_EQ(line.find("nan"), std::string::npos) << line;
    EXPECT_EQ(line.find("inf"), std::string::npos) << line;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '\n');
}

TEST(JsonlEdgeTest, NanStatisticsRenderAsNull)
{
    // A poisoned duration makes the mean/std NaN; the line must carry
    // nulls, never a bare "nan" that breaks every JSON parser.
    harness::SchemeRunResult res;
    res.mixName = "poisoned";
    res.scheme = core::Scheme::Baseline;
    res.perFgDurations = {{std::nan("")}};
    res.onTime = 1;
    res.total = 1;
    res.span = Time::sec(1.0);

    std::ostringstream out;
    JsonlWriter writer(out);
    writer.write(res, "Baseline", 1, 0.1);

    std::string line = out.str();
    EXPECT_EQ(line.find("nan"), std::string::npos) << line;
    EXPECT_NE(line.find("null"), std::string::npos) << line;
}

TEST(JsonlEdgeTest, EscapesMixNameWithSpecials)
{
    harness::SchemeRunResult res;
    res.mixName = "mix \"a\"\\\nb";
    res.scheme = core::Scheme::Baseline;
    res.perFgDurations = {{0.5}};
    res.onTime = 1;
    res.total = 1;
    res.span = Time::sec(1.0);

    std::ostringstream out;
    JsonlWriter writer(out);
    writer.write(res, "Baseline", 1, 0.1);

    std::string text = out.str();
    // Exactly one (terminated) line, raw specials escaped away.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1);
    EXPECT_NE(text.find("mix \\\"a\\\"\\\\\\nb"), std::string::npos)
        << text;
}

TEST(JsonlEdgeTest, ConcurrentWritersProduceWholeLines)
{
    harness::SchemeRunResult res;
    res.mixName = "ferret rs";
    res.scheme = core::Scheme::Dirigent;
    res.perFgDurations = {{0.5, 0.6}};
    res.onTime = 2;
    res.total = 2;
    res.span = Time::sec(5.0);

    std::ostringstream out;
    JsonlWriter writer(out);
    constexpr int kThreads = 8;
    constexpr int kWrites = 50;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&writer, &res, t] {
            for (int i = 0; i < kWrites; ++i)
                writer.write(res, "Dirigent", uint64_t(t), 0.01);
        });
    }
    for (auto &th : threads)
        th.join();

    std::istringstream lines(out.str());
    std::string line;
    size_t count = 0;
    while (std::getline(lines, line)) {
        ++count;
        // Every line is whole: starts with '{', ends with '}', and
        // contains exactly one record's worth of structure.
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        EXPECT_NE(line.find("\"mix\":\"ferret rs\""), std::string::npos);
    }
    EXPECT_EQ(count, size_t(kThreads) * kWrites);
}

} // namespace
} // namespace dirigent::exec
