/**
 * @file
 * Failure-isolation stress tests for SweepExecutor::forEach: a job that
 * throws mid-sweep must not drop, reorder, or otherwise disturb its
 * siblings' results — serially and across worker counts — and the first
 * exception must surface only after the whole sweep finished.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/executor.h"

namespace dirigent::exec {
namespace {

harness::HarnessConfig
fastConfig()
{
    harness::HarnessConfig cfg;
    cfg.executions = 2;
    cfg.warmup = 0;
    cfg.seed = 20160402;
    return cfg;
}

ExecutorConfig
quietConfig(unsigned threads)
{
    ExecutorConfig ecfg;
    ecfg.threads = threads;
    ecfg.progress = false;
    return ecfg;
}

std::vector<JobKey>
makeKeys(size_t n)
{
    std::vector<JobKey> keys;
    for (size_t i = 0; i < n; ++i)
        keys.push_back({"mix" + std::to_string(i), "stage", 0});
    return keys;
}

TEST(ExecutorFaultTest, SerialThrowingJobKeepsSiblingsOrdered)
{
    SweepExecutor executor(fastConfig(), quietConfig(1));
    std::vector<size_t> completed;
    auto keys = makeKeys(6);
    EXPECT_THROW(
        executor.forEach(keys,
                         [&](size_t i, const JobKey &,
                             harness::ExperimentRunner &) {
                             if (i == 2)
                                 throw std::runtime_error("job 2 died");
                             completed.push_back(i);
                         }),
        std::runtime_error);
    // Every sibling ran, in key order, including those after the
    // failure.
    EXPECT_EQ(completed, (std::vector<size_t>{0, 1, 3, 4, 5}));
}

TEST(ExecutorFaultTest, ParallelThrowingJobsLoseNoSiblings)
{
    SweepExecutor executor(fastConfig(), quietConfig(4));
    std::mutex mutex;
    std::set<size_t> completed;
    auto keys = makeKeys(16);
    EXPECT_THROW(
        executor.forEach(keys,
                         [&](size_t i, const JobKey &,
                             harness::ExperimentRunner &) {
                             if (i % 5 == 0) // jobs 0, 5, 10, 15 fail
                                 throw std::runtime_error("injected");
                             std::lock_guard<std::mutex> lock(mutex);
                             completed.insert(i);
                         }),
        std::runtime_error);
    EXPECT_EQ(completed.size(), 12u);
    for (size_t i = 0; i < 16; ++i)
        EXPECT_EQ(completed.count(i), i % 5 == 0 ? 0u : 1u);
}

TEST(ExecutorFaultTest, FirstErrorIsTheOneRethrown)
{
    SweepExecutor executor(fastConfig(), quietConfig(1));
    auto keys = makeKeys(4);
    try {
        executor.forEach(keys, [&](size_t i, const JobKey &,
                                   harness::ExperimentRunner &) {
            throw std::runtime_error("error from job " +
                                     std::to_string(i));
        });
        FAIL() << "forEach did not rethrow";
    } catch (const std::runtime_error &e) {
        // Serial execution runs in key order: job 0's error is first.
        EXPECT_STREQ(e.what(), "error from job 0");
    }
}

TEST(ExecutorFaultTest, NonExceptionFailuresDoNotHang)
{
    // A job throwing something that is not std::exception must still be
    // caught, isolated, and rethrown.
    SweepExecutor executor(fastConfig(), quietConfig(2));
    std::atomic<unsigned> ran{0};
    auto keys = makeKeys(6);
    EXPECT_THROW(executor.forEach(keys,
                                  [&](size_t i, const JobKey &,
                                      harness::ExperimentRunner &) {
                                      if (i == 1)
                                          throw 42;
                                      ++ran;
                                  }),
                 int);
    EXPECT_EQ(ran.load(), 5u);
}

TEST(ExecutorFaultTest, JsonlRecordsSurviveASiblingFailure)
{
    // Jobs append JSONL lines through the executor's writer; the
    // thrower must not lose or corrupt anybody else's line.
    std::string path = testing::TempDir() + "executor_fault_test.jsonl";
    std::remove(path.c_str());
    {
        ExecutorConfig ecfg = quietConfig(4);
        ecfg.jsonlPath = path;
        SweepExecutor executor(fastConfig(), ecfg);
        ASSERT_NE(executor.jsonl(), nullptr);
        auto keys = makeKeys(12);
        EXPECT_THROW(
            executor.forEach(
                keys,
                [&](size_t i, const JobKey &key,
                    harness::ExperimentRunner &) {
                    if (i == 7)
                        throw std::runtime_error("injected");
                    harness::SchemeRunResult result;
                    result.mixName = key.mix;
                    result.scheme = core::Scheme::Baseline;
                    executor.jsonl()->write(result, key.stage, i, 0.0);
                }),
            std::runtime_error);
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::set<std::string> mixes;
    std::string line;
    size_t lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        // Every line is a complete record naming its mix.
        auto pos = line.find("\"mix\":\"");
        ASSERT_NE(pos, std::string::npos) << line;
        auto start = pos + 7;
        mixes.insert(line.substr(start, line.find('"', start) - start));
    }
    EXPECT_EQ(lines, 11u);
    EXPECT_EQ(mixes.size(), 11u);
    EXPECT_EQ(mixes.count("mix7"), 0u);
    std::remove(path.c_str());
}

} // namespace
} // namespace dirigent::exec
