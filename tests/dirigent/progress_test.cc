/**
 * @file
 * Tests of the progress-metric abstraction: heartbeat semantics,
 * cumulative reads across executions, and end-to-end prediction with
 * the heartbeat metric.
 */

#include <gtest/gtest.h>

#include "dirigent/profiler.h"
#include "dirigent/progress.h"
#include "dirigent/runtime.h"
#include "workload/benchmarks.h"

namespace dirigent::core {
namespace {

TEST(BeatProgressTest, CountsPhasesAndFractions)
{
    workload::PhaseProgram prog;
    prog.name = "two";
    workload::Phase a;
    a.name = "a";
    a.instructions = 100.0;
    workload::Phase b;
    b.name = "b";
    b.instructions = 50.0;
    prog.phases = {a, b};

    workload::Task task(&prog, Rng(1));
    EXPECT_DOUBLE_EQ(task.beatProgress(), 0.0);
    task.retire(50.0);
    EXPECT_DOUBLE_EQ(task.beatProgress(), 0.5);
    task.retire(50.0);
    EXPECT_DOUBLE_EQ(task.beatProgress(), 1.0);
    task.retire(25.0);
    EXPECT_DOUBLE_EQ(task.beatProgress(), 1.5);
    task.retire(25.0);
    EXPECT_TRUE(task.finished());
    EXPECT_DOUBLE_EQ(task.beatProgress(), 2.0);
}

TEST(BeatProgressTest, ImmuneToInstructionJitter)
{
    // Two instances with wildly different jittered phase lengths hit
    // the same beat count at phase boundaries.
    workload::PhaseProgram prog;
    prog.name = "jittery";
    workload::Phase p;
    p.name = "p";
    p.instructions = 1000.0;
    p.instrJitterSigma = 0.3;
    prog.phases = {p, p};

    workload::Task t1(&prog, Rng(1));
    workload::Task t2(&prog, Rng(2));
    EXPECT_NE(t1.remainingInPhase(), t2.remainingInPhase());
    t1.retire(t1.remainingInPhase());
    t2.retire(t2.remainingInPhase());
    EXPECT_DOUBLE_EQ(t1.beatProgress(), 1.0);
    EXPECT_DOUBLE_EQ(t2.beatProgress(), 1.0);
}

TEST(BeatProgressTest, LoopingProgramAccumulates)
{
    workload::PhaseProgram prog;
    prog.name = "loop";
    prog.loop = true;
    workload::Phase p;
    p.name = "p";
    p.instructions = 100.0;
    prog.phases = {p};

    workload::Task task(&prog, Rng(1));
    for (int i = 0; i < 3; ++i)
        task.retire(task.remainingInPhase());
    EXPECT_DOUBLE_EQ(task.beatProgress(), 3.0);
}

TEST(ProgressMetricTest, Names)
{
    EXPECT_STREQ(
        progressMetricName(ProgressMetric::RetiredInstructions),
        "retired-instructions");
    EXPECT_STREQ(progressMetricName(ProgressMetric::Heartbeats),
                 "heartbeats");
}

TEST(ProgressMetricTest, CumulativeAcrossExecutions)
{
    machine::MachineConfig cfg;
    cfg.noiseEventsPerSec = 0.0;
    cfg.seed = 9;
    machine::Machine machine(cfg);
    sim::Engine engine(machine, cfg.maxQuantum);
    const auto &lib = workload::BenchmarkLibrary::instance();
    machine::ProcessSpec fg;
    fg.name = "fluidanimate";
    fg.program = &lib.get("fluidanimate").program;
    fg.core = 0;
    fg.foreground = true;
    machine.spawnProcess(fg);

    double beats0 = readCumulativeProgress(
        machine, 0, ProgressMetric::Heartbeats);
    EXPECT_DOUBLE_EQ(beats0, 0.0);

    // Monotone over a run spanning multiple executions.
    double last = 0.0;
    for (int i = 0; i < 10; ++i) {
        engine.runFor(Time::ms(150.0));
        double beats = readCumulativeProgress(
            machine, 0, ProgressMetric::Heartbeats);
        EXPECT_GE(beats, last);
        last = beats;
    }
    // ~1.5 s = ~3 executions of a 3-phase program: ≥ 6 beats.
    EXPECT_GT(last, 6.0);

    // Instruction metric matches the PMU.
    EXPECT_DOUBLE_EQ(
        readCumulativeProgress(machine, 0,
                               ProgressMetric::RetiredInstructions),
        machine.readCounters(0).instructions);

    // Idle core reads zero beats.
    EXPECT_DOUBLE_EQ(readCumulativeProgress(
                         machine, 3, ProgressMetric::Heartbeats),
                     0.0);
}

TEST(ProgressMetricTest, HeartbeatPredictionEndToEnd)
{
    // Full pipeline with the heartbeat metric: profile + observe +
    // predict. Predictions stay sane (within 25% of actual).
    machine::MachineConfig mcfg;
    mcfg.seed = 23;

    ProfilerConfig pcfg;
    pcfg.executions = 2;
    pcfg.metric = ProgressMetric::Heartbeats;
    OfflineProfiler profiler(pcfg);
    const auto &lib = workload::BenchmarkLibrary::instance();
    Profile profile =
        profiler.profileAlone(lib.get("raytrace"), mcfg);
    // Total progress is the program's beat count (2 phases).
    EXPECT_NEAR(profile.totalProgress(), 2.0, 1e-6);

    machine::Machine machine(mcfg);
    sim::Engine engine(machine, mcfg.maxQuantum);
    machine::CpuFreqGovernor governor(machine, engine);
    machine::CatController cat(machine);
    machine::ProcessSpec fg;
    fg.name = "raytrace";
    fg.program = &lib.get("raytrace").program;
    fg.core = 0;
    fg.foreground = true;
    machine::Pid pid = machine.spawnProcess(fg);
    for (unsigned c = 1; c < 6; ++c) {
        machine::ProcessSpec bg;
        bg.name = "pca";
        bg.program = &lib.get("pca").program;
        bg.core = c;
        bg.foreground = false;
        machine.spawnProcess(bg);
    }

    RuntimeConfig rcfg;
    rcfg.enableFine = false;
    rcfg.enableCoarse = false;
    rcfg.metric = ProgressMetric::Heartbeats;
    DirigentRuntime runtime(machine, engine, governor, cat, rcfg);
    runtime.addForeground(pid, &profile, Time::sec(2.0));
    runtime.start();
    engine.runUntil(Time::sec(6.0));
    const auto &samples = runtime.midpointSamples(pid);
    ASSERT_GE(samples.size(), 3u);
    for (const auto &s : samples) {
        EXPECT_NEAR(s.predictedTotal.sec(), s.actualTotal.sec(),
                    0.25 * s.actualTotal.sec());
    }
}

} // namespace
} // namespace dirigent::core
