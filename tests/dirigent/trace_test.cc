/**
 * @file
 * Tests of the decision trace: ring-buffer semantics, controller
 * wiring, and CSV output.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "dirigent/fine_controller.h"
#include "dirigent/trace.h"
#include "machine/actuators.h"
#include "workload/benchmarks.h"

namespace dirigent::core {
namespace {

TEST(DecisionTraceTest, RecordsAndCounts)
{
    DecisionTrace trace(8);
    trace.record({Time::ms(1.0), TraceAction::BgThrottled, 0, 1.1, ""});
    trace.record({Time::ms(2.0), TraceAction::BgPaused, 0, 1.2, "x"});
    trace.record({Time::ms(3.0), TraceAction::BgThrottled, 0, 1.1, ""});
    EXPECT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace.recorded(), 3u);
    EXPECT_EQ(trace.count(TraceAction::BgThrottled), 2u);
    EXPECT_EQ(trace.count(TraceAction::BgPaused), 1u);
    EXPECT_EQ(trace.count(TraceAction::FgToMax), 0u);
}

TEST(DecisionTraceTest, RingBufferEvicts)
{
    DecisionTrace trace(3);
    for (int i = 0; i < 5; ++i)
        trace.record({Time::ms(double(i)), TraceAction::FgToMax, 0,
                      1.0, ""});
    EXPECT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace.recorded(), 5u);
    EXPECT_DOUBLE_EQ(trace.events().front().when.ms(), 2.0);
    EXPECT_DOUBLE_EQ(trace.events().back().when.ms(), 4.0);
}

TEST(DecisionTraceTest, ClearKeepsCounters)
{
    DecisionTrace trace(4);
    trace.record({Time::ms(1.0), TraceAction::FgToMax, 0, 1.0, ""});
    trace.clear();
    EXPECT_EQ(trace.size(), 0u);
    EXPECT_EQ(trace.recorded(), 1u);
}

TEST(DecisionTraceTest, CsvOutput)
{
    DecisionTrace trace(4);
    trace.record({Time::ms(5.0), TraceAction::PartitionGrown, 2, 1.05,
                  "H1-grow -> 3 ways"});
    std::ostringstream os;
    trace.writeCsv(os);
    std::string out = os.str();
    EXPECT_NE(out.find("time_s,action,fg_pid,slack,detail"),
              std::string::npos);
    EXPECT_NE(out.find("partition-grown"), std::string::npos);
    EXPECT_NE(out.find("H1-grow -> 3 ways"), std::string::npos);
}

TEST(DecisionTraceTest, ActionNamesDistinct)
{
    std::set<std::string> names;
    for (TraceAction a :
         {TraceAction::FgToMax, TraceAction::FgThrottled,
          TraceAction::BgThrottled, TraceAction::BgBoosted,
          TraceAction::BgPaused, TraceAction::BgResumed,
          TraceAction::PartitionGrown, TraceAction::PartitionShrunk,
          TraceAction::FaultObserved})
        EXPECT_TRUE(names.insert(traceActionName(a)).second);
    EXPECT_EQ(traceActionName(TraceAction::FaultObserved),
              std::string("fault-observed"));
}

TEST(DecisionTraceTest, SinkSeesEveryEventBeforeEviction)
{
    DecisionTrace trace(2); // tiny ring: events evict quickly
    std::vector<TraceEvent> seen;
    trace.setSink([&](const TraceEvent &ev) { seen.push_back(ev); });
    for (int i = 0; i < 5; ++i)
        trace.record({Time::ms(double(i)), TraceAction::FgToMax, 7,
                      1.0 + i, "d"});
    // The ring kept 2 events, but the sink saw all 5, in order.
    EXPECT_EQ(trace.size(), 2u);
    ASSERT_EQ(seen.size(), 5u);
    for (int i = 0; i < 5; ++i) {
        EXPECT_DOUBLE_EQ(seen[size_t(i)].when.ms(), double(i));
        EXPECT_EQ(seen[size_t(i)].fgPid, 7u);
        EXPECT_DOUBLE_EQ(seen[size_t(i)].slackRatio, 1.0 + i);
    }

    trace.setSink(nullptr); // detach: no further callbacks
    trace.record({Time::ms(9.0), TraceAction::FgToMax, 7, 1.0, ""});
    EXPECT_EQ(seen.size(), 5u);
}

TEST(DecisionTraceDeathTest, ZeroCapacityPanics)
{
    EXPECT_DEATH(DecisionTrace{0}, "capacity");
}

/** Controller wiring: actions show up in an attached trace. */
TEST(DecisionTraceTest, FineControllerRecordsActions)
{
    machine::MachineConfig cfg;
    cfg.noiseEventsPerSec = 0.0;
    machine::Machine machine(cfg);
    sim::Engine engine(machine, cfg.maxQuantum);
    machine::CpuFreqGovernor governor(machine, engine);
    const auto &lib = workload::BenchmarkLibrary::instance();
    machine::ProcessSpec fg;
    fg.name = "fg";
    fg.program = &lib.get("ferret").program;
    fg.core = 0;
    fg.foreground = true;
    machine::Pid fgPid = machine.spawnProcess(fg);
    for (unsigned c = 1; c < 6; ++c) {
        machine::ProcessSpec bg;
        bg.name = "bg";
        bg.program = &lib.get("lbm").program;
        bg.core = c;
        bg.foreground = false;
        machine.spawnProcess(bg);
    }
    machine::GovernorFrequencyActuator freq(governor);
    machine::OsPauseActuator pause(machine.os());
    FineGrainController controller(machine, freq, pause);
    DecisionTrace trace;
    controller.setTrace(&trace);

    FineGrainController::FgStatus st;
    st.pid = fgPid;
    st.core = 0;
    st.deadline = Time::sec(1.0);
    st.valid = true;

    st.predicted = Time::sec(1.1); // behind: BG throttled
    controller.tick({st});
    EXPECT_EQ(trace.count(TraceAction::BgThrottled), 1u);
    ASSERT_EQ(trace.size(), 1u);
    EXPECT_EQ(trace.events().back().fgPid, fgPid);
    EXPECT_GT(trace.events().back().slackRatio, 1.0);

    st.predicted = Time::sec(0.5); // ahead: BG boosted back
    controller.tick({st});
    EXPECT_EQ(trace.count(TraceAction::BgBoosted), 1u);
    EXPECT_LT(trace.events().back().slackRatio, 1.0);
}

} // namespace
} // namespace dirigent::core
