/**
 * @file
 * Disagreement-branch tests for the fine controller's multi-FG policy:
 * the slowest FG drives the shared BG-side ladder while every other FG
 * is steered individually, including the branches where the two pull in
 * opposite directions (pause vs throttle, neutral bystanders, mixed
 * prediction validity).
 */

#include <gtest/gtest.h>

#include "dirigent/fine_controller.h"
#include "machine/actuators.h"
#include "workload/benchmarks.h"

namespace dirigent::core {
namespace {

class MultiFgDisagreementTest : public testing::Test
{
  protected:
    MultiFgDisagreementTest()
        : machine_(makeConfig()), engine_(machine_, Time::us(100.0)),
          governor_(machine_, engine_)
    {
        const auto &lib = workload::BenchmarkLibrary::instance();
        for (unsigned c = 0; c < 2; ++c) {
            machine::ProcessSpec fg;
            fg.name = "fg";
            fg.program = &lib.get("ferret").program;
            fg.core = c;
            fg.foreground = true;
            fgPids_.push_back(machine_.spawnProcess(fg));
        }
        for (unsigned c = 2; c < 6; ++c) {
            machine::ProcessSpec bg;
            bg.name = "bg";
            bg.program = &lib.get("lbm").program;
            bg.core = c;
            bg.foreground = false;
            bgPids_.push_back(machine_.spawnProcess(bg));
        }
        controller_ = std::make_unique<FineGrainController>(
            machine_, freq_, pause_, FineControllerConfig{});
    }

    static machine::MachineConfig
    makeConfig()
    {
        machine::MachineConfig cfg;
        cfg.noiseEventsPerSec = 0.0;
        return cfg;
    }

    FineGrainController::FgStatus
    status(unsigned fg, double predicted, bool valid = true)
    {
        FineGrainController::FgStatus st;
        st.pid = fgPids_[fg];
        st.core = fg;
        st.predicted = Time::sec(predicted);
        st.deadline = Time::sec(1.0);
        st.valid = valid;
        return st;
    }

    void settle() { engine_.runFor(Time::ms(1.0)); }

    unsigned
    runningBgCount() const
    {
        unsigned n = 0;
        for (machine::Pid pid : bgPids_)
            if (machine_.os().process(pid).runnable())
                ++n;
        return n;
    }

    machine::Machine machine_;
    sim::Engine engine_;
    machine::CpuFreqGovernor governor_;
    machine::GovernorFrequencyActuator freq_{governor_};
    machine::OsPauseActuator pause_{machine_.os()};
    std::unique_ptr<FineGrainController> controller_;
    std::vector<machine::Pid> fgPids_;
    std::vector<machine::Pid> bgPids_;
};

TEST_F(MultiFgDisagreementTest, PauseForSlowestWhileOtherIsThrottled)
{
    // Drive BG to the ladder minimum with FG1 persistently behind.
    for (int i = 0; i < 6; ++i)
        controller_->tick({status(0, 0.99), status(1, 1.05)});
    settle();
    for (unsigned c = 2; c < 6; ++c)
        ASSERT_EQ(governor_.grade(c), 0u);

    // FG1 now deep behind (pause escalation) while FG0 is comfortably
    // ahead: the controller must pause for FG1 *and* throttle FG0 in
    // the same decision.
    controller_->tick({status(0, 0.5), status(1, 1.2)});
    settle();
    EXPECT_EQ(runningBgCount(), 3u);
    EXPECT_EQ(controller_->stats().pauses, 1u);
    EXPECT_EQ(governor_.grade(0), 6u); // FG0 one ladder step down
    EXPECT_EQ(governor_.grade(1), 8u); // FG1 untouched at max
}

TEST_F(MultiFgDisagreementTest, NeutralBystanderIsLeftAlone)
{
    // FG1 behind drives the BG throttle; FG0 sits in the neutral band
    // (within 2% of its setpoint) and must not be touched either way.
    controller_->tick({status(0, 0.975), status(1, 1.05)});
    settle();
    EXPECT_EQ(governor_.grade(0), 8u);
    EXPECT_EQ(governor_.grade(1), 8u);
    for (unsigned c = 2; c < 6; ++c)
        EXPECT_EQ(governor_.grade(c), 6u);
    EXPECT_EQ(controller_->stats().fgThrottles, 0u);
}

TEST_F(MultiFgDisagreementTest, BothAheadThrottlesBothIndividually)
{
    // BG already at max: nothing to resume or boost, so the slowest's
    // ahead branch falls through to throttling the slowest FG itself;
    // the other ahead FG is throttled by the per-FG policy.
    controller_->tick({status(0, 0.9), status(1, 0.5)});
    settle();
    EXPECT_EQ(governor_.grade(0), 6u);
    EXPECT_EQ(governor_.grade(1), 6u);
    EXPECT_EQ(controller_->stats().fgThrottles, 2u);
}

TEST_F(MultiFgDisagreementTest, InvalidPredictionDoesNotDrive)
{
    // FG1's (much slower) prediction is invalid: FG0 alone drives, and
    // its slack releases resources instead of reclaiming them.
    controller_->tick({status(0, 0.5), status(1, 1.5, false)});
    settle();
    for (unsigned c = 2; c < 6; ++c)
        EXPECT_EQ(governor_.grade(c), 8u); // no BG throttle for FG1
    EXPECT_EQ(governor_.grade(0), 6u);     // FG0's ahead branch fired
    EXPECT_EQ(governor_.grade(1), 8u);     // FG1 untouched
}

TEST_F(MultiFgDisagreementTest, ZeroDeadlineIsIgnored)
{
    auto st = status(1, 2.0);
    st.deadline = Time();
    controller_->tick({status(0, 0.975), st});
    settle();
    for (unsigned c = 2; c < 6; ++c)
        EXPECT_EQ(governor_.grade(c), 8u);
    EXPECT_EQ(runningBgCount(), 4u);
}

TEST_F(MultiFgDisagreementTest, SustainedDisagreementConverges)
{
    // FG1 stays behind, FG0 stays ahead: BG ratchets to the minimum for
    // FG1 while FG0 ratchets itself down; FG1 holds the maximum.
    for (int i = 0; i < 12; ++i)
        controller_->tick({status(0, 0.6), status(1, 1.05)});
    settle();
    for (unsigned c = 2; c < 6; ++c)
        EXPECT_EQ(governor_.grade(c), 0u);
    EXPECT_EQ(governor_.grade(0), 0u);
    EXPECT_EQ(governor_.grade(1), 8u);
    EXPECT_EQ(runningBgCount(), 4u); // never behind enough to pause
}

TEST_F(MultiFgDisagreementTest, RolesSwapWhenFortunesReverse)
{
    for (int i = 0; i < 3; ++i)
        controller_->tick({status(0, 0.6), status(1, 1.05)});
    settle();
    unsigned fg0Before = governor_.grade(0);
    ASSERT_LT(fg0Before, 8u);

    // Fortunes reverse: FG0 falls behind, FG1 races ahead.
    for (int i = 0; i < 4; ++i)
        controller_->tick({status(0, 1.05), status(1, 0.6)});
    settle();
    EXPECT_EQ(governor_.grade(0), 8u); // restored to max
    EXPECT_LT(governor_.grade(1), 8u); // now individually slowed
}

} // namespace
} // namespace dirigent::core
