/**
 * @file
 * Tests of the completion-time predictor against hand-computable
 * scenarios, including the paper's Fig. 3 three-segment example, plus
 * parameterized property sweeps over contention levels.
 */

#include <gtest/gtest.h>

#include "dirigent/predictor.h"

namespace dirigent::core {
namespace {

/** A uniform profile: @p n segments of @p progress instr / @p dt each. */
Profile
uniformProfile(size_t n, double progress = 1e6,
               Time dt = Time::ms(5.0))
{
    std::vector<ProfileSegment> segs(n, ProfileSegment{progress, dt});
    return Profile("test", dt, segs);
}

/** Feed a full execution at a constant slowdown; returns duration. */
Time
runExecution(Predictor &pred, const Profile &profile, double slowdown,
             Time start = Time())
{
    pred.beginExecution(start);
    Time now = start;
    double progress = 0.0;
    // Observe at fixed 5 ms wall intervals, progressing at
    // profiledRate / slowdown.
    double rate = profile.segments()[0].progress /
                  profile.segments()[0].duration.sec() / slowdown;
    double total = profile.totalProgress();
    while (progress < total) {
        Time step = Time::ms(5.0);
        double delta = rate * step.sec();
        if (progress + delta >= total) {
            double remaining = total - progress;
            now += Time::sec(remaining / rate);
            progress = total;
            break;
        }
        now += step;
        progress += delta;
        pred.observe(now, progress);
    }
    pred.endExecution(now, progress);
    return now - start;
}

TEST(PredictorTest, UncontendedPredictionMatchesProfile)
{
    Profile profile = uniformProfile(100);
    Predictor pred(&profile);
    Time actual = runExecution(pred, profile, 1.0);
    EXPECT_NEAR(actual.sec(), profile.totalTime().sec(), 1e-9);
}

TEST(PredictorTest, BootstrapFirstExecutionTracksObservedRate)
{
    Profile profile = uniformProfile(100);
    Predictor pred(&profile);
    pred.beginExecution(Time());
    // Before any observation: prediction equals the profiled total.
    EXPECT_NEAR(pred.predictTotal().sec(), profile.totalTime().sec(),
                1e-9);

    // Run the first half at 2× slowdown: 10 ms per profiled segment.
    Time now;
    double progress = 0.0;
    for (int i = 0; i < 50; ++i) {
        now += Time::ms(10.0);
        progress += 1e6;
        pred.observe(now, progress);
    }
    // Expected: 0.5 s elapsed + 50 remaining segments at the observed
    // 2× rate = 0.5 + 0.5 = 1.0 s.
    EXPECT_NEAR(pred.predictTotal().sec(), 1.0, 0.02);
}

TEST(PredictorTest, HistoricalPenaltiesPredictSteadyContention)
{
    Profile profile = uniformProfile(100);
    Predictor pred(&profile);
    // Warm up under constant 1.5× contention.
    for (int e = 0; e < 5; ++e)
        runExecution(pred, profile, 1.5, Time::sec(double(e) * 2.0));

    // Mid-execution prediction of a further 1.5× run is accurate.
    pred.beginExecution(Time::sec(100.0));
    Time now = Time::sec(100.0);
    double progress = 0.0;
    for (int i = 0; i < 50; ++i) {
        now += Time::ms(7.5);
        progress += 1e6;
        pred.observe(now, progress);
    }
    double expected = 100.0 * 7.5e-3; // full run at 1.5×
    EXPECT_NEAR(pred.predictTotal().sec(), expected,
                0.02 * expected);
}

TEST(PredictorTest, ScalesHistoryToCurrentContention)
{
    Profile profile = uniformProfile(100);
    Predictor pred(&profile);
    // History at 1.5×.
    for (int e = 0; e < 8; ++e)
        runExecution(pred, profile, 1.5, Time::sec(double(e) * 2.0));

    // New execution at 2×: after a quarter of the run, the scaled
    // prediction should approach the 2× total.
    pred.beginExecution(Time::sec(100.0));
    Time now = Time::sec(100.0);
    double progress = 0.0;
    for (int i = 0; i < 25; ++i) {
        now += Time::ms(10.0);
        progress += 1e6;
        pred.observe(now, progress);
    }
    double expected = 100.0 * 10e-3;
    EXPECT_NEAR(pred.predictTotal().sec(), expected, 0.06 * expected);
}

TEST(PredictorTest, Fig3ThreeSegmentExample)
{
    // The paper's running example: three segments of ΔT each; the
    // second segment's penalty differs from the first.
    Profile profile = uniformProfile(3, 1e6, Time::ms(5.0));
    Predictor pred(&profile);
    pred.beginExecution(Time());
    // Segment 1 takes 8 ms (P₁ = 3 ms), segment 2 takes 6 ms
    // (P₂ = 1 ms).
    pred.observe(Time::ms(8.0), 1e6);
    pred.observe(Time::ms(14.0), 2e6);
    EXPECT_EQ(pred.currentSegment(), 2u);
    // Prediction: 14 ms elapsed + remaining segment estimated from the
    // in-flight penalty-rate MA (EMA over P/ΔT: 0.2·0.2+0.8·0.6=0.52
    // → expected ≈ 5 ms·1.52 = 7.6 ms) → ≈ 21.6 ms.
    EXPECT_NEAR(pred.predictTotal().ms(), 21.6, 0.5);
    pred.endExecution(Time::ms(20.0), 3e6);
    // Penalties recorded for all three segments.
    EXPECT_NEAR(pred.penaltyAverage(0), 3e-3, 1e-9);
    EXPECT_NEAR(pred.penaltyAverage(1), 1e-3, 1e-9);
    EXPECT_NEAR(pred.penaltyAverage(2), 1e-3, 1e-9);
}

TEST(PredictorTest, PenaltyEmaUsesPaperWeight)
{
    Profile profile = uniformProfile(2, 1e6, Time::ms(5.0));
    Predictor pred(&profile);
    // Execution 1: both segments take 7 ms → P = 2 ms.
    pred.beginExecution(Time());
    pred.observe(Time::ms(7.0), 1e6);
    pred.endExecution(Time::ms(14.0), 2e6);
    EXPECT_NEAR(pred.penaltyAverage(0), 2e-3, 1e-9);
    // Execution 2: segments take 9 ms → P = 4 ms.
    // EMA: 0.2·4 + 0.8·2 = 2.4 ms.
    pred.beginExecution(Time::sec(1.0));
    pred.observe(Time::sec(1.0) + Time::ms(9.0), 1e6);
    pred.endExecution(Time::sec(1.0) + Time::ms(18.0), 2e6);
    EXPECT_NEAR(pred.penaltyAverage(0), 2.4e-3, 1e-9);
}

TEST(PredictorTest, HandlesZeroProgressIntervals)
{
    Profile profile = uniformProfile(10);
    Predictor pred(&profile);
    pred.beginExecution(Time());
    pred.observe(Time::ms(5.0), 1e6);
    // Paused: no progress for two intervals.
    pred.observe(Time::ms(10.0), 1e6);
    pred.observe(Time::ms(15.0), 1e6);
    EXPECT_TRUE(pred.hasObservation());
    // Elapsed time is charged; prediction grows accordingly.
    EXPECT_GT(pred.predictTotal().ms(), 55.0);
    // Resume.
    pred.observe(Time::ms(20.0), 2e6);
    EXPECT_EQ(pred.currentSegment(), 2u);
}

TEST(PredictorTest, ProgressBeyondProfileIsAbsorbed)
{
    Profile profile = uniformProfile(4);
    Predictor pred(&profile);
    pred.beginExecution(Time());
    // Instance has 10% more instructions than the profile.
    pred.observe(Time::ms(20.0), 4e6);
    pred.observe(Time::ms(22.0), 4.4e6);
    EXPECT_EQ(pred.currentSegment(), 4u);
    // Prediction degenerates to elapsed time (task nearly done).
    EXPECT_NEAR(pred.predictTotal().ms(), 22.0, 1e-9);
    pred.endExecution(Time::ms(23.0), 4.4e6);
}

TEST(PredictorTest, ProgressFraction)
{
    Profile profile = uniformProfile(10);
    Predictor pred(&profile);
    pred.beginExecution(Time());
    pred.observe(Time::ms(5.0), 2.5e6);
    EXPECT_NEAR(pred.progressFraction(), 0.25, 1e-12);
}

TEST(PredictorTest, MultipleSegmentsPerObservation)
{
    // One observation interval can cross several profile segments.
    Profile profile = uniformProfile(10);
    Predictor pred(&profile);
    pred.beginExecution(Time());
    pred.observe(Time::ms(15.0), 6e6); // crosses 6 boundaries at once
    EXPECT_EQ(pred.currentSegment(), 6u);
    // Each closed segment saw 2.5 ms (faster than profiled): negative
    // penalties.
    EXPECT_LT(pred.penaltyAverage(0), 0.0);
}

TEST(PredictorTest, ExecutionsSeenCounts)
{
    Profile profile = uniformProfile(5);
    Predictor pred(&profile);
    EXPECT_EQ(pred.executionsSeen(), 0u);
    runExecution(pred, profile, 1.0);
    runExecution(pred, profile, 1.0, Time::sec(1.0));
    EXPECT_EQ(pred.executionsSeen(), 2u);
}

TEST(PredictorDeathTest, RequiresProfile)
{
    EXPECT_DEATH(Predictor{nullptr}, "profile");
    Profile empty;
    EXPECT_DEATH((Predictor{&empty}), "profile");
}

TEST(PredictorDeathTest, ObserveOutsideExecutionPanics)
{
    Profile profile = uniformProfile(5);
    Predictor pred(&profile);
    EXPECT_DEATH(pred.observe(Time::ms(1.0), 1.0), "outside");
}

/**
 * Property sweep: after warm-up at a given contention level, midpoint
 * predictions at that level are accurate to a few percent regardless
 * of the level itself.
 */
class PredictorAccuracySweep : public testing::TestWithParam<double>
{
};

TEST_P(PredictorAccuracySweep, MidpointAccurateAtSteadyContention)
{
    double slowdown = GetParam();
    Profile profile = uniformProfile(120);
    Predictor pred(&profile);
    for (int e = 0; e < 6; ++e)
        runExecution(pred, profile, slowdown,
                     Time::sec(double(e) * 3.0));

    pred.beginExecution(Time::sec(50.0));
    Time now = Time::sec(50.0);
    double progress = 0.0;
    double rate = 1e6 / 5e-3 / slowdown;
    while (progress < profile.totalProgress() / 2.0) {
        now += Time::ms(5.0);
        progress += rate * 5e-3;
        pred.observe(now, progress);
    }
    double expected = profile.totalTime().sec() * slowdown;
    EXPECT_NEAR(pred.predictTotal().sec(), expected, 0.03 * expected)
        << "slowdown " << slowdown;
}

INSTANTIATE_TEST_SUITE_P(ContentionLevels, PredictorAccuracySweep,
                         testing::Values(1.0, 1.1, 1.25, 1.5, 1.75, 2.0,
                                         2.5, 3.0));

/**
 * Property sweep: prediction is robust across EMA weights 0.1–0.3
 * (the paper's robustness claim).
 */
class PredictorWeightSweep : public testing::TestWithParam<double>
{
};

TEST_P(PredictorWeightSweep, AccurateAcrossEmaWeights)
{
    PredictorConfig cfg;
    cfg.penaltyEmaWeight = GetParam();
    cfg.rateEmaWeight = GetParam();
    Profile profile = uniformProfile(120);
    Predictor pred(&profile, cfg);
    for (int e = 0; e < 8; ++e)
        runExecution(pred, profile, 1.6, Time::sec(double(e) * 3.0));

    pred.beginExecution(Time::sec(80.0));
    Time now = Time::sec(80.0);
    double progress = 0.0;
    for (int i = 0; i < 60; ++i) {
        now += Time::ms(8.0);
        progress += 1e6;
        pred.observe(now, progress);
    }
    double expected = profile.totalTime().sec() * 1.6;
    EXPECT_NEAR(pred.predictTotal().sec(), expected, 0.04 * expected);
}

INSTANTIATE_TEST_SUITE_P(Weights, PredictorWeightSweep,
                         testing::Values(0.1, 0.15, 0.2, 0.25, 0.3));

} // namespace
} // namespace dirigent::core
