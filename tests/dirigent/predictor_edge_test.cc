/**
 * @file
 * Edge-case tests for the predictor beyond the main behavioural suite:
 * contention that *drops* mid-execution, negative penalties (runs
 * faster than the profile), scale clamping, and non-uniform profiles.
 */

#include <gtest/gtest.h>

#include "dirigent/predictor.h"

namespace dirigent::core {
namespace {

Profile
uniformProfile(size_t n, double progress = 1e6,
               Time dt = Time::ms(5.0))
{
    std::vector<ProfileSegment> segs(n, ProfileSegment{progress, dt});
    return Profile("edge", dt, segs);
}

/** Drive one execution with a piecewise-constant slowdown. */
Time
runPiecewise(Predictor &pred, const Profile &profile,
             double slowdownFirstHalf, double slowdownSecondHalf,
             Time start)
{
    pred.beginExecution(start);
    Time now = start;
    const auto &segs = profile.segments();
    for (size_t i = 0; i < segs.size(); ++i) {
        double slow = i < segs.size() / 2 ? slowdownFirstHalf
                                          : slowdownSecondHalf;
        now += segs[i].duration * slow;
        pred.observe(now, double(i + 1) * segs[0].progress);
    }
    pred.endExecution(now, profile.totalProgress());
    return now - start;
}

TEST(PredictorEdgeTest, AdaptsWhenContentionDropsMidExecution)
{
    Profile profile = uniformProfile(100);
    Predictor pred(&profile);
    // History: steady 1.8× contention.
    for (int e = 0; e < 6; ++e)
        runPiecewise(pred, profile, 1.8, 1.8,
                     Time::sec(double(e) * 2.0));

    // New execution: contention vanishes halfway. Feed the first half
    // at 1.8×, then check predictions as the uncontended second half
    // unfolds: they must converge downward toward the true total.
    pred.beginExecution(Time::sec(100.0));
    Time now = Time::sec(100.0);
    const auto &segs = profile.segments();
    for (size_t i = 0; i < 50; ++i) {
        now += segs[i].duration * 1.8;
        pred.observe(now, double(i + 1) * 1e6);
    }
    double predictedAtHalf = pred.predictTotal().sec();
    for (size_t i = 50; i < 90; ++i) {
        now += segs[i].duration * 1.0;
        pred.observe(now, double(i + 1) * 1e6);
    }
    double predictedAt90 = pred.predictTotal().sec();
    // True total: 50·5ms·1.8 + 50·5ms = 0.70 s.
    EXPECT_GT(predictedAtHalf, 0.8); // still expects contention
    EXPECT_LT(predictedAt90, 0.75);  // adapted to the drop
    EXPECT_GT(predictedAt90, 0.68);
}

TEST(PredictorEdgeTest, NegativePenaltiesForFasterThanProfile)
{
    // An execution consistently faster than the profile (e.g. the
    // profile was taken under residual noise) yields negative
    // penalties and predictions below the profiled total.
    Profile profile = uniformProfile(50);
    Predictor pred(&profile);
    for (int e = 0; e < 4; ++e)
        runPiecewise(pred, profile, 0.9, 0.9,
                     Time::sec(double(e) * 2.0));
    EXPECT_LT(pred.penaltyAverage(10), 0.0);

    pred.beginExecution(Time::sec(50.0));
    Time now = Time::sec(50.0);
    for (size_t i = 0; i < 25; ++i) {
        now += Time::ms(4.5);
        pred.observe(now, double(i + 1) * 1e6);
    }
    double predicted = pred.predictTotal().sec();
    EXPECT_LT(predicted, profile.totalTime().sec());
    EXPECT_NEAR(predicted, 50 * 4.5e-3, 0.01);
}

TEST(PredictorEdgeTest, NonUniformProfileSegments)
{
    // Segments with different durations and progress: prediction at a
    // boundary equals elapsed + the exact remaining profile when the
    // execution matches the profile.
    std::vector<ProfileSegment> segs = {
        {2e6, Time::ms(4.0)},
        {1e6, Time::ms(6.0)},
        {4e6, Time::ms(5.0)},
        {0.5e6, Time::ms(3.0)},
    };
    Profile profile("nonuniform", Time::ms(5.0), segs);
    Predictor pred(&profile);
    pred.beginExecution(Time());
    pred.observe(Time::ms(4.0), 2e6);
    pred.observe(Time::ms(10.0), 3e6);
    // Remaining: 5 ms + 3 ms (no history, current rate factor ≈ 0).
    EXPECT_NEAR(pred.predictTotal().ms(), 18.0, 0.2);
}

TEST(PredictorEdgeTest, ScaleClampBoundsExtremeObservations)
{
    // A pathological execution running 100× slower than history must
    // not produce an unbounded prediction: the scale clamps at 10.
    Profile profile = uniformProfile(40);
    Predictor pred(&profile);
    for (int e = 0; e < 4; ++e)
        runPiecewise(pred, profile, 1.05, 1.05,
                     Time::sec(double(e)));

    pred.beginExecution(Time::sec(50.0));
    Time now = Time::sec(50.0);
    for (size_t i = 0; i < 10; ++i) {
        now += Time::ms(500.0); // 100× slowdown
        pred.observe(now, double(i + 1) * 1e6);
    }
    double predicted = pred.predictTotal().sec();
    double elapsed = 5.0;
    // Bounded: elapsed + at most ~30 segments × 5 ms × (1 + 10·rate).
    EXPECT_LT(predicted, elapsed + 30 * 5e-3 * (1.0 + 10.0 * 2.0));
    EXPECT_GT(predicted, elapsed);
}

TEST(PredictorEdgeTest, MinimumSegmentTimeFloor)
{
    // Even with strongly negative history, an expected segment never
    // dips below 5% of its profiled time.
    Profile profile = uniformProfile(20);
    Predictor pred(&profile);
    for (int e = 0; e < 8; ++e)
        runPiecewise(pred, profile, 0.2, 0.2,
                     Time::sec(double(e)));
    pred.beginExecution(Time::sec(50.0));
    pred.observe(Time::sec(50.0) + Time::ms(1.0), 1e6);
    // 19 remaining segments at ≥ 0.25 ms each.
    EXPECT_GE(pred.predictTotal().sec(),
              1e-3 + 19 * 0.05 * 5e-3 - 1e-9);
}

} // namespace
} // namespace dirigent::core
