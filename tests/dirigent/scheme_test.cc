/**
 * @file
 * Tests of the evaluated-scheme descriptors.
 */

#include <gtest/gtest.h>

#include <string>

#include "dirigent/scheme.h"

namespace dirigent::core {
namespace {

TEST(SchemeTest, AllSchemesInPaperOrder)
{
    auto schemes = allSchemes();
    ASSERT_EQ(schemes.size(), 5u);
    EXPECT_EQ(schemes[0], Scheme::Baseline);
    EXPECT_EQ(schemes[1], Scheme::StaticFreq);
    EXPECT_EQ(schemes[2], Scheme::StaticBoth);
    EXPECT_EQ(schemes[3], Scheme::DirigentFreq);
    EXPECT_EQ(schemes[4], Scheme::Dirigent);
}

TEST(SchemeTest, NamesMatchPaper)
{
    EXPECT_STREQ(schemeName(Scheme::Baseline), "Baseline");
    EXPECT_STREQ(schemeName(Scheme::StaticFreq), "StaticFreq");
    EXPECT_STREQ(schemeName(Scheme::StaticBoth), "StaticBoth");
    EXPECT_STREQ(schemeName(Scheme::DirigentFreq), "DirigentFreq");
    EXPECT_STREQ(schemeName(Scheme::Dirigent), "Dirigent");
}

TEST(SchemeTest, RuntimeUsage)
{
    EXPECT_FALSE(schemeUsesRuntime(Scheme::Baseline));
    EXPECT_FALSE(schemeUsesRuntime(Scheme::StaticFreq));
    EXPECT_FALSE(schemeUsesRuntime(Scheme::StaticBoth));
    EXPECT_TRUE(schemeUsesRuntime(Scheme::DirigentFreq));
    EXPECT_TRUE(schemeUsesRuntime(Scheme::Dirigent));
}

TEST(SchemeTest, CoarseOnlyInFullDirigent)
{
    for (Scheme s : allSchemes())
        EXPECT_EQ(schemeUsesCoarse(s), s == Scheme::Dirigent);
}

TEST(SchemeTest, StaticKnobs)
{
    EXPECT_TRUE(schemeUsesStaticBgFreq(Scheme::StaticFreq));
    EXPECT_TRUE(schemeUsesStaticBgFreq(Scheme::StaticBoth));
    EXPECT_FALSE(schemeUsesStaticBgFreq(Scheme::Dirigent));
    EXPECT_TRUE(schemeUsesStaticPartition(Scheme::StaticBoth));
    EXPECT_FALSE(schemeUsesStaticPartition(Scheme::StaticFreq));
    EXPECT_FALSE(schemeUsesStaticPartition(Scheme::DirigentFreq));
}

TEST(SchemeTest, NamesUnique)
{
    std::set<std::string> names;
    for (Scheme s : allSchemes())
        EXPECT_TRUE(names.insert(schemeName(s)).second);
}

} // namespace
} // namespace dirigent::core
