/**
 * @file
 * Tests of the Profile container and its serialization format.
 */

#include <gtest/gtest.h>

#include "dirigent/profile.h"

namespace dirigent::core {
namespace {

Profile
sampleProfile()
{
    std::vector<ProfileSegment> segs = {
        {1e7, Time::ms(5.0)},
        {2e7, Time::ms(5.1)},
        {1.5e7, Time::ms(4.9)},
    };
    return Profile("ferret", Time::ms(5.0), segs);
}

TEST(ProfileTest, Accessors)
{
    Profile p = sampleProfile();
    EXPECT_EQ(p.benchmark(), "ferret");
    EXPECT_DOUBLE_EQ(p.samplingPeriod().ms(), 5.0);
    EXPECT_EQ(p.size(), 3u);
    EXPECT_FALSE(p.empty());
    EXPECT_DOUBLE_EQ(p.totalProgress(), 4.5e7);
    EXPECT_NEAR(p.totalTime().ms(), 15.0, 1e-9);
}

TEST(ProfileTest, DefaultIsEmpty)
{
    Profile p;
    EXPECT_TRUE(p.empty());
    EXPECT_DOUBLE_EQ(p.totalProgress(), 0.0);
}

TEST(ProfileTest, SerializeRoundTrips)
{
    Profile p = sampleProfile();
    auto restored = Profile::deserialize(p.serialize());
    ASSERT_TRUE(restored.has_value());
    EXPECT_EQ(restored->benchmark(), p.benchmark());
    EXPECT_DOUBLE_EQ(restored->samplingPeriod().sec(),
                     p.samplingPeriod().sec());
    ASSERT_EQ(restored->size(), p.size());
    for (size_t i = 0; i < p.size(); ++i) {
        EXPECT_DOUBLE_EQ(restored->segments()[i].progress,
                         p.segments()[i].progress);
        EXPECT_NEAR(restored->segments()[i].duration.sec(),
                    p.segments()[i].duration.sec(), 1e-15);
    }
}

TEST(ProfileTest, DeserializeRejectsGarbage)
{
    EXPECT_FALSE(Profile::deserialize("").has_value());
    EXPECT_FALSE(Profile::deserialize("not a profile").has_value());
    EXPECT_FALSE(
        Profile::deserialize("dirigent-profile v2\n").has_value());
}

TEST(ProfileTest, DeserializeRejectsTruncatedSegments)
{
    Profile p = sampleProfile();
    std::string text = p.serialize();
    // Drop the last line (one segment short).
    text.erase(text.rfind('\n', text.size() - 2) + 1);
    EXPECT_FALSE(Profile::deserialize(text).has_value());
}

TEST(ProfileTest, DeserializeRejectsNegativeValues)
{
    std::string text = "dirigent-profile v1\n"
                       "benchmark x\n"
                       "period_s 0.005\n"
                       "segments 1\n"
                       "-5 0.005\n";
    EXPECT_FALSE(Profile::deserialize(text).has_value());
}

TEST(ProfileDeathTest, DegenerateSegmentPanics)
{
    std::vector<ProfileSegment> segs = {{0.0, Time::ms(5.0)}};
    EXPECT_DEATH(Profile("x", Time::ms(5.0), segs), "degenerate");
}

TEST(ProfileDeathTest, ZeroPeriodPanics)
{
    std::vector<ProfileSegment> segs = {{1e7, Time::ms(5.0)}};
    EXPECT_DEATH(Profile("x", Time(), segs), "period");
}

} // namespace
} // namespace dirigent::core
