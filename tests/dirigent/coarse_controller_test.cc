/**
 * @file
 * Tests of the coarse-grain partition controller's three heuristics
 * and invocation cadence.
 */

#include <gtest/gtest.h>

#include "dirigent/coarse_controller.h"
#include "machine/actuators.h"
#include "workload/benchmarks.h"

namespace dirigent::core {
namespace {

class CoarseControllerTest : public testing::Test
{
  protected:
    CoarseControllerTest() : machine_(makeConfig()), cat_(machine_)
    {
        const auto &lib = workload::BenchmarkLibrary::instance();
        for (unsigned c = 0; c < 6; ++c) {
            machine::ProcessSpec s;
            bool fg = c == 0;
            s.name = fg ? "fg" : "bg";
            s.program = fg ? &lib.get("ferret").program
                           : &lib.get("lbm").program;
            s.core = c;
            s.foreground = fg;
            machine_.spawnProcess(s);
        }
    }

    static machine::MachineConfig
    makeConfig()
    {
        machine::MachineConfig cfg;
        cfg.noiseEventsPerSec = 0.0;
        return cfg;
    }

    CoarseControllerConfig
    config()
    {
        CoarseControllerConfig cfg;
        cfg.historyWindow = 10;
        cfg.firstInvocation = 10;
        cfg.invokeEvery = 6;
        cfg.initialFgWays = 2;
        return cfg;
    }

    machine::Machine machine_;
    machine::CatController cat_;
    machine::CatPartitionActuator part_{cat_};
};

TEST_F(CoarseControllerTest, AppliesInitialPartition)
{
    CoarseGrainController ctrl(machine_, part_, config());
    EXPECT_EQ(ctrl.fgWays(), 2u);
    EXPECT_TRUE(cat_.partitioned());
    ASSERT_EQ(ctrl.decisions().size(), 1u);
    EXPECT_STREQ(ctrl.decisions()[0].heuristic, "initial");
}

TEST_F(CoarseControllerTest, InvocationCadence)
{
    CoarseGrainController ctrl(machine_, part_, config());
    for (int i = 0; i < 9; ++i)
        ctrl.recordExecution(Time::sec(1.0), 1e6, false, 0.0);
    EXPECT_EQ(ctrl.invocations(), 0u);
    ctrl.recordExecution(Time::sec(1.0), 1e6, false, 0.0); // 10th
    EXPECT_EQ(ctrl.invocations(), 1u);
    for (int i = 0; i < 6; ++i)
        ctrl.recordExecution(Time::sec(1.0), 1e6, false, 0.0);
    EXPECT_EQ(ctrl.invocations(), 2u);
    // ~5 invocations within ≈34 executions (paper Fig. 8: converges in
    // 32 executions = 5 coarse invocations).
    for (int i = 0; i < 18; ++i)
        ctrl.recordExecution(Time::sec(1.0), 1e6, false, 0.0);
    EXPECT_EQ(ctrl.invocations(), 5u);
    EXPECT_EQ(ctrl.executionsSeen(), 34u);
}

TEST_F(CoarseControllerTest, H1GrowsOnCorrelatedMisses)
{
    CoarseGrainController ctrl(machine_, part_, config());
    // Execution time strongly correlated with misses + deadline misses.
    for (int i = 0; i < 10; ++i) {
        double misses = 1e6 * (1.0 + 0.1 * i);
        double time = 1.0 + 0.05 * i;
        ctrl.recordExecution(Time::sec(time), misses, i % 3 == 0, 0.0);
    }
    EXPECT_EQ(ctrl.fgWays(), 3u);
    EXPECT_STREQ(ctrl.decisions().back().heuristic, "H1-grow");
}

TEST_F(CoarseControllerTest, NoGrowWithoutDeadlineMisses)
{
    CoarseGrainController ctrl(machine_, part_, config());
    for (int i = 0; i < 10; ++i) {
        double misses = 1e6 * (1.0 + 0.1 * i);
        double time = 1.0 + 0.05 * i;
        ctrl.recordExecution(Time::sec(time), misses, false, 0.0);
    }
    EXPECT_EQ(ctrl.fgWays(), 2u);
}

TEST_F(CoarseControllerTest, NoGrowWithoutCorrelation)
{
    CoarseGrainController ctrl(machine_, part_, config());
    // Times vary, misses anticorrelated: partition will not help.
    for (int i = 0; i < 10; ++i) {
        double misses = 1e6 * (2.0 - 0.1 * i);
        double time = 1.0 + 0.05 * i;
        ctrl.recordExecution(Time::sec(time), misses, true, 0.0);
    }
    EXPECT_EQ(ctrl.fgWays(), 2u);
}

TEST_F(CoarseControllerTest, H2RetractsUselessGrow)
{
    CoarseGrainController ctrl(machine_, part_, config());
    // Trigger an H1 grow.
    for (int i = 0; i < 10; ++i)
        ctrl.recordExecution(Time::sec(1.0 + 0.05 * i),
                             1e6 * (1.0 + 0.1 * i), true, 0.0);
    ASSERT_EQ(ctrl.fgWays(), 3u);
    // Misses do not improve after the grow: H2 shrinks back.
    for (int i = 0; i < 6; ++i)
        ctrl.recordExecution(Time::sec(1.3), 1.6e6, false, 0.0);
    EXPECT_EQ(ctrl.fgWays(), 2u);
    EXPECT_STREQ(ctrl.decisions().back().heuristic, "H2-shrink");
}

TEST_F(CoarseControllerTest, H2KeepsHelpfulGrow)
{
    CoarseGrainController ctrl(machine_, part_, config());
    for (int i = 0; i < 10; ++i)
        ctrl.recordExecution(Time::sec(1.0 + 0.05 * i),
                             1e6 * (1.0 + 0.1 * i), true, 0.0);
    ASSERT_EQ(ctrl.fgWays(), 3u);
    // Misses drop markedly after the grow: the grow sticks.
    for (int i = 0; i < 6; ++i)
        ctrl.recordExecution(Time::sec(1.0), 0.5e6, false, 0.0);
    EXPECT_GE(ctrl.fgWays(), 3u);
}

TEST_F(CoarseControllerTest, H3GrowsOnHeavyThrottling)
{
    CoarseGrainController ctrl(machine_, part_, config());
    // No correlation, no deadline misses, but the fine controller
    // reports BG heavily throttled.
    for (int i = 0; i < 10; ++i)
        ctrl.recordExecution(Time::sec(1.0), 1e6, false, 0.9);
    EXPECT_EQ(ctrl.fgWays(), 3u);
    EXPECT_STREQ(ctrl.decisions().back().heuristic, "H3-grow");
}

TEST_F(CoarseControllerTest, NoActionWhenAllQuiet)
{
    CoarseGrainController ctrl(machine_, part_, config());
    for (int i = 0; i < 30; ++i)
        ctrl.recordExecution(Time::sec(1.0), 1e6, false, 0.1);
    EXPECT_EQ(ctrl.fgWays(), 2u);
    EXPECT_GE(ctrl.invocations(), 3u);
}

TEST_F(CoarseControllerTest, RepeatedGrowthConvergesAndStops)
{
    // Sustained H3 pressure grows the partition invocation after
    // invocation, but H2 requires each grow to pay off; emulate misses
    // dropping with each grow so growth continues, then verify the
    // partition stays within bounds.
    CoarseGrainController ctrl(machine_, part_, config());
    double missBase = 1e6;
    for (int round = 0; round < 20; ++round) {
        for (int i = 0; i < 6; ++i)
            ctrl.recordExecution(Time::sec(1.0), missBase, false, 0.9);
        missBase *= 0.8; // every grow helps
    }
    EXPECT_GT(ctrl.fgWays(), 4u);
    EXPECT_LT(ctrl.fgWays(), cat_.numWays());
}

TEST_F(CoarseControllerTest, DecisionTraceRecordsEverything)
{
    CoarseGrainController ctrl(machine_, part_, config());
    for (int i = 0; i < 22; ++i)
        ctrl.recordExecution(Time::sec(1.0), 1e6, false, 0.0);
    // initial + invocations at 10, 16, 22.
    EXPECT_EQ(ctrl.decisions().size(), 4u);
    EXPECT_EQ(ctrl.decisions()[1].executionIndex, 10u);
    EXPECT_EQ(ctrl.decisions()[2].executionIndex, 16u);
}

TEST_F(CoarseControllerTest, WindowForgetsOldBehaviour)
{
    CoarseGrainController ctrl(machine_, part_, config());
    // Old correlated-miss regime (may trigger one grow at the first
    // invocation, whose window still contains it)…
    for (int i = 0; i < 4; ++i)
        ctrl.recordExecution(Time::sec(1.0 + 0.1 * i),
                             1e6 * (1.0 + 0.1 * i), true, 0.0);
    // …followed by quiet executions that push it out of the window.
    for (int i = 0; i < 30; ++i)
        ctrl.recordExecution(Time::sec(1.0), 0.8e6, false, 0.0);
    // Once the window is all-quiet, growth stops: at most the single
    // transitional grow survives.
    EXPECT_LE(ctrl.fgWays(), 3u);
    // And the last decisions fired no heuristic.
    EXPECT_STREQ(ctrl.decisions().back().heuristic, "");
}

} // namespace
} // namespace dirigent::core
