/**
 * @file
 * Tests of the declarative scheme-spec layer: the builtin registry
 * mirrors the Scheme enum, specs round-trip losslessly through the
 * canonical INI text, the hash fingerprints that text, and hostile
 * inputs are rejected with messages naming the offending fields.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/hash.h"
#include "dirigent/scheme_spec.h"

namespace dirigent::core {
namespace {

TEST(SchemeSpecRegistryTest, PaperSchemesComeFirstInEnumOrder)
{
    const auto &specs = builtinSchemeSpecs();
    ASSERT_GE(specs.size(), allSchemes().size());
    size_t i = 0;
    for (Scheme s : allSchemes())
        EXPECT_EQ(specs[i++].name, schemeName(s));
    // Followed by the ablation configurations.
    EXPECT_NE(findSchemeSpec("Observer"), nullptr);
    EXPECT_NE(findSchemeSpec("Reactive"), nullptr);
    EXPECT_NE(findSchemeSpec("CoarseOnly"), nullptr);
}

TEST(SchemeSpecRegistryTest, EnumPredicatesMatchSpecFields)
{
    for (Scheme s : allSchemes()) {
        SCOPED_TRACE(schemeName(s));
        SchemeSpec spec = schemeSpec(s);
        EXPECT_EQ(spec.attachesRuntime(), schemeUsesRuntime(s));
        EXPECT_EQ(spec.coarse, schemeUsesCoarse(s));
        EXPECT_EQ(spec.bgFreqGrade >= 0, schemeUsesStaticBgFreq(s));
        EXPECT_EQ(spec.staticPartition, schemeUsesStaticPartition(s));
    }
}

TEST(SchemeSpecRegistryTest, LookupIsCaseInsensitive)
{
    const SchemeSpec *spec = findSchemeSpec("dirigentfreq");
    ASSERT_NE(spec, nullptr);
    EXPECT_EQ(spec->name, "DirigentFreq");
    EXPECT_EQ(findSchemeSpec("STATICBOTH")->name, "StaticBoth");
    EXPECT_EQ(findSchemeSpec("no-such-scheme"), nullptr);

    EXPECT_EQ(schemeFromName("staticboth"), Scheme::StaticBoth);
    EXPECT_EQ(schemeFromName("Observer"), std::nullopt);
}

TEST(SchemeSpecRoundTripTest, AllBuiltinsSurviveFormatParse)
{
    for (const SchemeSpec &spec : builtinSchemeSpecs()) {
        SCOPED_TRACE(spec.name);
        EXPECT_EQ(parseSchemeSpec(formatSchemeSpec(spec)), spec);
    }
}

TEST(SchemeSpecRoundTripTest, CustomSpecWithEveryKnobSurvives)
{
    SchemeSpec spec;
    spec.name = "my-ablation_2";
    spec.bgFreqGrade = 3;
    spec.staticPartition = true;
    spec.staticFgWays = 7;
    spec.fine = true;
    spec.coarse = true;
    spec.bgBandwidthCap = 2.5e9;
    EXPECT_EQ(parseSchemeSpec(formatSchemeSpec(spec)), spec);
}

TEST(SchemeSpecRoundTripTest, HashFingerprintsCanonicalText)
{
    for (const SchemeSpec &spec : builtinSchemeSpecs()) {
        EXPECT_EQ(schemeSpecHash(spec), fnv1a64(formatSchemeSpec(spec)));
        EXPECT_NE(schemeSpecHash(spec), 0u);
    }
    // Distinct configurations fingerprint differently.
    EXPECT_NE(schemeSpecHash(schemeSpec(Scheme::Baseline)),
              schemeSpecHash(schemeSpec(Scheme::Dirigent)));
}

TEST(SchemeSpecRoundTripTest, KnobSummaryNamesTheKnobs)
{
    EXPECT_EQ(schemeKnobSummary(schemeSpec(Scheme::Baseline)),
              "free contention");
    EXPECT_EQ(schemeKnobSummary(schemeSpec(Scheme::Dirigent)),
              "fine + coarse");
    EXPECT_EQ(schemeKnobSummary(schemeSpec(Scheme::StaticBoth)),
              "bg@grade0 + static fg=default ways");
}

TEST(SchemeSpecValidationTest, NamesTheOffendingField)
{
    SchemeSpec spec = schemeSpec(Scheme::Baseline);
    EXPECT_EQ(validateSchemeSpec(spec), std::nullopt);

    spec.name = "";
    EXPECT_NE(validateSchemeSpec(spec), std::nullopt);

    spec.name = "has space";
    auto err = validateSchemeSpec(spec);
    ASSERT_TRUE(err.has_value());
    EXPECT_NE(err->find("name"), std::string::npos);

    spec = schemeSpec(Scheme::Baseline);
    spec.bgFreqGrade = 64;
    err = validateSchemeSpec(spec);
    ASSERT_TRUE(err.has_value());
    EXPECT_NE(err->find("bg_freq_grade"), std::string::npos);

    spec = schemeSpec(Scheme::Baseline);
    spec.staticFgWays = 4; // without staticPartition
    err = validateSchemeSpec(spec);
    ASSERT_TRUE(err.has_value());
    EXPECT_NE(err->find("static.partition"), std::string::npos);

    spec = schemeSpec(Scheme::Baseline);
    spec.bgBandwidthCap = -1.0;
    err = validateSchemeSpec(spec);
    ASSERT_TRUE(err.has_value());
    EXPECT_NE(err->find("bg_cap"), std::string::npos);
}

TEST(SchemeSpecValidationTest, ConflictNamesBothControllers)
{
    SchemeSpec spec;
    spec.name = "broken";
    spec.reactive = true;
    spec.fine = true;
    auto err = validateSchemeSpec(spec);
    ASSERT_TRUE(err.has_value());
    EXPECT_NE(err->find("control.reactive"), std::string::npos);
    EXPECT_NE(err->find("control.fine"), std::string::npos);

    spec.fine = false;
    spec.coarse = true;
    err = validateSchemeSpec(spec);
    ASSERT_TRUE(err.has_value());
    EXPECT_NE(err->find("control.coarse"), std::string::npos);

    // Reactive + observer is allowed (the observer is passive).
    spec.coarse = false;
    spec.observer = true;
    EXPECT_EQ(validateSchemeSpec(spec), std::nullopt);
}

TEST(SchemeSpecValidationTest, HostileTextIsFatalWithMessage)
{
    EXPECT_DEATH(parseSchemeSpec("[scheme]\nname = x\n"
                                 "[controll]\nfine = true\n"),
                 "unknown key");
    EXPECT_DEATH(parseSchemeSpec("[scheme]\nname = x\n"
                                 "[static]\nbg_freq_grade = 99\n"),
                 "out of range");
    EXPECT_DEATH(parseSchemeSpec("[scheme]\nname = x\n"
                                 "[static]\nfg_ways = 300\n"),
                 "out of range");
    EXPECT_DEATH(parseSchemeSpec("[scheme]\nname = x\n[control]\n"
                                 "fine = true\nreactive = true\n"),
                 "reactive conflicts with control.fine");
    EXPECT_DEATH(parseSchemeSpec("[scheme]\nname = x\n[control]\n"
                                 "coarse = true\nreactive = true\n"),
                 "reactive conflicts with control.coarse");
    EXPECT_DEATH(parseSchemeSpec("[control]\nfine = true\n"),
                 "name must be non-empty");
    EXPECT_DEATH(parseSchemeSpec("[scheme]\nname = x\n"
                                 "[bandwidth]\nbg_cap = -2\n"),
                 "bg_cap");
}

TEST(SchemeSpecEnvTest, SchemeFilePathComesFromEnvironment)
{
    unsetenv("DIRIGENT_SCHEME_FILE");
    EXPECT_EQ(envSchemeFilePath(), std::nullopt);
    setenv("DIRIGENT_SCHEME_FILE", "", 1);
    EXPECT_EQ(envSchemeFilePath(), std::nullopt);
    setenv("DIRIGENT_SCHEME_FILE", "/tmp/x.scheme", 1);
    EXPECT_EQ(envSchemeFilePath(), std::optional<std::string>(
                                       "/tmp/x.scheme"));
    unsetenv("DIRIGENT_SCHEME_FILE");
}

} // namespace
} // namespace dirigent::core
