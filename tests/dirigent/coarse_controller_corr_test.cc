/**
 * @file
 * Focused tests of the coarse controller's corr > 0.75 heuristic (H1):
 * threshold behaviour, degenerate statistics, and the short-history
 * edge — invocations with fewer than historyWindow (10) runs recorded,
 * where two or three monotone points correlate perfectly and a single
 * point has no defined correlation at all. Also covers the heuristics'
 * failed-actuation branches under injected CAT faults.
 */

#include <gtest/gtest.h>

#include "dirigent/coarse_controller.h"
#include "fault/injector.h"
#include "machine/actuators.h"
#include "workload/benchmarks.h"

namespace dirigent::core {
namespace {

class CoarseCorrTest : public testing::Test
{
  protected:
    CoarseCorrTest() : machine_(makeConfig()), cat_(machine_)
    {
        const auto &lib = workload::BenchmarkLibrary::instance();
        for (unsigned c = 0; c < 6; ++c) {
            machine::ProcessSpec s;
            bool fg = c == 0;
            s.name = fg ? "fg" : "bg";
            s.program = fg ? &lib.get("ferret").program
                           : &lib.get("lbm").program;
            s.core = c;
            s.foreground = fg;
            machine_.spawnProcess(s);
        }
    }

    static machine::MachineConfig
    makeConfig()
    {
        machine::MachineConfig cfg;
        cfg.noiseEventsPerSec = 0.0;
        return cfg;
    }

    CoarseControllerConfig
    config(unsigned firstInvocation = 10)
    {
        CoarseControllerConfig cfg;
        cfg.historyWindow = 10;
        cfg.firstInvocation = firstInvocation;
        cfg.invokeEvery = 6;
        cfg.initialFgWays = 2;
        return cfg;
    }

    machine::Machine machine_;
    machine::CatController cat_;
    machine::CatPartitionActuator part_{cat_};
};

TEST_F(CoarseCorrTest, StrongCorrelationWithMissesGrows)
{
    CoarseGrainController ctrl(machine_, part_, config());
    for (int i = 0; i < 10; ++i)
        ctrl.recordExecution(Time::sec(1.0 + 0.05 * i),
                             1e6 * (1.0 + 0.1 * i), i == 0, 0.0);
    EXPECT_EQ(ctrl.fgWays(), 3u);
    EXPECT_STREQ(ctrl.decisions().back().heuristic, "H1-grow");
}

TEST_F(CoarseCorrTest, WeakCorrelationDoesNotGrow)
{
    CoarseGrainController ctrl(machine_, part_, config());
    // Times up, misses zig-zagging: |corr| well below 0.75.
    for (int i = 0; i < 10; ++i) {
        double misses = 1e6 * (i % 2 == 0 ? 2.0 : 1.0);
        ctrl.recordExecution(Time::sec(1.0 + 0.05 * i), misses, true,
                             0.0);
    }
    EXPECT_EQ(ctrl.fgWays(), 2u);
    EXPECT_STREQ(ctrl.decisions().back().heuristic, "");
}

TEST_F(CoarseCorrTest, ConstantTimesHaveZeroCorrelation)
{
    // Zero variance on either axis: pearson() is defined as 0, so H1
    // must not fire no matter how the misses move.
    CoarseGrainController ctrl(machine_, part_, config());
    for (int i = 0; i < 10; ++i)
        ctrl.recordExecution(Time::sec(1.0), 1e6 * (1.0 + 0.1 * i), true,
                             0.0);
    EXPECT_EQ(ctrl.fgWays(), 2u);
}

TEST_F(CoarseCorrTest, CorrelationWithoutRecentMissIsNotEnough)
{
    CoarseGrainController ctrl(machine_, part_, config());
    for (int i = 0; i < 10; ++i)
        ctrl.recordExecution(Time::sec(1.0 + 0.05 * i),
                             1e6 * (1.0 + 0.1 * i), false, 0.0);
    EXPECT_EQ(ctrl.fgWays(), 2u);
}

TEST_F(CoarseCorrTest, SingleRunHistoryHasNoCorrelation)
{
    // firstInvocation = 1: the heuristic runs with one data point,
    // where pearson() is 0 by definition — H1 must stay quiet even
    // though the one run missed its deadline.
    CoarseGrainController ctrl(machine_, part_, config(1));
    ctrl.recordExecution(Time::sec(2.0), 5e6, true, 0.0);
    EXPECT_EQ(ctrl.invocations(), 1u);
    EXPECT_EQ(ctrl.fgWays(), 2u);
    EXPECT_STREQ(ctrl.decisions().back().heuristic, "");
}

TEST_F(CoarseCorrTest, TwoRunHistoryCorrelatesSpuriously)
{
    // Short-history edge: any two distinct monotone points have
    // |corr| = 1, so an early invocation grows on what is pure noise.
    // This documents the cost of invoking before the window fills —
    // and why the defaults wait for firstInvocation = historyWindow.
    CoarseGrainController ctrl(machine_, part_, config(2));
    ctrl.recordExecution(Time::sec(1.0), 1e6, true, 0.0);
    ctrl.recordExecution(Time::sec(1.1), 1.2e6, false, 0.0);
    EXPECT_EQ(ctrl.invocations(), 1u);
    EXPECT_EQ(ctrl.fgWays(), 3u);
    EXPECT_STREQ(ctrl.decisions().back().heuristic, "H1-grow");
}

TEST_F(CoarseCorrTest, ShortHistoryAntiCorrelationStaysQuiet)
{
    // The mirror-image short history: times up while misses fall gives
    // corr = -1, safely below the threshold.
    CoarseGrainController ctrl(machine_, part_, config(2));
    ctrl.recordExecution(Time::sec(1.0), 1.2e6, true, 0.0);
    ctrl.recordExecution(Time::sec(1.1), 1e6, false, 0.0);
    EXPECT_EQ(ctrl.invocations(), 1u);
    EXPECT_EQ(ctrl.fgWays(), 2u);
}

TEST_F(CoarseCorrTest, PartialWindowUsesOnlyRecordedRuns)
{
    // firstInvocation = 5 < historyWindow = 10: the invocation sees the
    // five recorded runs, not a zero-padded window. Five correlated
    // runs with a miss are enough evidence for H1.
    CoarseGrainController ctrl(machine_, part_, config(5));
    for (int i = 0; i < 5; ++i)
        ctrl.recordExecution(Time::sec(1.0 + 0.05 * i),
                             1e6 * (1.0 + 0.1 * i), i == 0, 0.0);
    EXPECT_EQ(ctrl.invocations(), 1u);
    EXPECT_EQ(ctrl.fgWays(), 3u);
    EXPECT_STREQ(ctrl.decisions().back().heuristic, "H1-grow");
}

TEST_F(CoarseCorrTest, MissOutsideWindowIsForgotten)
{
    CoarseGrainController ctrl(machine_, part_, config());
    // One early deadline miss, then 10+ correlated but successful runs:
    // by the second invocation the miss has left the 10-run window.
    ctrl.recordExecution(Time::sec(1.0), 1e6, true, 0.0);
    for (int i = 1; i < 10; ++i)
        ctrl.recordExecution(Time::sec(1.0 + 0.05 * i),
                             1e6 * (1.0 + 0.1 * i), false, 0.0);
    unsigned afterFirst = ctrl.fgWays(); // miss still in window here
    for (int i = 0; i < 6; ++i)
        ctrl.recordExecution(Time::sec(1.3), 1.9e6, false, 0.0);
    // No further H1 growth once the miss aged out (H2 may retract).
    EXPECT_LE(ctrl.fgWays(), afterFirst);
}

TEST_F(CoarseCorrTest, FailedH1GrowIsRecordedAndRetried)
{
    fault::FaultPlan plan;
    plan.cat.failProb = 1.0;
    fault::FaultInjector faults(plan, 3);

    CoarseGrainController ctrl(machine_, part_, config());
    cat_.setFaultInjector(&faults); // after the initial partition
    for (int i = 0; i < 10; ++i)
        ctrl.recordExecution(Time::sec(1.0 + 0.05 * i),
                             1e6 * (1.0 + 0.1 * i), true, 0.0);
    // The grow failed: partition unchanged, failure recorded.
    EXPECT_EQ(ctrl.fgWays(), 2u);
    EXPECT_STREQ(ctrl.decisions().back().heuristic, "H1-grow-fail");

    // The fault clears; the next invocation retries the same grow.
    cat_.setFaultInjector(nullptr);
    for (int i = 0; i < 6; ++i)
        ctrl.recordExecution(Time::sec(1.0 + 0.05 * i),
                             1e6 * (1.0 + 0.1 * i), true, 0.0);
    EXPECT_EQ(ctrl.fgWays(), 3u);
    EXPECT_STREQ(ctrl.decisions().back().heuristic, "H1-grow");
}

TEST_F(CoarseCorrTest, FailedH2ShrinkKeepsRetractionPending)
{
    CoarseGrainController ctrl(machine_, part_, config());
    // Trigger an H1 grow cleanly.
    for (int i = 0; i < 10; ++i)
        ctrl.recordExecution(Time::sec(1.0 + 0.05 * i),
                             1e6 * (1.0 + 0.1 * i), true, 0.0);
    ASSERT_EQ(ctrl.fgWays(), 3u);

    // Misses do not improve and the shrink write fails.
    fault::FaultPlan plan;
    plan.cat.failProb = 1.0;
    fault::FaultInjector faults(plan, 4);
    cat_.setFaultInjector(&faults);
    for (int i = 0; i < 6; ++i)
        ctrl.recordExecution(Time::sec(1.3), 1.6e6, false, 0.0);
    EXPECT_EQ(ctrl.fgWays(), 3u);
    EXPECT_STREQ(ctrl.decisions().back().heuristic, "H2-shrink-fail");

    // Fault clears: the retraction is retried and lands.
    cat_.setFaultInjector(nullptr);
    for (int i = 0; i < 6; ++i)
        ctrl.recordExecution(Time::sec(1.3), 1.6e6, false, 0.0);
    EXPECT_EQ(ctrl.fgWays(), 2u);
    EXPECT_STREQ(ctrl.decisions().back().heuristic, "H2-shrink");
}

TEST_F(CoarseCorrTest, FailedH3GrowIsRecorded)
{
    fault::FaultPlan plan;
    plan.cat.failProb = 1.0;
    fault::FaultInjector faults(plan, 5);

    CoarseGrainController ctrl(machine_, part_, config());
    cat_.setFaultInjector(&faults);
    for (int i = 0; i < 10; ++i)
        ctrl.recordExecution(Time::sec(1.0), 1e6, false, 0.9);
    EXPECT_EQ(ctrl.fgWays(), 2u);
    EXPECT_STREQ(ctrl.decisions().back().heuristic, "H3-grow-fail");
    cat_.setFaultInjector(nullptr);
}

} // namespace
} // namespace dirigent::core
