/**
 * @file
 * Tests of the pluggable-predictor registry: builtin kinds, lossless
 * round-trips through the canonical `[predictor]` INI section, hash
 * coverage, hostile-input rejection with field-naming messages, the
 * factory's kind dispatch, and the degraded-mode fallback wrapper.
 */

#include <gtest/gtest.h>

#include "common/config.h"
#include "common/hash.h"
#include "dirigent/fallback_predictor.h"
#include "dirigent/predictor_spec.h"
#include "dirigent/scheme_spec.h"

namespace dirigent::core {
namespace {

/** A uniform profile: @p n segments of @p progress instr / @p dt each. */
Profile
uniformProfile(size_t n, double progress = 1e6,
               Time dt = Time::ms(5.0))
{
    std::vector<ProfileSegment> segs(n, ProfileSegment{progress, dt});
    return Profile("test", dt, segs);
}

PredictorSpec
parseSection(const std::string &text)
{
    Config config = Config::parse(text);
    SpecFields fields(config, "test spec");
    return parsePredictorSection(fields);
}

TEST(PredictorSpecRegistryTest, OneBuiltinPerKind)
{
    const auto &specs = builtinPredictorSpecs();
    ASSERT_EQ(specs.size(), 3u);
    EXPECT_EQ(specs[0].kind, "ema");
    EXPECT_EQ(specs[1].kind, "generative");
    EXPECT_EQ(specs[2].kind, "decomposition");
    for (const PredictorSpec &spec : specs)
        EXPECT_EQ(validatePredictorSpec(spec), std::nullopt);
}

TEST(PredictorSpecRegistryTest, LookupIsCaseInsensitive)
{
    ASSERT_NE(findPredictorSpec("EMA"), nullptr);
    EXPECT_EQ(findPredictorSpec("EMA")->kind, "ema");
    ASSERT_NE(findPredictorSpec("Generative"), nullptr);
    EXPECT_EQ(findPredictorSpec("Generative")->kind, "generative");
    EXPECT_EQ(findPredictorSpec("no-such-predictor"), nullptr);
}

TEST(PredictorSpecRegistryTest, DefaultSpecIsTheEmaBuiltin)
{
    // The default-constructed spec IS the "ema" builtin: the harness
    // overlay rule (spec deviates from default => spec wins) depends
    // on this identity.
    EXPECT_EQ(PredictorSpec{}, builtinPredictorSpecs().front());
}

TEST(PredictorSpecRoundTripTest, AllBuiltinsSurviveFormatParse)
{
    for (const PredictorSpec &spec : builtinPredictorSpecs()) {
        SCOPED_TRACE(spec.kind);
        EXPECT_EQ(parseSection(formatPredictorSection(spec)), spec);
    }
}

TEST(PredictorSpecRoundTripTest, CustomSpecWithEveryKnobSurvives)
{
    PredictorSpec spec;
    spec.kind = "generative";
    spec.penaltyEmaWeight = 0.35;
    spec.rateEmaWeight = 0.15;
    spec.mismatchTolerance = 0.25;
    spec.mismatchStreak = 5;
    spec.degradedEmaWeight = 0.45;
    spec.ensemble = 16;
    spec.durationSigma = 0.5;
    spec.contentionSigma = 0.75;
    spec.driftSigma = 0.9;
    spec.forget = 0.8;
    spec.obsNoise = 0.1;
    spec.segmentEmaWeight = 0.2;
    EXPECT_EQ(parseSection(formatPredictorSection(spec)), spec);
}

TEST(PredictorSpecRoundTripTest, HashFingerprintsCanonicalText)
{
    for (const PredictorSpec &spec : builtinPredictorSpecs()) {
        EXPECT_EQ(predictorSpecHash(spec),
                  fnv1a64(formatPredictorSection(spec)));
        EXPECT_NE(predictorSpecHash(spec), 0u);
    }
    EXPECT_NE(predictorSpecHash(*findPredictorSpec("ema")),
              predictorSpecHash(*findPredictorSpec("generative")));
    // Knob changes fingerprint too, not just the kind.
    PredictorSpec tweaked;
    tweaked.forget = 0.5;
    EXPECT_NE(predictorSpecHash(tweaked),
              predictorSpecHash(PredictorSpec{}));
}

TEST(PredictorSpecRoundTripTest, SchemeSpecEmbedsThePredictorSection)
{
    // A scheme spec carrying a non-default predictor round-trips and
    // hashes over the [predictor] section.
    SchemeSpec scheme = schemeSpec(Scheme::Dirigent);
    uint64_t defaultHash = schemeSpecHash(scheme);
    scheme.predictor.kind = "decomposition";
    scheme.predictor.segmentEmaWeight = 0.5;
    EXPECT_EQ(parseSchemeSpec(formatSchemeSpec(scheme)), scheme);
    EXPECT_NE(schemeSpecHash(scheme), defaultHash);
}

TEST(PredictorSpecRoundTripTest, KnobSummaryNamesTheKind)
{
    EXPECT_NE(predictorKnobSummary(*findPredictorSpec("ema"))
                  .find("penalty ema"),
              std::string::npos);
    EXPECT_NE(predictorKnobSummary(*findPredictorSpec("generative"))
                  .find("ensemble"),
              std::string::npos);
    EXPECT_NE(predictorKnobSummary(*findPredictorSpec("decomposition"))
                  .find("segment ema"),
              std::string::npos);
}

TEST(PredictorSpecValidationTest, NamesTheOffendingField)
{
    PredictorSpec spec;
    EXPECT_EQ(validatePredictorSpec(spec), std::nullopt);

    spec.kind = "oracle";
    auto err = validatePredictorSpec(spec);
    ASSERT_TRUE(err.has_value());
    EXPECT_NE(err->find("predictor.kind"), std::string::npos);

    spec = PredictorSpec{};
    spec.penaltyEmaWeight = 0.0;
    err = validatePredictorSpec(spec);
    ASSERT_TRUE(err.has_value());
    EXPECT_NE(err->find("predictor.penalty_ema"), std::string::npos);

    spec = PredictorSpec{};
    spec.mismatchTolerance = -0.1;
    err = validatePredictorSpec(spec);
    ASSERT_TRUE(err.has_value());
    EXPECT_NE(err->find("predictor.mismatch_tolerance"),
              std::string::npos);

    spec = PredictorSpec{};
    spec.mismatchStreak = 0;
    err = validatePredictorSpec(spec);
    ASSERT_TRUE(err.has_value());
    EXPECT_NE(err->find("predictor.mismatch_streak"),
              std::string::npos);

    spec = PredictorSpec{};
    spec.ensemble = 1;
    err = validatePredictorSpec(spec);
    ASSERT_TRUE(err.has_value());
    EXPECT_NE(err->find("predictor.ensemble"), std::string::npos);

    spec = PredictorSpec{};
    spec.obsNoise = 0.0;
    err = validatePredictorSpec(spec);
    ASSERT_TRUE(err.has_value());
    EXPECT_NE(err->find("predictor.obs_noise"), std::string::npos);
}

TEST(PredictorSpecValidationTest, HostileTextIsFatalWithMessage)
{
    EXPECT_DEATH(parseSection("[predictor]\nkind = oracle\n"),
                 "predictor.kind 'oracle' unknown");
    EXPECT_DEATH(parseSection("[predictor]\nensemble = 100\n"),
                 "predictor.ensemble 100 out of range");
    EXPECT_DEATH(parseSection("[predictor]\nforget = 0\n"),
                 "predictor.forget must be a weight");
    // Scheme specs reject hostile [predictor] keys like their own.
    EXPECT_DEATH(parseSchemeSpec("[scheme]\nname = x\n"
                                 "[predictor]\nkindd = ema\n"),
                 "unknown key");
    EXPECT_DEATH(parseSchemeSpec("[scheme]\nname = x\n"
                                 "[predictor]\nkind = oracle\n"),
                 "predictor.kind 'oracle' unknown");
}

TEST(PredictorSpecValidationTest,
     DegradedEmaWeightIsValidatedNotHardcoded)
{
    // Regression: the degraded-mode duration-EMA weight used to be a
    // hard-wired 0.3 inside the runtime; now a mis-specified weight
    // must be rejected with a field-naming message.
    PredictorSpec spec;
    spec.degradedEmaWeight = 1.5;
    auto err = validatePredictorSpec(spec);
    ASSERT_TRUE(err.has_value());
    EXPECT_NE(err->find("predictor.degraded_ema"), std::string::npos);
    EXPECT_NE(err->find("weight in (0, 1]"), std::string::npos);
    EXPECT_DEATH(parseSection("[predictor]\ndegraded_ema = 1.5\n"),
                 "predictor.degraded_ema must be a weight in \\(0, 1\\]");
    EXPECT_DEATH(parseSchemeSpec("[scheme]\nname = x\n"
                                 "[predictor]\ndegraded_ema = -1\n"),
                 "predictor.degraded_ema");
}

TEST(PredictorFactoryTest, BuildsTheRequestedKindWrapped)
{
    Profile profile = uniformProfile(20);
    for (const PredictorSpec &spec : builtinPredictorSpecs()) {
        SCOPED_TRACE(spec.kind);
        auto pred = makePredictor(spec, &profile, 42);
        ASSERT_NE(pred, nullptr);
        // The wrapper reports its primary's name until degraded.
        EXPECT_STREQ(pred->name(), spec.kind.c_str());
        EXPECT_STREQ(pred->primary().name(), spec.kind.c_str());
        EXPECT_FALSE(pred->degraded());
        EXPECT_EQ(pred->spec(), spec);
    }
}

TEST(PredictorFactoryTest, InvalidSpecIsFatal)
{
    Profile profile = uniformProfile(4);
    PredictorSpec spec;
    spec.kind = "oracle";
    EXPECT_DEATH(makePredictor(spec, &profile, 1),
                 "predictor.kind 'oracle' unknown");
}

/** One full execution at profile pace (20 steps of 5 ms) whose final
 *  progress misses the profile total by @p shortfall (e.g. 0.5 = half
 *  the profiled progress). */
void
runMismatchedExecution(CompletionPredictor &pred, const Profile &profile,
                       double shortfall, Time &now)
{
    pred.beginExecution(now);
    double total = profile.totalProgress() * shortfall;
    Time dt = Time::ms(5.0);
    double step = total / 20.0;
    double progress = 0.0;
    for (int i = 0; i < 20; ++i) {
        now += dt;
        progress += step;
        pred.observe(now, progress);
    }
    pred.endExecution(now, progress);
}

TEST(FallbackPredictorTest, DegradesAfterMismatchStreak)
{
    Profile profile = uniformProfile(20);
    PredictorSpec spec;
    spec.mismatchStreak = 3;
    auto pred = makePredictor(spec, &profile, 7);

    int callbacks = 0;
    double ratioSeen = 0.0;
    unsigned streakSeen = 0;
    pred->setDegradeCallback([&](double ratio, unsigned streak) {
        ++callbacks;
        ratioSeen = ratio;
        streakSeen = streak;
    });

    Time now;
    // Two mismatched executions: still trusting the profile.
    runMismatchedExecution(*pred, profile, 0.4, now);
    runMismatchedExecution(*pred, profile, 0.4, now);
    EXPECT_FALSE(pred->degraded());
    EXPECT_EQ(callbacks, 0);

    // Third consecutive mismatch trips the fallback, once.
    runMismatchedExecution(*pred, profile, 0.4, now);
    EXPECT_TRUE(pred->degraded());
    EXPECT_EQ(callbacks, 1);
    EXPECT_NEAR(ratioSeen, 0.4, 1e-9);
    EXPECT_EQ(streakSeen, 3u);

    // Degraded predictions answer from the observed-duration EMA
    // (every execution above took 20 * 5 ms = 100 ms).
    runMismatchedExecution(*pred, profile, 0.4, now);
    EXPECT_EQ(callbacks, 1) << "degrade callback must fire once";
    pred->beginExecution(now);
    EXPECT_TRUE(pred->hasObservation());
    EXPECT_NEAR(pred->predictTotal().sec(), 0.1, 1e-9);
}

TEST(FallbackPredictorTest, MatchingExecutionsResetTheStreak)
{
    Profile profile = uniformProfile(20);
    PredictorSpec spec;
    spec.mismatchStreak = 3;
    auto pred = makePredictor(spec, &profile, 7);

    Time now;
    runMismatchedExecution(*pred, profile, 0.4, now);
    runMismatchedExecution(*pred, profile, 0.4, now);
    // A profile-conforming execution breaks the streak.
    runMismatchedExecution(*pred, profile, 1.0, now);
    runMismatchedExecution(*pred, profile, 0.4, now);
    runMismatchedExecution(*pred, profile, 0.4, now);
    EXPECT_FALSE(pred->degraded());
}

TEST(FallbackPredictorTest, ErrorEstimateTracksMidpointAccuracy)
{
    Profile profile = uniformProfile(20);
    auto pred = makePredictor(PredictorSpec{}, &profile, 7);
    EXPECT_EQ(pred->errorEstimate(), 0.0);

    // Profile-conforming executions: midpoint predictions are exact,
    // so the smoothed relative error stays ~0.
    Time now;
    runMismatchedExecution(*pred, profile, 1.0, now);
    runMismatchedExecution(*pred, profile, 1.0, now);
    EXPECT_LT(pred->errorEstimate(), 0.05);
}

} // namespace
} // namespace dirigent::core
