/**
 * @file
 * Tests of the assembled Dirigent runtime: sampling, prediction
 * bookkeeping across executions, control wiring, overhead accounting,
 * and observer mode.
 */

#include <gtest/gtest.h>

#include "dirigent/profiler.h"
#include "dirigent/runtime.h"
#include "workload/benchmarks.h"

namespace dirigent::core {
namespace {

class RuntimeTest : public testing::Test
{
  protected:
    RuntimeTest()
    {
        mcfg_.seed = 11;
        machine_ = std::make_unique<machine::Machine>(mcfg_);
        engine_ =
            std::make_unique<sim::Engine>(*machine_, mcfg_.maxQuantum);
        governor_ = std::make_unique<machine::CpuFreqGovernor>(
            *machine_, *engine_);
        cat_ = std::make_unique<machine::CatController>(*machine_);

        const auto &lib = workload::BenchmarkLibrary::instance();
        machine::ProcessSpec fg;
        fg.name = "ferret";
        fg.program = &lib.get("ferret").program;
        fg.core = 0;
        fg.foreground = true;
        fgPid_ = machine_->spawnProcess(fg);
        for (unsigned c = 1; c < 6; ++c) {
            machine::ProcessSpec bg;
            bg.name = "bwaves";
            bg.program = &lib.get("bwaves").program;
            bg.core = c;
            bg.foreground = false;
            machine_->spawnProcess(bg);
        }

        ProfilerConfig pcfg;
        pcfg.executions = 1;
        OfflineProfiler profiler(pcfg);
        profile_ = profiler.profileAlone(lib.get("ferret"), mcfg_);
    }

    RuntimeConfig
    runtimeConfig(bool fine, bool coarse)
    {
        RuntimeConfig cfg;
        cfg.enableFine = fine;
        cfg.enableCoarse = coarse;
        cfg.runtimeCore = 1;
        return cfg;
    }

    machine::MachineConfig mcfg_;
    std::unique_ptr<machine::Machine> machine_;
    std::unique_ptr<sim::Engine> engine_;
    std::unique_ptr<machine::CpuFreqGovernor> governor_;
    std::unique_ptr<machine::CatController> cat_;
    machine::Pid fgPid_ = 0;
    Profile profile_;
};

TEST_F(RuntimeTest, SamplesAtConfiguredPeriod)
{
    DirigentRuntime runtime(*machine_, *engine_, *governor_, *cat_,
                            runtimeConfig(false, false));
    runtime.addForeground(fgPid_, &profile_, Time::sec(2.0));
    runtime.start();
    engine_->runUntil(Time::ms(100.0));
    // ~20 ticks in 100 ms at ΔT = 5 ms (minus drift).
    EXPECT_GE(runtime.invocations(), 17u);
    EXPECT_LE(runtime.invocations(), 20u);
}

TEST_F(RuntimeTest, PredictorFollowsExecutions)
{
    DirigentRuntime runtime(*machine_, *engine_, *governor_, *cat_,
                            runtimeConfig(false, false));
    runtime.addForeground(fgPid_, &profile_, Time::sec(2.0));
    runtime.start();
    // Run long enough for at least two FG executions (~2 s each).
    engine_->runUntil(Time::sec(6.5));
    const CompletionPredictor &pred = runtime.predictor(fgPid_);
    EXPECT_GE(pred.executionsSeen(), 2u);
    // Midpoint samples recorded for completed executions.
    EXPECT_GE(runtime.midpointSamples(fgPid_).size(), 2u);
}

TEST_F(RuntimeTest, MidpointPredictionsAreReasonable)
{
    DirigentRuntime runtime(*machine_, *engine_, *governor_, *cat_,
                            runtimeConfig(false, false));
    runtime.addForeground(fgPid_, &profile_, Time::sec(2.0));
    runtime.start();
    engine_->runUntil(Time::sec(10.0));
    const auto &samples = runtime.midpointSamples(fgPid_);
    ASSERT_GE(samples.size(), 3u);
    for (const auto &s : samples) {
        EXPECT_GT(s.actualTotal.sec(), 0.5);
        // Prediction within 40% of actual even in the worst case.
        EXPECT_NEAR(s.predictedTotal.sec(), s.actualTotal.sec(),
                    0.4 * s.actualTotal.sec());
    }
}

TEST_F(RuntimeTest, ObserverModeTakesNoActions)
{
    DirigentRuntime runtime(*machine_, *engine_, *governor_, *cat_,
                            runtimeConfig(false, false));
    runtime.addForeground(fgPid_, &profile_, Time::sec(0.1)); // absurd
    runtime.start();
    engine_->runUntil(Time::sec(1.0));
    // Despite hopeless deadlines, nothing was throttled or paused.
    for (unsigned c = 1; c < 6; ++c) {
        EXPECT_EQ(governor_->grade(c), 8u);
        EXPECT_TRUE(
            machine_->os().processOnCore(c)->runnable());
    }
    EXPECT_EQ(runtime.fineController().stats().decisions, 0u);
}

TEST_F(RuntimeTest, FineModeThrottlesWhenBehind)
{
    DirigentRuntime runtime(*machine_, *engine_, *governor_, *cat_,
                            runtimeConfig(true, false));
    // Deadline slightly above standalone time: requires throttling BG.
    runtime.addForeground(fgPid_, &profile_,
                          profile_.totalTime() * 1.05);
    runtime.start();
    engine_->runUntil(Time::sec(3.0));
    const auto &stats = runtime.fineController().stats();
    EXPECT_GT(stats.decisions, 0u);
    EXPECT_GT(stats.bgThrottles + stats.pauses, 0u);
}

TEST_F(RuntimeTest, CoarseModeAppliesInitialPartition)
{
    DirigentRuntime runtime(*machine_, *engine_, *governor_, *cat_,
                            runtimeConfig(true, true));
    runtime.addForeground(fgPid_, &profile_, Time::sec(2.0));
    runtime.start();
    EXPECT_NE(runtime.coarseController(), nullptr);
    EXPECT_TRUE(cat_->partitioned());
    EXPECT_EQ(cat_->fgWays(), 2u);
}

TEST_F(RuntimeTest, CoarseDisabledMeansNoPartition)
{
    DirigentRuntime runtime(*machine_, *engine_, *governor_, *cat_,
                            runtimeConfig(true, false));
    runtime.addForeground(fgPid_, &profile_, Time::sec(2.0));
    runtime.start();
    EXPECT_EQ(runtime.coarseController(), nullptr);
    EXPECT_FALSE(cat_->partitioned());
}

TEST_F(RuntimeTest, CoarseControllerSeesExecutions)
{
    DirigentRuntime runtime(*machine_, *engine_, *governor_, *cat_,
                            runtimeConfig(true, true));
    runtime.addForeground(fgPid_, &profile_, Time::sec(2.0));
    runtime.start();
    engine_->runUntil(Time::sec(6.0));
    ASSERT_NE(runtime.coarseController(), nullptr);
    EXPECT_GE(runtime.coarseController()->executionsSeen(), 2u);
}

TEST_F(RuntimeTest, InvocationOverheadIsCharged)
{
    // The runtime core's BG task loses ≈ overhead × ticks of work.
    RuntimeConfig heavy = runtimeConfig(false, false);
    heavy.invocationOverhead = Time::ms(2.5); // exaggerated: 50% of ΔT
    DirigentRuntime runtime(*machine_, *engine_, *governor_, *cat_,
                            heavy);
    runtime.addForeground(fgPid_, &profile_, Time::sec(2.0));
    runtime.start();
    engine_->runUntil(Time::sec(1.0));
    double victim = machine_->readCounters(1).instructions;
    double other = machine_->readCounters(2).instructions;
    EXPECT_LT(victim, other * 0.7);
}

TEST_F(RuntimeTest, StopHaltsSampling)
{
    DirigentRuntime runtime(*machine_, *engine_, *governor_, *cat_,
                            runtimeConfig(true, false));
    runtime.addForeground(fgPid_, &profile_, Time::sec(2.0));
    runtime.start();
    engine_->runUntil(Time::ms(50.0));
    uint64_t ticks = runtime.invocations();
    runtime.stop();
    engine_->runUntil(Time::ms(200.0));
    EXPECT_EQ(runtime.invocations(), ticks);
}

TEST_F(RuntimeTest, DeadlinePassedThroughToController)
{
    DirigentRuntime runtime(*machine_, *engine_, *governor_, *cat_,
                            runtimeConfig(true, false));
    // Generous deadline: the controller should mostly find the FG
    // ahead and end up throttling the FG core itself.
    runtime.addForeground(fgPid_, &profile_, Time::sec(5.0));
    runtime.start();
    engine_->runUntil(Time::sec(2.0));
    EXPECT_LT(governor_->grade(0), 8u);
}

TEST_F(RuntimeTest, AddForegroundValidation)
{
    DirigentRuntime runtime(*machine_, *engine_, *governor_, *cat_,
                            runtimeConfig(true, false));
    EXPECT_DEATH(runtime.addForeground(fgPid_, nullptr, Time::sec(1.0)),
                 "profile");
    EXPECT_DEATH(runtime.addForeground(fgPid_, &profile_, Time()),
                 "deadline");
    // BG pid rejected.
    machine::Pid bgPid = machine_->os().backgroundPids().front();
    EXPECT_DEATH(runtime.addForeground(bgPid, &profile_, Time::sec(1.0)),
                 "foreground");
}

TEST_F(RuntimeTest, StartRequiresForeground)
{
    DirigentRuntime runtime(*machine_, *engine_, *governor_, *cat_,
                            runtimeConfig(true, false));
    EXPECT_DEATH(runtime.start(), "no foreground");
}

} // namespace
} // namespace dirigent::core
