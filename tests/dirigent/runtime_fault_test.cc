/**
 * @file
 * Runtime hardening tests: the plausibility sanitizer between counter
 * reads and the predictor, survival of glitched/saturated/dropped
 * sensing under an injected fault plan, and the degraded (reactive
 * fallback) mode entered when the offline profile no longer matches
 * measured progress.
 */

#include <gtest/gtest.h>

#include "dirigent/profile_fault.h"
#include "dirigent/profiler.h"
#include "dirigent/runtime.h"
#include "fault/injector.h"
#include "workload/benchmarks.h"

namespace dirigent::core {
namespace {

class RuntimeFaultTest : public testing::Test
{
  protected:
    RuntimeFaultTest()
    {
        mcfg_.seed = 23;
        machine_ = std::make_unique<machine::Machine>(mcfg_);
        engine_ =
            std::make_unique<sim::Engine>(*machine_, mcfg_.maxQuantum);
        governor_ = std::make_unique<machine::CpuFreqGovernor>(
            *machine_, *engine_);
        cat_ = std::make_unique<machine::CatController>(*machine_);

        const auto &lib = workload::BenchmarkLibrary::instance();
        machine::ProcessSpec fg;
        fg.name = "ferret";
        fg.program = &lib.get("ferret").program;
        fg.core = 0;
        fg.foreground = true;
        fgPid_ = machine_->spawnProcess(fg);
        for (unsigned c = 1; c < 6; ++c) {
            machine::ProcessSpec bg;
            bg.name = "bwaves";
            bg.program = &lib.get("bwaves").program;
            bg.core = c;
            bg.foreground = false;
            machine_->spawnProcess(bg);
        }

        ProfilerConfig pcfg;
        pcfg.executions = 1;
        OfflineProfiler profiler(pcfg);
        profile_ = profiler.profileAlone(lib.get("ferret"), mcfg_);
    }

    RuntimeConfig
    runtimeConfig(fault::FaultInjector *faults)
    {
        RuntimeConfig cfg;
        cfg.enableFine = true;
        cfg.enableCoarse = false;
        cfg.runtimeCore = 1;
        cfg.faults = faults;
        return cfg;
    }

    /** A copy of profile_ whose progress axis is scaled by @p s. */
    Profile
    scaledProfile(double s) const
    {
        std::vector<ProfileSegment> segs = profile_.segments();
        for (ProfileSegment &seg : segs)
            seg.progress *= s;
        return Profile(profile_.benchmark(), profile_.samplingPeriod(),
                       std::move(segs));
    }

    machine::MachineConfig mcfg_;
    std::unique_ptr<machine::Machine> machine_;
    std::unique_ptr<sim::Engine> engine_;
    std::unique_ptr<machine::CpuFreqGovernor> governor_;
    std::unique_ptr<machine::CatController> cat_;
    machine::Pid fgPid_ = 0;
    Profile profile_;
};

TEST_F(RuntimeFaultTest, FaultFreeRunSanitizesNothing)
{
    DirigentRuntime runtime(*machine_, *engine_, *governor_, *cat_,
                            runtimeConfig(nullptr));
    runtime.addForeground(fgPid_, &profile_, Time::sec(2.0));
    runtime.start();
    engine_->runUntil(Time::sec(3.0));
    EXPECT_EQ(runtime.sanitizedSamples(), 0u);
    EXPECT_FALSE(runtime.degradedMode(fgPid_));
}

TEST_F(RuntimeFaultTest, GlitchedReadsAreHeldNotForwarded)
{
    fault::FaultPlan plan;
    plan.counters.glitchProb = 0.3;
    plan.counters.glitchScale = 100.0; // wildly implausible values
    fault::FaultInjector faults(plan, 31);
    DirigentRuntime runtime(*machine_, *engine_, *governor_, *cat_,
                            runtimeConfig(&faults));
    runtime.addForeground(fgPid_, &profile_, Time::sec(2.0));
    runtime.start();
    engine_->runUntil(Time::sec(3.0));
    EXPECT_GT(faults.stats().counterGlitches, 0u);
    EXPECT_GT(runtime.sanitizedSamples(), 0u);
    // The predictor kept functioning on the surviving samples.
    EXPECT_GE(runtime.predictor(fgPid_).executionsSeen(), 1u);
}

TEST_F(RuntimeFaultTest, SaturatedCounterDoesNotPoisonThePredictor)
{
    fault::FaultPlan plan;
    plan.counters.saturateProb = 0.2;
    fault::FaultInjector faults(plan, 32);
    DirigentRuntime runtime(*machine_, *engine_, *governor_, *cat_,
                            runtimeConfig(&faults));
    runtime.addForeground(fgPid_, &profile_, Time::sec(2.0));
    runtime.start();
    engine_->runUntil(Time::sec(4.0));
    EXPECT_GT(faults.stats().counterSaturations, 0u);
    EXPECT_GT(runtime.sanitizedSamples(), 0u);
    // A 2^48 - 1 read held at the previous value: the midpoint
    // predictions made from surviving samples stay in a sane range.
    for (const auto &s : runtime.midpointSamples(fgPid_)) {
        EXPECT_GT(s.predictedTotal.sec(), 0.0);
        EXPECT_LT(s.predictedTotal.sec(), 100.0);
    }
}

TEST_F(RuntimeFaultTest, DroppedReadsReadBackAsZeroDeltas)
{
    // A dropped read repeats the previous value; the sanitizer's
    // monotonicity clamp accepts it (zero delta) without counting it
    // as implausible — drops are expected, not poison.
    fault::FaultPlan plan;
    plan.counters.dropProb = 0.3;
    fault::FaultInjector faults(plan, 33);
    DirigentRuntime runtime(*machine_, *engine_, *governor_, *cat_,
                            runtimeConfig(&faults));
    runtime.addForeground(fgPid_, &profile_, Time::sec(2.0));
    runtime.start();
    engine_->runUntil(Time::sec(3.0));
    EXPECT_GT(faults.stats().counterDrops, 0u);
    EXPECT_EQ(runtime.sanitizedSamples(), 0u);
    EXPECT_GE(runtime.predictor(fgPid_).executionsSeen(), 1u);
}

TEST_F(RuntimeFaultTest, StaleProfileTripsDegradedMode)
{
    // The profile claims 3x the progress the FG actually makes per
    // execution: ratio ≈ 0.33, outside the 40% tolerance, for every
    // execution — after mismatchStreak executions the runtime must
    // abandon the profile-driven predictor.
    Profile stale = scaledProfile(3.0);
    DirigentRuntime runtime(*machine_, *engine_, *governor_, *cat_,
                            runtimeConfig(nullptr));
    runtime.addForeground(fgPid_, &stale, Time::sec(2.0));
    runtime.start();
    engine_->runUntil(Time::sec(1.0));
    EXPECT_FALSE(runtime.degradedMode(fgPid_)); // streak not yet full
    engine_->runUntil(Time::sec(10.0));
    EXPECT_TRUE(runtime.degradedMode(fgPid_));
}

TEST_F(RuntimeFaultTest, MatchingProfileNeverDegrades)
{
    DirigentRuntime runtime(*machine_, *engine_, *governor_, *cat_,
                            runtimeConfig(nullptr));
    runtime.addForeground(fgPid_, &profile_, Time::sec(2.0));
    runtime.start();
    engine_->runUntil(Time::sec(10.0));
    EXPECT_FALSE(runtime.degradedMode(fgPid_));
}

TEST_F(RuntimeFaultTest, DegradedModeStillControls)
{
    // Reactive fallback: with a hopeless stale profile and a deadline
    // just above the observed duration, the EMA-driven statuses still
    // reach the fine controller and decisions keep being made.
    Profile stale = scaledProfile(3.0);
    DirigentRuntime runtime(*machine_, *engine_, *governor_, *cat_,
                            runtimeConfig(nullptr));
    runtime.addForeground(fgPid_, &stale, profile_.totalTime() * 1.05);
    runtime.start();
    engine_->runUntil(Time::sec(12.0));
    ASSERT_TRUE(runtime.degradedMode(fgPid_));
    uint64_t decisionsAtDegrade = runtime.fineController().stats().decisions;
    engine_->runUntil(Time::sec(16.0));
    EXPECT_GT(runtime.fineController().stats().decisions,
              decisionsAtDegrade);
}

TEST_F(RuntimeFaultTest, CorruptProfileHelperFeedsDegradedMode)
{
    // End-to-end through the [profile] fault section: corrupt every
    // segment's progress down to near zero and confirm the runtime
    // notices the mismatch on its own.
    fault::ProfileFaults pf;
    pf.corruptProb = 1.0;
    pf.corruptScale = 0.1; // progress scaled into [0, 0.1)
    Profile corrupted = corruptProfile(profile_, pf, Rng(7));
    ASSERT_LT(corrupted.totalProgress(), profile_.totalProgress() * 0.2);

    DirigentRuntime runtime(*machine_, *engine_, *governor_, *cat_,
                            runtimeConfig(nullptr));
    runtime.addForeground(fgPid_, &corrupted, Time::sec(2.0));
    runtime.start();
    engine_->runUntil(Time::sec(10.0));
    EXPECT_TRUE(runtime.degradedMode(fgPid_));
}

} // namespace
} // namespace dirigent::core
