/**
 * @file
 * Tests of the live-machine profilers (the paper's future-work
 * extensions): online profiling with BG paused, and concurrent
 * profiling with interference offsets.
 */

#include <gtest/gtest.h>

#include "dirigent/online_profiler.h"
#include "dirigent/profiler.h"
#include "workload/benchmarks.h"

namespace dirigent::core {
namespace {

class LiveProfilerTest : public testing::Test
{
  protected:
    LiveProfilerTest()
    {
        mcfg_.seed = 31;
        machine_ = std::make_unique<machine::Machine>(mcfg_);
        engine_ =
            std::make_unique<sim::Engine>(*machine_, mcfg_.maxQuantum);
        const auto &lib = workload::BenchmarkLibrary::instance();
        machine::ProcessSpec fg;
        fg.name = "raytrace";
        fg.program = &lib.get("raytrace").program;
        fg.core = 0;
        fg.foreground = true;
        fgPid_ = machine_->spawnProcess(fg);
        for (unsigned c = 1; c < 6; ++c) {
            machine::ProcessSpec bg;
            bg.name = "lbm";
            bg.program = &lib.get("lbm").program;
            bg.core = c;
            bg.foreground = false;
            machine_->spawnProcess(bg);
        }
    }

    ProfilerConfig
    config()
    {
        ProfilerConfig cfg;
        cfg.executions = 2;
        return cfg;
    }

    machine::MachineConfig mcfg_;
    std::unique_ptr<machine::Machine> machine_;
    std::unique_ptr<sim::Engine> engine_;
    machine::Pid fgPid_ = 0;
};

TEST_F(LiveProfilerTest, PausedProfilingMatchesOffline)
{
    // Reference: offline profile on a dedicated machine.
    ProfilerConfig pcfg = config();
    OfflineProfiler offline(pcfg);
    Profile reference = offline.profileAlone(
        workload::BenchmarkLibrary::instance().get("raytrace"), mcfg_);

    LiveProfiler live(*machine_, *engine_, pcfg);
    Profile profile = live.profileWithBgPaused(fgPid_);

    // Totals agree within a few percent (the machine differs only by
    // noise-stream draws and the alignment execution).
    EXPECT_NEAR(profile.totalTime().sec(), reference.totalTime().sec(),
                0.05 * reference.totalTime().sec());
    EXPECT_NEAR(profile.totalProgress(), reference.totalProgress(),
                0.05 * reference.totalProgress());
    EXPECT_EQ(profile.benchmark(), "raytrace");
}

TEST_F(LiveProfilerTest, PausedProfilingResumesBg)
{
    LiveProfiler live(*machine_, *engine_, config());
    live.profileWithBgPaused(fgPid_);
    for (machine::Pid pid : machine_->os().backgroundPids())
        EXPECT_TRUE(machine_->os().process(pid).runnable());
    // BG tasks actually run again afterwards.
    double before = machine_->readCounters(2).instructions;
    engine_->runFor(Time::ms(50.0));
    EXPECT_GT(machine_->readCounters(2).instructions, before);
}

TEST_F(LiveProfilerTest, PausedProfilingLeavesPreviouslyPausedAlone)
{
    machine::Pid alreadyPaused =
        machine_->os().backgroundPids().front();
    machine_->os().pause(alreadyPaused);
    LiveProfiler live(*machine_, *engine_, config());
    live.profileWithBgPaused(fgPid_);
    EXPECT_FALSE(machine_->os().process(alreadyPaused).runnable());
}

TEST_F(LiveProfilerTest, ConcurrentProfilingRemovesVariableOffset)
{
    ProfilerConfig pcfg = config();
    pcfg.executions = 4;
    OfflineProfiler offline(pcfg);
    Profile reference = offline.profileAlone(
        workload::BenchmarkLibrary::instance().get("raytrace"), mcfg_);

    LiveProfiler live(*machine_, *engine_, pcfg);
    Profile concurrent = live.profileConcurrent(fgPid_);

    // Fastest-execution deflation removes the *variable* part of the
    // interference offset: the corrected total sits between the true
    // standalone time and the contended mean, never above it.
    double ref = reference.totalTime().sec();
    double contendedMean = 0.0;
    {
        // Independent estimate of the contended mean on a twin setup.
        machine::Machine twin(mcfg_);
        sim::Engine twinEngine(twin, mcfg_.maxQuantum);
        const auto &lib = workload::BenchmarkLibrary::instance();
        machine::ProcessSpec fg;
        fg.name = "raytrace";
        fg.program = &lib.get("raytrace").program;
        fg.core = 0;
        fg.foreground = true;
        machine::Pid pid = twin.spawnProcess(fg);
        for (unsigned c = 1; c < 6; ++c) {
            machine::ProcessSpec bg;
            bg.name = "lbm";
            bg.program = &lib.get("lbm").program;
            bg.core = c;
            bg.foreground = false;
            twin.spawnProcess(bg);
        }
        double sum = 0.0;
        unsigned count = 0;
        twin.addCompletionListener(
            [&](const machine::CompletionRecord &rec) {
                if (rec.pid == pid) {
                    sum += rec.duration().sec();
                    ++count;
                }
            });
        while (count < 4)
            twinEngine.runFor(Time::ms(100.0));
        contendedMean = sum / double(count);
    }
    EXPECT_GE(concurrent.totalTime().sec(), ref * 0.9);
    EXPECT_LE(concurrent.totalTime().sec(), contendedMean * 1.05);
    // Progress totals are unaffected by deflation.
    EXPECT_NEAR(concurrent.totalProgress(), reference.totalProgress(),
                0.05 * reference.totalProgress());
}

TEST(ScaleProfileTest, ScalesDurationsOnly)
{
    std::vector<ProfileSegment> segs = {{1e6, Time::ms(5.0)},
                                        {2e6, Time::ms(6.0)}};
    Profile p("x", Time::ms(5.0), segs);
    Profile scaled = scaleProfileDurations(p, 0.5);
    EXPECT_DOUBLE_EQ(scaled.totalProgress(), p.totalProgress());
    EXPECT_NEAR(scaled.totalTime().ms(), 5.5, 1e-9);
    EXPECT_EQ(scaled.benchmark(), "x");
}

TEST(ScaleProfileDeathTest, RejectsNonPositiveFactor)
{
    std::vector<ProfileSegment> segs = {{1e6, Time::ms(5.0)}};
    Profile p("x", Time::ms(5.0), segs);
    EXPECT_DEATH(scaleProfileDurations(p, 0.0), "positive");
}

} // namespace
} // namespace dirigent::core
