/**
 * @file
 * Tests of the reactive (non-predictive) controller ablation baseline.
 */

#include <gtest/gtest.h>

#include "dirigent/reactive.h"
#include "machine/actuators.h"
#include "workload/benchmarks.h"

namespace dirigent::core {
namespace {

class ReactiveTest : public testing::Test
{
  protected:
    ReactiveTest()
    {
        mcfg_.seed = 17;
        machine_ = std::make_unique<machine::Machine>(mcfg_);
        engine_ =
            std::make_unique<sim::Engine>(*machine_, mcfg_.maxQuantum);
        governor_ = std::make_unique<machine::CpuFreqGovernor>(
            *machine_, *engine_);
        freq_ = std::make_unique<machine::GovernorFrequencyActuator>(
            *governor_);
        pause_ =
            std::make_unique<machine::OsPauseActuator>(machine_->os());
        const auto &lib = workload::BenchmarkLibrary::instance();
        machine::ProcessSpec fg;
        fg.name = "raytrace";
        fg.program = &lib.get("raytrace").program;
        fg.core = 0;
        fg.foreground = true;
        fgPid_ = machine_->spawnProcess(fg);
        for (unsigned c = 1; c < 6; ++c) {
            machine::ProcessSpec bg;
            bg.name = "lbm";
            bg.program = &lib.get("lbm").program;
            bg.core = c;
            bg.foreground = false;
            machine_->spawnProcess(bg);
        }
    }

    machine::MachineConfig mcfg_;
    std::unique_ptr<machine::Machine> machine_;
    std::unique_ptr<sim::Engine> engine_;
    std::unique_ptr<machine::CpuFreqGovernor> governor_;
    std::unique_ptr<machine::GovernorFrequencyActuator> freq_;
    std::unique_ptr<machine::OsPauseActuator> pause_;
    machine::Pid fgPid_ = 0;
};

TEST_F(ReactiveTest, OneDecisionPerCompletion)
{
    ReactiveController reactive(*machine_, *freq_, *pause_);
    reactive.addForeground(fgPid_, Time::sec(1.0));
    reactive.start();
    engine_->runUntil(Time::sec(3.0)); // ~2–3 raytrace executions
    EXPECT_GE(reactive.decisions(), 2u);
    EXPECT_EQ(reactive.decisions(),
              machine_->os().process(fgPid_).executions);
}

TEST_F(ReactiveTest, ThrottlesAfterMissedDeadline)
{
    // Deadline far below the contended duration: every completion is a
    // miss, so BG cores walk down the ladder execution by execution.
    ReactiveController reactive(*machine_, *freq_, *pause_);
    reactive.addForeground(fgPid_, Time::sec(0.5));
    reactive.start();
    engine_->runUntil(Time::sec(6.0));
    ASSERT_GE(reactive.decisions(), 4u);
    for (unsigned c = 1; c < 6; ++c)
        EXPECT_LT(governor_->grade(c), 8u);
}

TEST_F(ReactiveTest, ReleasesWhenComfortablyEarly)
{
    // Impossible-to-miss deadline: the controller gives everything
    // back (and ends up throttling the FG itself).
    ReactiveController reactive(*machine_, *freq_, *pause_);
    reactive.addForeground(fgPid_, Time::sec(10.0));
    reactive.start();
    engine_->runUntil(Time::sec(5.0));
    for (unsigned c = 1; c < 6; ++c)
        EXPECT_EQ(governor_->grade(c), 8u);
    EXPECT_LT(governor_->grade(0), 8u);
}

TEST_F(ReactiveTest, ReactsOneExecutionLate)
{
    // The defining handicap: no mid-execution action. During the first
    // execution nothing changes regardless of the deadline.
    ReactiveController reactive(*machine_, *freq_, *pause_);
    reactive.addForeground(fgPid_, Time::sec(0.2));
    reactive.start();
    engine_->runUntil(Time::ms(400.0)); // inside the first execution
    EXPECT_EQ(reactive.decisions(), 0u);
    for (unsigned c = 1; c < 6; ++c)
        EXPECT_EQ(governor_->grade(c), 8u);
}

TEST_F(ReactiveTest, StopDetaches)
{
    ReactiveController reactive(*machine_, *freq_, *pause_);
    reactive.addForeground(fgPid_, Time::sec(0.5));
    reactive.start();
    engine_->runUntil(Time::sec(2.0));
    uint64_t decisions = reactive.decisions();
    reactive.stop();
    engine_->runUntil(Time::sec(4.0));
    EXPECT_EQ(reactive.decisions(), decisions);
}

TEST_F(ReactiveTest, Validation)
{
    ReactiveController reactive(*machine_, *freq_, *pause_);
    EXPECT_DEATH(reactive.start(), "no foreground");
    EXPECT_DEATH(reactive.addForeground(fgPid_, Time()), "deadline");
    machine::Pid bgPid = machine_->os().backgroundPids().front();
    EXPECT_DEATH(reactive.addForeground(bgPid, Time::sec(1.0)),
                 "foreground");
}

} // namespace
} // namespace dirigent::core
