/**
 * @file
 * Tests of the fine-grain controller's action ladder: ahead → release
 * resources, behind → reclaim them, pause escalation, multi-FG policy.
 */

#include <gtest/gtest.h>

#include "dirigent/fine_controller.h"
#include "machine/actuators.h"
#include "workload/benchmarks.h"

namespace dirigent::core {
namespace {

class FineControllerTest : public testing::Test
{
  protected:
    FineControllerTest()
        : machine_(makeConfig()), engine_(machine_, Time::us(100.0)),
          governor_(machine_, engine_)
    {
        const auto &lib = workload::BenchmarkLibrary::instance();
        // 1 FG on core 0, 5 BG on cores 1–5.
        machine::ProcessSpec fg;
        fg.name = "fg";
        fg.program = &lib.get("ferret").program;
        fg.core = 0;
        fg.foreground = true;
        fgPid_ = machine_.spawnProcess(fg);
        for (unsigned c = 1; c < 6; ++c) {
            machine::ProcessSpec bg;
            bg.name = "bg";
            bg.program = &lib.get("lbm").program;
            bg.core = c;
            bg.foreground = false;
            bgPids_.push_back(machine_.spawnProcess(bg));
        }
        controller_ = std::make_unique<FineGrainController>(
            machine_, freq_, pause_, FineControllerConfig{});
    }

    static machine::MachineConfig
    makeConfig()
    {
        machine::MachineConfig cfg;
        cfg.noiseEventsPerSec = 0.0;
        return cfg;
    }

    FineGrainController::FgStatus
    status(double predictedSec, double deadlineSec = 1.0)
    {
        FineGrainController::FgStatus st;
        st.pid = fgPid_;
        st.core = 0;
        st.predicted = Time::sec(predictedSec);
        st.deadline = Time::sec(deadlineSec);
        st.valid = true;
        return st;
    }

    /** Let pending DVFS transitions land. */
    void settle() { engine_.runFor(Time::ms(1.0)); }

    unsigned
    runningBgCount() const
    {
        unsigned n = 0;
        for (machine::Pid pid : bgPids_)
            if (machine_.os().process(pid).runnable())
                ++n;
        return n;
    }

    machine::Machine machine_;
    sim::Engine engine_;
    machine::CpuFreqGovernor governor_;
    machine::GovernorFrequencyActuator freq_{governor_};
    machine::OsPauseActuator pause_{machine_.os()};
    std::unique_ptr<FineGrainController> controller_;
    machine::Pid fgPid_ = 0;
    std::vector<machine::Pid> bgPids_;
};

TEST_F(FineControllerTest, LadderIsFiveEquispacedGrades)
{
    EXPECT_EQ(controller_->ladder(),
              (std::vector<unsigned>{0, 2, 4, 6, 8}));
    auto freqs = controller_->ladderFreqs();
    ASSERT_EQ(freqs.size(), 5u);
    EXPECT_NEAR(freqs[0].ghz(), 1.2, 1e-9);
    EXPECT_NEAR(freqs[4].ghz(), 2.0, 1e-9);
}

TEST_F(FineControllerTest, NeutralBandTakesNoAction)
{
    // Predicted within [setpoint·0.98, setpoint]: nothing changes.
    controller_->tick({status(0.975)});
    settle();
    EXPECT_EQ(governor_.grade(1), 8u);
    EXPECT_EQ(runningBgCount(), 5u);
    EXPECT_EQ(controller_->stats().fgThrottles, 0u);
}

TEST_F(FineControllerTest, BehindSpeedsUpFgFirst)
{
    // Put the FG below max first.
    controller_->tick({status(0.5)}); // ahead: BG at max → FG throttled
    settle();
    EXPECT_EQ(governor_.grade(0), 6u);
    EXPECT_EQ(controller_->stats().fgThrottles, 1u);

    controller_->tick({status(1.05)}); // behind
    settle();
    EXPECT_EQ(governor_.grade(0), 8u); // FG back to max
    EXPECT_EQ(governor_.grade(1), 8u); // BG untouched this decision
}

TEST_F(FineControllerTest, BehindThrottlesBgWhenFgAtMax)
{
    controller_->tick({status(1.05)});
    settle();
    for (unsigned c = 1; c < 6; ++c)
        EXPECT_EQ(governor_.grade(c), 6u); // one ladder step down
    EXPECT_EQ(controller_->stats().bgThrottles, 1u);
}

TEST_F(FineControllerTest, BgBottomsOutAtMinimum)
{
    for (int i = 0; i < 10; ++i)
        controller_->tick({status(1.05)});
    settle();
    for (unsigned c = 1; c < 6; ++c)
        EXPECT_EQ(governor_.grade(c), 0u);
    // Not behind enough to pause (< 10%).
    EXPECT_EQ(runningBgCount(), 5u);
}

TEST_F(FineControllerTest, DeepBehindPausesMostIntrusive)
{
    // Drive BG to minimum first.
    for (int i = 0; i < 5; ++i)
        controller_->tick({status(1.05)});
    // Make BG core 3 the most intrusive since the last scan.
    machine_.core(3).counters().addLlcTraffic(1e6, 1e6);
    controller_->tick({status(1.2)}); // > 10% behind
    EXPECT_EQ(runningBgCount(), 4u);
    EXPECT_FALSE(machine_.os().process(bgPids_[2]).runnable());
    EXPECT_EQ(controller_->stats().pauses, 1u);
}

TEST_F(FineControllerTest, AheadResumesPausedFirst)
{
    for (int i = 0; i < 5; ++i)
        controller_->tick({status(1.05)});
    controller_->tick({status(1.2)});
    ASSERT_EQ(runningBgCount(), 4u);

    controller_->tick({status(0.8)}); // ahead: resume before boosting
    EXPECT_EQ(runningBgCount(), 5u);
    EXPECT_EQ(controller_->stats().resumes, 1u);
    settle();
    EXPECT_EQ(governor_.grade(1), 0u); // still throttled
}

TEST_F(FineControllerTest, AheadBoostsThrottledBg)
{
    controller_->tick({status(1.05)}); // BG down one step
    controller_->tick({status(0.8)});  // ahead: BG back up
    settle();
    for (unsigned c = 1; c < 6; ++c)
        EXPECT_EQ(governor_.grade(c), 8u);
    EXPECT_EQ(controller_->stats().bgBoosts, 1u);
}

TEST_F(FineControllerTest, AheadWithEverythingMaxThrottlesFg)
{
    controller_->tick({status(0.8)});
    settle();
    EXPECT_EQ(governor_.grade(0), 6u);
    // Repeated slack keeps stepping the FG down to the minimum.
    for (int i = 0; i < 10; ++i)
        controller_->tick({status(0.8)});
    settle();
    EXPECT_EQ(governor_.grade(0), 0u);
}

TEST_F(FineControllerTest, InvalidPredictionsIgnored)
{
    auto st = status(2.0);
    st.valid = false;
    controller_->tick({st});
    settle();
    EXPECT_EQ(governor_.grade(1), 8u);
    EXPECT_EQ(runningBgCount(), 5u);
}

TEST_F(FineControllerTest, StatsTrackResidency)
{
    controller_->tick({status(0.97)});
    controller_->tick({status(0.97)});
    const auto &stats = controller_->stats();
    EXPECT_EQ(stats.decisions, 2u);
    // 5 BG cores × 2 decisions at max grade (ladder position 4).
    EXPECT_EQ(stats.bgGradeResidency[4], 10u);
}

TEST_F(FineControllerTest, ThrottleSeverityDrains)
{
    controller_->tick({status(0.99)}); // all BG at max: severity 0
    EXPECT_DOUBLE_EQ(controller_->drainThrottleSeverity(), 0.0);

    for (int i = 0; i < 8; ++i)
        controller_->tick({status(1.05)}); // drive BG to min
    double severity = controller_->drainThrottleSeverity();
    EXPECT_GT(severity, 0.5);
    // Drained: next query over an empty window is 0.
    EXPECT_DOUBLE_EQ(controller_->drainThrottleSeverity(), 0.0);
}

TEST_F(FineControllerTest, ReleaseAllRestoresEverything)
{
    for (int i = 0; i < 6; ++i)
        controller_->tick({status(1.2)});
    controller_->releaseAll();
    settle();
    EXPECT_EQ(runningBgCount(), 5u);
    for (unsigned c = 1; c < 6; ++c)
        EXPECT_EQ(governor_.grade(c), 8u);
}

/** Multi-FG: two FG processes with opposite tendencies. */
class MultiFgControllerTest : public testing::Test
{
  protected:
    MultiFgControllerTest()
        : machine_(makeConfig()), engine_(machine_, Time::us(100.0)),
          governor_(machine_, engine_)
    {
        const auto &lib = workload::BenchmarkLibrary::instance();
        for (unsigned c = 0; c < 2; ++c) {
            machine::ProcessSpec fg;
            fg.name = "fg";
            fg.program = &lib.get("ferret").program;
            fg.core = c;
            fg.foreground = true;
            fgPids_.push_back(machine_.spawnProcess(fg));
        }
        for (unsigned c = 2; c < 6; ++c) {
            machine::ProcessSpec bg;
            bg.name = "bg";
            bg.program = &lib.get("lbm").program;
            bg.core = c;
            bg.foreground = false;
            machine_.spawnProcess(bg);
        }
        controller_ = std::make_unique<FineGrainController>(
            machine_, freq_, pause_, FineControllerConfig{});
    }

    static machine::MachineConfig
    makeConfig()
    {
        machine::MachineConfig cfg;
        cfg.noiseEventsPerSec = 0.0;
        return cfg;
    }

    FineGrainController::FgStatus
    status(machine::Pid pid, unsigned core, double predicted)
    {
        FineGrainController::FgStatus st;
        st.pid = pid;
        st.core = core;
        st.predicted = Time::sec(predicted);
        st.deadline = Time::sec(1.0);
        st.valid = true;
        return st;
    }

    machine::Machine machine_;
    sim::Engine engine_;
    machine::CpuFreqGovernor governor_;
    machine::GovernorFrequencyActuator freq_{governor_};
    machine::OsPauseActuator pause_{machine_.os()};
    std::unique_ptr<FineGrainController> controller_;
    std::vector<machine::Pid> fgPids_;
};

TEST_F(MultiFgControllerTest, BgFollowsSlowestFg)
{
    // FG0 comfortably ahead, FG1 behind: BG must be throttled (slowest
    // rules) and FG0 individually slowed.
    controller_->tick({status(fgPids_[0], 0, 0.7),
                       status(fgPids_[1], 1, 1.1)});
    engine_.runFor(Time::ms(1.0));
    for (unsigned c = 2; c < 6; ++c)
        EXPECT_EQ(governor_.grade(c), 6u); // throttled for FG1
    EXPECT_EQ(governor_.grade(0), 6u);     // FG0 individually slowed
    EXPECT_EQ(governor_.grade(1), 8u);     // FG1 stays at max
}

TEST_F(MultiFgControllerTest, AllAheadReleasesResources)
{
    controller_->tick({status(fgPids_[0], 0, 1.1),
                       status(fgPids_[1], 1, 1.1)});
    engine_.runFor(Time::ms(1.0));
    ASSERT_EQ(governor_.grade(2), 6u);

    controller_->tick({status(fgPids_[0], 0, 0.7),
                       status(fgPids_[1], 1, 0.7)});
    engine_.runFor(Time::ms(1.0));
    for (unsigned c = 2; c < 6; ++c)
        EXPECT_EQ(governor_.grade(c), 8u); // boosted back
}

TEST_F(MultiFgControllerTest, LaggingNonSlowestGetsMaxFreq)
{
    // Slow FG0 down first.
    controller_->tick({status(fgPids_[0], 0, 0.5),
                       status(fgPids_[1], 1, 0.9)});
    engine_.runFor(Time::ms(1.0));
    ASSERT_EQ(governor_.grade(0), 6u);

    // Now FG0 lags but FG1 lags more: FG0 must still be restored.
    controller_->tick({status(fgPids_[0], 0, 1.05),
                       status(fgPids_[1], 1, 1.2)});
    engine_.runFor(Time::ms(1.0));
    EXPECT_EQ(governor_.grade(0), 8u);
    EXPECT_EQ(governor_.grade(1), 8u);
}

} // namespace
} // namespace dirigent::core
