/**
 * @file
 * Tests of the offline profiler: segment structure, totals consistency,
 * determinism, and the averaged multi-execution record.
 */

#include <gtest/gtest.h>

#include "dirigent/profiler.h"
#include "workload/benchmarks.h"

namespace dirigent::core {
namespace {

machine::MachineConfig
machineConfig()
{
    machine::MachineConfig cfg;
    cfg.seed = 5;
    return cfg;
}

TEST(ProfilerTest, ProfileStructureMatchesPaper)
{
    // ΔT = 5 ms gives 100+ segments for every FG task (paper §4.2).
    ProfilerConfig pcfg;
    pcfg.executions = 1;
    OfflineProfiler profiler(pcfg);
    const auto &bench =
        workload::BenchmarkLibrary::instance().get("ferret");
    Profile profile = profiler.profileAlone(bench, machineConfig());

    EXPECT_EQ(profile.benchmark(), "ferret");
    EXPECT_GE(profile.size(), 100u);
    // Total progress ≈ the program's instruction count (±jitter).
    EXPECT_NEAR(profile.totalProgress(),
                bench.program.totalInstructions(),
                0.1 * bench.program.totalInstructions());
    // Standalone ferret takes ≈1 s on this machine.
    EXPECT_GT(profile.totalTime().sec(), 0.5);
    EXPECT_LT(profile.totalTime().sec(), 2.0);
}

TEST(ProfilerTest, SegmentDurationsNearPeriod)
{
    ProfilerConfig pcfg;
    pcfg.executions = 1;
    OfflineProfiler profiler(pcfg);
    const auto &bench =
        workload::BenchmarkLibrary::instance().get("raytrace");
    Profile profile = profiler.profileAlone(bench, machineConfig());
    // All but the final partial segment last ≈ ΔT (plus small timer
    // overshoot).
    for (size_t i = 0; i + 1 < profile.size(); ++i) {
        EXPECT_GT(profile.segments()[i].duration.ms(), 4.5);
        EXPECT_LT(profile.segments()[i].duration.ms(), 6.5);
    }
}

TEST(ProfilerTest, ProgressVariesAcrossSegments)
{
    // The paper: progress differs between segments because of phase
    // behaviour, even at constant sampling frequency.
    ProfilerConfig pcfg;
    pcfg.executions = 1;
    OfflineProfiler profiler(pcfg);
    const auto &bench =
        workload::BenchmarkLibrary::instance().get("streamcluster");
    Profile profile = profiler.profileAlone(bench, machineConfig());
    double lo = 1e18, hi = 0.0;
    for (size_t i = 0; i + 1 < profile.size(); ++i) {
        lo = std::min(lo, profile.segments()[i].progress);
        hi = std::max(hi, profile.segments()[i].progress);
    }
    EXPECT_GT(hi / lo, 1.1);
}

TEST(ProfilerTest, DeterministicForSameSeed)
{
    ProfilerConfig pcfg;
    pcfg.executions = 1;
    OfflineProfiler p1(pcfg), p2(pcfg);
    const auto &bench =
        workload::BenchmarkLibrary::instance().get("fluidanimate");
    Profile a = p1.profileAlone(bench, machineConfig());
    Profile b = p2.profileAlone(bench, machineConfig());
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_DOUBLE_EQ(a.segments()[i].progress,
                         b.segments()[i].progress);
}

TEST(ProfilerTest, MultiExecutionAveraging)
{
    ProfilerConfig pcfg;
    pcfg.executions = 3;
    OfflineProfiler profiler(pcfg);
    const auto &bench =
        workload::BenchmarkLibrary::instance().get("bodytrack");
    Profile profile = profiler.profileAlone(bench, machineConfig());
    EXPECT_GE(profile.size(), 100u);
    EXPECT_NEAR(profile.totalProgress(),
                bench.program.totalInstructions(),
                0.1 * bench.program.totalInstructions());
}

TEST(ProfilerDeathTest, LoopingProgramPanics)
{
    OfflineProfiler profiler;
    const auto &bench = workload::BenchmarkLibrary::instance().get("lbm");
    EXPECT_DEATH(profiler.profileAlone(bench, machineConfig()),
                 "looping");
}

} // namespace
} // namespace dirigent::core
