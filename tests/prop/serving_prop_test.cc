/**
 * @file
 * Property tests for the arrival-process layer: across randomly drawn
 * spec parameters, the empirical long-run rate of every generator must
 * match its analytic mean rate (ArrivalSpec::meanRate), and rescaling
 * via scaledToRate must actually deliver the requested rate while
 * preserving the MMPP burst structure. Failures print the spec
 * parameters, so a bad draw reproduces directly.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/random.h"
#include "serve/arrival.h"

namespace dirigent::prop {
namespace {

using serve::ArrivalKind;
using serve::ArrivalSpec;

std::string
describe(const ArrivalSpec &spec)
{
    return "kind=" + std::string(serve::arrivalKindName(spec.kind)) +
           " rate=" + std::to_string(spec.rate) +
           " burst_rate=" + std::to_string(spec.burstRate) +
           " dwell=" + std::to_string(spec.dwellSec) +
           " burst_dwell=" + std::to_string(spec.burstDwellSec);
}

/** Empirical rate over @p samples arrivals from a fresh process. */
double
empiricalRate(const ArrivalSpec &spec, uint64_t seed, size_t samples)
{
    auto process = serve::makeArrivalProcess(spec, seed);
    Time last = Time::sec(0.0);
    for (size_t i = 0; i < samples; ++i)
        last = process->next();
    return double(samples) / last.sec();
}

ArrivalSpec
genMmppSpec(Rng &rng)
{
    ArrivalSpec spec;
    spec.kind = ArrivalKind::Mmpp;
    spec.rate = rng.uniform(0.5, 4.0);
    spec.burstRate = spec.rate * rng.uniform(2.0, 10.0);
    spec.dwellSec = rng.uniform(2.0, 20.0);
    spec.burstDwellSec = rng.uniform(0.5, 5.0);
    return spec;
}

TEST(ServingPropTest, MmppLongRunRateMatchesAnalyticMean)
{
    Rng rng(0xA221'7A1E);
    for (int trial = 0; trial < 12; ++trial) {
        ArrivalSpec spec = genMmppSpec(rng);
        SCOPED_TRACE("trial " + std::to_string(trial) + ": " +
                     describe(spec));
        double mean = spec.meanRate();
        ASSERT_TRUE(std::isfinite(mean));
        // Long-run average over many dwell cycles: the two-state
        // modulation must wash out to the dwell-weighted mean.
        double observed =
            empiricalRate(spec, rng.next(), 60000);
        EXPECT_NEAR(observed, mean, 0.08 * mean);
    }
}

TEST(ServingPropTest, PoissonAndDiurnalMatchAnalyticMean)
{
    Rng rng(0xD1E55EA1);
    for (int trial = 0; trial < 8; ++trial) {
        ArrivalSpec poisson;
        poisson.rate = rng.uniform(0.5, 8.0);
        SCOPED_TRACE("poisson trial " + std::to_string(trial) + ": " +
                     describe(poisson));
        EXPECT_NEAR(empiricalRate(poisson, rng.next(), 40000),
                    poisson.meanRate(), 0.05 * poisson.meanRate());

        ArrivalSpec diurnal;
        diurnal.kind = ArrivalKind::Diurnal;
        diurnal.rate = rng.uniform(0.5, 8.0);
        diurnal.periodSec = rng.uniform(5.0, 60.0);
        diurnal.amplitude = rng.uniform(0.0, 0.9);
        SCOPED_TRACE("diurnal trial " + std::to_string(trial));
        EXPECT_NEAR(empiricalRate(diurnal, rng.next(), 40000),
                    diurnal.meanRate(), 0.06 * diurnal.meanRate());
    }
}

TEST(ServingPropTest, ScaledToRateDeliversTargetAndKeepsShape)
{
    Rng rng(0x5CA1'ED);
    for (int trial = 0; trial < 12; ++trial) {
        ArrivalSpec spec = genMmppSpec(rng);
        double target = rng.uniform(0.25, 6.0);
        ArrivalSpec scaled = serve::scaledToRate(spec, target);
        SCOPED_TRACE("trial " + std::to_string(trial) + ": " +
                     describe(spec) + " -> " +
                     std::to_string(target));
        // Analytic mean hits the target exactly.
        EXPECT_NEAR(scaled.meanRate(), target, 1e-9);
        // Burstiness (burst/base ratio) and dwell structure survive.
        EXPECT_NEAR(scaled.burstRate / scaled.rate,
                    spec.burstRate / spec.rate, 1e-9);
        EXPECT_DOUBLE_EQ(scaled.dwellSec, spec.dwellSec);
        EXPECT_DOUBLE_EQ(scaled.burstDwellSec, spec.burstDwellSec);
        // And the generator actually delivers it.
        EXPECT_NEAR(empiricalRate(scaled, rng.next(), 60000),
                    target, 0.08 * target);
    }
}

} // namespace
} // namespace dirigent::prop
