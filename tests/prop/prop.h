/**
 * @file
 * A small seeded property-testing harness: generators for workload
 * phases, programs, mixes, and harness configurations, plus forAll()
 * with greedy shrinking. Everything is driven by the simulator's own
 * deterministic Rng, so a failing case is reproducible from the seed
 * printed in the failure message.
 */

#ifndef DIRIGENT_TESTS_PROP_PROP_H
#define DIRIGENT_TESTS_PROP_PROP_H

#include <gtest/gtest.h>

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "harness/experiment.h"
#include "workload/benchmarks.h"
#include "workload/mix.h"
#include "workload/phase.h"

namespace dirigent::prop {

/** A random but always-valid workload phase. */
inline workload::Phase
genPhase(Rng &rng)
{
    workload::Phase phase;
    phase.instructions = rng.uniform(1e7, 2e9);
    phase.instrJitterSigma = rng.chance(0.5) ? rng.uniform(0.0, 0.05) : 0.0;
    phase.cpiBase = rng.uniform(0.4, 2.5);
    phase.llcApki = rng.uniform(0.5, 40.0);
    phase.workingSet = rng.uniform(64.0 * 1024, 16.0 * 1024 * 1024);
    phase.locality = rng.uniform(0.5, 6.0);
    phase.maxHitRatio = rng.uniform(0.5, 1.0);
    phase.cpiJitterSigma = rng.chance(0.5) ? rng.uniform(0.0, 0.05) : 0.0;
    phase.mlp = rng.uniform(1.0, 8.0);
    return phase;
}

/** A random multi-phase program (1–5 phases). */
inline workload::PhaseProgram
genProgram(Rng &rng, bool loop = false)
{
    workload::PhaseProgram prog;
    prog.name = "gen";
    prog.loop = loop;
    size_t phases = 1 + rng.below(5);
    for (size_t i = 0; i < phases; ++i) {
        workload::Phase phase = genPhase(rng);
        phase.name = "phase-" + std::to_string(i);
        prog.phases.push_back(std::move(phase));
    }
    return prog;
}

/** A random single- or rotate-BG mix over the built-in benchmarks. */
inline workload::WorkloadMix
genMix(Rng &rng)
{
    const auto &lib = workload::BenchmarkLibrary::instance();
    std::vector<std::string> fgNames = lib.foregroundNames();
    std::vector<std::string> fg = {fgNames[rng.below(fgNames.size())]};
    workload::BgSpec bg;
    if (rng.chance(0.5)) {
        std::vector<std::string> bgs = lib.singleBgNames();
        bg = workload::BgSpec::single(bgs[rng.below(bgs.size())]);
    } else {
        auto pairs = lib.rotatePairs();
        auto &[a, b] = pairs[rng.below(pairs.size())];
        bg = workload::BgSpec::rotate(a, b);
    }
    return workload::makeMix(std::move(fg), std::move(bg));
}

/** A random fast harness configuration (small but realistic). */
inline harness::HarnessConfig
genConfig(Rng &rng)
{
    harness::HarnessConfig cfg;
    cfg.executions = 4 + unsigned(rng.below(5));
    cfg.warmup = 1 + unsigned(rng.below(2));
    cfg.seed = rng.next();
    cfg.runtime.samplingPeriod = Time::ms(rng.uniform(4.0, 20.0));
    cfg.profiler.samplingPeriod = cfg.runtime.samplingPeriod;
    return cfg;
}

/**
 * Property check result: nullopt = holds, otherwise a human-readable
 * reason for the failure.
 */
template <typename T>
using Check = std::function<std::optional<std::string>(const T &)>;

/** Proposes smaller variants of a failing case (may be empty). */
template <typename T>
using Shrink = std::function<std::vector<T>(const T &)>;

/** Renders a case for the failure message. */
template <typename T>
using Show = std::function<std::string(const T &)>;

/**
 * Run @p check against @p rounds cases drawn from @p gen. On failure,
 * greedily shrink with @p shrink (first still-failing candidate wins,
 * repeated until fixpoint or a step cap) and report the minimal case
 * through GTest. Deterministic in @p seed.
 */
template <typename T>
void
forAll(uint64_t seed, int rounds, std::function<T(Rng &)> gen,
       Check<T> check, Shrink<T> shrink = nullptr, Show<T> show = nullptr)
{
    Rng rng(seed);
    for (int round = 0; round < rounds; ++round) {
        T value = gen(rng);
        std::optional<std::string> reason = check(value);
        if (!reason)
            continue;
        int steps = 0;
        if (shrink) {
            bool shrunk = true;
            while (shrunk && steps < 200) {
                shrunk = false;
                for (T &candidate : shrink(value)) {
                    ++steps;
                    if (auto r = check(candidate)) {
                        value = std::move(candidate);
                        reason = std::move(r);
                        shrunk = true;
                        break;
                    }
                }
            }
        }
        ADD_FAILURE() << "property failed (seed " << seed << ", round "
                      << round << ", " << steps << " shrink steps): "
                      << *reason
                      << (show ? "\ncase: " + show(value) : std::string());
        return;
    }
}

} // namespace dirigent::prop

#endif // DIRIGENT_TESTS_PROP_PROP_H
