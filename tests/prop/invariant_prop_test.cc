/**
 * @file
 * Property tests of the invariant layer itself: random workloads,
 * random control actions, and harness-level runs must all stay free
 * of invariant violations. A failure here means either the model
 * broke an invariant or the checker grew a false positive — both are
 * bugs worth a loud report.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "check/check.h"
#include "check/invariants.h"
#include "machine/cat.h"
#include "machine/cpufreq.h"
#include "machine/machine.h"
#include "prop/prop.h"
#include "sim/engine.h"
#include "workload/benchmarks.h"

namespace dirigent::prop {
namespace {

check::CheckerConfig
collectMode()
{
    check::CheckerConfig cfg;
    cfg.abortOnViolation = false;
    return cfg;
}

std::string
describeViolations(const check::InvariantChecker &checker)
{
    std::ostringstream out;
    for (const auto &v : checker.violations())
        out << v.rule << " at t=" << v.when.sec() << ": " << v.detail
            << "\n";
    return out.str();
}

/** A random machine population: FG and BG processes on random cores. */
struct RandomRig
{
    machine::Machine machine;
    sim::Engine engine;
    std::vector<machine::Pid> pids;

    explicit RandomRig(Rng &rng)
        : machine([&rng] {
              machine::MachineConfig cfg;
              cfg.seed = rng.next();
              return cfg;
          }()),
          engine(machine, machine.config().maxQuantum)
    {
        const auto &lib = workload::BenchmarkLibrary::instance();
        std::vector<std::string> fgs = lib.foregroundNames();
        std::vector<std::string> bgs = lib.singleBgNames();
        unsigned cores = machine.numCores();
        for (unsigned c = 0; c < cores; ++c) {
            if (rng.chance(0.2))
                continue; // leave some cores idle
            machine::ProcessSpec spec;
            spec.foreground = c == 0;
            spec.name = spec.foreground ? "fg" : "bg";
            const std::string &name =
                spec.foreground ? fgs[rng.below(fgs.size())]
                                : bgs[rng.below(bgs.size())];
            spec.program = &lib.get(name).program;
            spec.core = c;
            pids.push_back(machine.spawnProcess(spec));
        }
    }
};

// Property: any random population of the machine runs without
// tripping a single invariant.
TEST(InvariantPropTest, RandomWorkloadsRunClean)
{
    forAll<uint64_t>(
        4001, 6, [](Rng &rng) { return rng.next(); },
        [](const uint64_t &seed) -> std::optional<std::string> {
            Rng rng(seed);
            RandomRig rig(rng);
            check::InvariantChecker checker(rig.machine, &rig.engine,
                                            collectMode());
            rig.engine.addObserver(&checker);
            rig.engine.runFor(Time::ms(40.0));
            if (!checker.violations().empty())
                return describeViolations(checker);
            if (checker.quantaChecked() == 0)
                return "checker observed no quanta";
            return std::nullopt;
        });
}

// Property: random sequences of control actions — DVFS grade changes,
// pauses/resumes, bandwidth budgets, cache partitions — never drive
// the machine into an invariant-violating state.
TEST(InvariantPropTest, RandomControlActionsStayClean)
{
    forAll<uint64_t>(
        4002, 4, [](Rng &rng) { return rng.next(); },
        [](const uint64_t &seed) -> std::optional<std::string> {
            Rng rng(seed);
            RandomRig rig(rng);
            if (rig.pids.empty())
                return std::nullopt; // nothing to control
            machine::CpuFreqGovernor governor(rig.machine, rig.engine);
            machine::CatController cat(rig.machine);
            check::InvariantChecker checker(rig.machine, &rig.engine,
                                            collectMode());
            checker.attachGovernor(&governor);
            rig.engine.addObserver(&checker);

            // Schedule ~30 random control actions over 40 ms.
            for (int i = 0; i < 30; ++i) {
                Time when = Time::ms(rng.uniform(0.0, 40.0));
                unsigned kind = unsigned(rng.below(4));
                machine::Pid pid =
                    rig.pids[rng.below(rig.pids.size())];
                unsigned core =
                    unsigned(rng.below(rig.machine.numCores()));
                unsigned grade =
                    unsigned(rng.below(governor.numGrades()));
                unsigned ways = 1 + unsigned(rng.below(
                                        cat.numWays() - 1));
                double budget = rng.uniform(0.2e9, 4e9);
                rig.engine.at(when, [&, kind, pid, core, grade, ways,
                                     budget] {
                    switch (kind) {
                      case 0:
                        governor.setGrade(core, grade);
                        break;
                      case 1:
                        if (rng.chance(0.5))
                            rig.machine.os().pause(pid);
                        else
                            rig.machine.os().resume(pid);
                        break;
                      case 2:
                        rig.machine.bwGuard().setBudget(core, budget);
                        break;
                      default:
                        cat.setFgWays(ways);
                        break;
                    }
                });
            }
            rig.engine.runFor(Time::ms(50.0));
            if (!checker.violations().empty())
                return describeViolations(checker);
            return std::nullopt;
        });
}

// Property: a full harness run (profiling, calibration, the Dirigent
// runtime with its predictor custom check) passes with the checker in
// abort mode — the real CI wiring, end to end.
TEST(InvariantPropTest, HarnessRunCleanUnderChecker)
{
    check::setEnabled(true);
    forAll<workload::WorkloadMix>(
        4003, 2, [](Rng &rng) { return genMix(rng); },
        [](const workload::WorkloadMix &mix)
            -> std::optional<std::string> {
            harness::HarnessConfig cfg;
            cfg.executions = 6;
            cfg.warmup = 1;
            cfg.seed = 31;
            harness::ExperimentRunner runner(cfg);
            auto baseline = runner.run(mix, core::Scheme::Baseline, {});
            auto deadlines = runner.deadlinesFromBaseline(baseline);
            runner.run(mix, core::Scheme::Dirigent, deadlines);
            return std::nullopt; // a violation would have panicked
        },
        nullptr,
        [](const workload::WorkloadMix &mix) { return mix.name; });
    check::clearOverride();
}

} // namespace
} // namespace dirigent::prop
