/**
 * @file
 * Cluster-layer property tests.
 *
 * 1. JSQ dominance: under a uniform homogeneous fleet, join-shortest-
 *    queue never yields a higher modeled p99 response time than
 *    round-robin, across randomly drawn fleet sizes, loads, and seeds
 *    — and in a full simulated cluster cell the same ordering holds.
 * 2. Conservation: every request the cluster-level arrival process
 *    generates lands on exactly one node under any seeded policy —
 *    admitted + dropped + shed across nodes accounts for every
 *    arrival, at the dispatch layer and through a full simulation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>
#include <vector>

#include "cluster/dispatcher.h"
#include "cluster/spec.h"
#include "common/random.h"
#include "exec/executor.h"
#include "serve/arrival.h"

namespace dirigent::prop {
namespace {

using cluster::DispatchPolicy;

std::vector<cluster::NodeModel>
uniformFleet(size_t nodes, double serviceSec)
{
    cluster::NodeModel model;
    model.serviceEstimateSec = serviceSec;
    return std::vector<cluster::NodeModel>(nodes, model);
}

/**
 * Route @p arrivals through @p policy over a homogeneous fleet and
 * return the modeled response time of every request (wait behind the
 * node's backlog plus its own service), mirroring NodeLoadModel's
 * single-logical-server semantics.
 */
std::vector<double>
modeledResponses(DispatchPolicy policy, size_t nodes,
                 double serviceSec, const std::vector<Time> &arrivals,
                 uint64_t seed)
{
    auto dispatcher = cluster::makeDispatcher(
        policy, uniformFleet(nodes, serviceSec), seed);
    std::vector<double> backlogEnd(nodes, 0.0);
    std::vector<double> responses;
    responses.reserve(arrivals.size());
    for (Time t : arrivals) {
        unsigned node = dispatcher->route(t);
        double start = std::max(t.sec(), backlogEnd[node]);
        backlogEnd[node] = start + serviceSec;
        responses.push_back(backlogEnd[node] - t.sec());
    }
    return responses;
}

double
p99(std::vector<double> samples)
{
    std::sort(samples.begin(), samples.end());
    double idx = 0.99 * double(samples.size() - 1);
    size_t lo = size_t(idx);
    size_t hi = std::min(lo + 1, samples.size() - 1);
    double frac = idx - double(lo);
    return samples[lo] + frac * (samples[hi] - samples[lo]);
}

TEST(ClusterPropTest, JsqModeledP99NeverExceedsRoundRobin)
{
    Rng rng(0xC1057E57);
    for (int trial = 0; trial < 24; ++trial) {
        size_t nodes = 2 + rng.below(7);
        double serviceSec = rng.uniform(0.2, 2.0);
        // Offered load between 40% and 120% of fleet capacity: spans
        // the idle (degenerate-to-RR) and saturated regimes.
        double rate =
            rng.uniform(0.4, 1.2) * double(nodes) / serviceSec;
        uint64_t seed = rng.next();
        SCOPED_TRACE("trial " + std::to_string(trial) + ": nodes=" +
                     std::to_string(nodes) + " service=" +
                     std::to_string(serviceSec) + " rate=" +
                     std::to_string(rate) + " seed=" +
                     std::to_string(seed));

        serve::ArrivalSpec spec;
        spec.rate = rate;
        auto stream = serve::makeArrivalProcess(spec, seed);
        std::vector<Time> arrivals;
        for (;;) {
            Time t = stream->next();
            if (t.isNever() || t > Time::sec(120.0))
                break;
            arrivals.push_back(t);
        }
        ASSERT_GT(arrivals.size(), 100u);

        double rr = p99(modeledResponses(DispatchPolicy::RoundRobin,
                                         nodes, serviceSec, arrivals,
                                         seed));
        double jsq = p99(modeledResponses(
            DispatchPolicy::JoinShortestQueue, nodes, serviceSec,
            arrivals, seed));
        EXPECT_LE(jsq, rr + 1e-9);
    }
}

harness::HarnessConfig
propConfig()
{
    harness::HarnessConfig cfg;
    cfg.executions = 3;
    cfg.warmup = 1;
    cfg.seed = 0xD155; // pinned: the sweep below is one fixed case
    return cfg;
}

cluster::ClusterSpec
propClusterSpec()
{
    cluster::ClusterSpec spec;
    spec.name = "prop";
    spec.nodes = 2;
    spec.sweepPolicies = {
        DispatchPolicy::RoundRobin,
        DispatchPolicy::JoinShortestQueue,
        DispatchPolicy::SlackWeighted,
        DispatchPolicy::PowerOfTwoChoices,
    };
    spec.serve.arrivals.rate = 2.0;
    spec.serve.horizonSec = 8.0;
    spec.serve.warmupSec = 1.0;
    return spec;
}

TEST(ClusterPropTest, FullSimulationConservesRequestsUnderEveryPolicy)
{
    exec::ExecutorConfig ecfg;
    ecfg.threads = 2;
    ecfg.progress = false;
    exec::SweepExecutor executor(propConfig(), ecfg);
    auto cells = executor.runClusterSweep(propClusterSpec());
    ASSERT_EQ(cells.size(), 4u);
    for (const auto &cell : cells) {
        SCOPED_TRACE(cluster::dispatchPolicyName(cell.fleet.policy));
        EXPECT_GT(cell.fleet.generated, 0u);
        // Every generated request reached exactly one node...
        EXPECT_EQ(cell.fleet.arrivals, cell.fleet.generated);
        uint64_t perNode = 0;
        for (const auto &node : cell.nodes)
            perNode += node.serving.arrivals;
        EXPECT_EQ(perNode, cell.fleet.generated);
        // ...and was admitted, dropped, or shed there (completions
        // come out of the admitted pool; in-flight requests at the
        // horizon are admitted but not completed).
        uint64_t admitted = cell.fleet.arrivals - cell.fleet.dropped -
                            cell.fleet.shed;
        EXPECT_GE(admitted, cell.fleet.completed);
        // All four policies split the identical arrival stream.
        EXPECT_EQ(cell.fleet.generated, cells[0].fleet.generated);
    }
}

TEST(ClusterPropTest, DispatchConservesRequestsUnderEveryPolicy)
{
    Rng rng(0xC0115E);
    for (int trial = 0; trial < 16; ++trial) {
        size_t nodes = 1 + rng.below(8);
        double rate = rng.uniform(0.5, 8.0);
        uint64_t seed = rng.next();
        for (DispatchPolicy policy : cluster::allDispatchPolicies()) {
            SCOPED_TRACE(std::string(cluster::dispatchPolicyName(
                             policy)) +
                         " trial " + std::to_string(trial));
            auto dispatcher = cluster::makeDispatcher(
                policy, uniformFleet(nodes, 1.0), seed);
            serve::ArrivalSpec spec;
            spec.rate = rate;
            auto stream = serve::makeArrivalProcess(spec, seed);
            cluster::DispatchPlan plan = cluster::splitArrivals(
                *stream, Time::sec(30.0), *dispatcher);
            uint64_t assigned =
                std::accumulate(plan.assigned.begin(),
                                plan.assigned.end(), uint64_t(0));
            uint64_t traced = 0;
            for (const auto &node : plan.slotArrivals)
                for (const auto &slot : node)
                    traced += slot.size();
            EXPECT_EQ(assigned, plan.generated);
            EXPECT_EQ(traced, plan.generated);
        }
    }
}

} // namespace
} // namespace dirigent::prop
