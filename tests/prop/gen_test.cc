/**
 * @file
 * Self-tests of the property harness: generated cases are always
 * valid, generation is deterministic in the seed, the shrinker finds
 * minimal counterexamples, and the parser round-trips every generated
 * program (a property in its own right).
 */

#include <gtest/gtest.h>

#include "prop/prop.h"
#include "workload/parser.h"

namespace dirigent::prop {
namespace {

TEST(GenTest, GeneratedProgramsAreAlwaysValid)
{
    forAll<workload::PhaseProgram>(
        1001, 200, [](Rng &rng) { return genProgram(rng); },
        [](const workload::PhaseProgram &prog)
            -> std::optional<std::string> {
            if (!prog.valid())
                return "generated program failed PhaseProgram::valid()";
            for (const auto &ph : prog.phases) {
                if (ph.maxHitRatio < 0.0 || ph.maxHitRatio > 1.0)
                    return "max_hit out of [0, 1]";
                if (ph.workingSet <= 0.0 || ph.mlp <= 0.0)
                    return "non-positive working set or MLP";
            }
            return std::nullopt;
        });
}

TEST(GenTest, GeneratedMixesAreWellFormed)
{
    const auto &lib = workload::BenchmarkLibrary::instance();
    forAll<workload::WorkloadMix>(
        1002, 200, [](Rng &rng) { return genMix(rng); },
        [&lib](const workload::WorkloadMix &mix)
            -> std::optional<std::string> {
            if (mix.fg.empty())
                return "mix has no foreground";
            for (const auto &name : mix.fg)
                if (!lib.has(name))
                    return "unknown FG benchmark " + name;
            if (!lib.has(mix.bg.first))
                return "unknown BG benchmark " + mix.bg.first;
            if (mix.bg.kind == workload::BgSpec::Kind::Rotate &&
                !lib.has(mix.bg.second))
                return "unknown BG benchmark " + mix.bg.second;
            if (mix.name.empty())
                return "mix has no display name";
            return std::nullopt;
        });
}

TEST(GenTest, GenerationIsDeterministicInSeed)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 50; ++i) {
        std::string ta = workload::formatPhaseProgram(genProgram(a));
        std::string tb = workload::formatPhaseProgram(genProgram(b));
        EXPECT_EQ(ta, tb) << "round " << i;
    }
    // A different seed diverges (overwhelmingly likely on draw one).
    Rng d(42), e(43);
    EXPECT_NE(workload::formatPhaseProgram(genProgram(d)),
              workload::formatPhaseProgram(genProgram(e)));
    (void)c;
}

TEST(GenTest, GeneratedConfigsAreRunnable)
{
    forAll<harness::HarnessConfig>(
        1003, 100, [](Rng &rng) { return genConfig(rng); },
        [](const harness::HarnessConfig &cfg)
            -> std::optional<std::string> {
            if (cfg.executions < 1 || cfg.executions > 20)
                return "executions out of the fast-test envelope";
            if (cfg.warmup >= cfg.executions + 3)
                return "warmup dwarfs the measured executions";
            if (cfg.runtime.samplingPeriod.sec() <= 0.0)
                return "non-positive sampling period";
            return std::nullopt;
        });
}

// The round-trip property: format → parse is the identity on every
// generated program (up to the %.9g rendering of doubles).
TEST(GenTest, ParserRoundTripsGeneratedPrograms)
{
    forAll<workload::PhaseProgram>(
        1004, 100, [](Rng &rng) { return genProgram(rng, rng.chance(0.3)); },
        [](const workload::PhaseProgram &prog)
            -> std::optional<std::string> {
            workload::PhaseProgram again =
                workload::parsePhaseProgram(formatPhaseProgram(prog));
            if (again.phases.size() != prog.phases.size())
                return "phase count changed in round trip";
            if (again.loop != prog.loop)
                return "loop flag changed in round trip";
            std::string first = formatPhaseProgram(prog);
            std::string second = formatPhaseProgram(again);
            if (first != second)
                return "second round trip is not a fixpoint:\n" + first +
                       "\nvs\n" + second;
            return std::nullopt;
        },
        nullptr, [](const workload::PhaseProgram &prog) {
            return workload::formatPhaseProgram(prog);
        });
}

// Plant a falsifiable property and verify the shrinker converges to
// the minimal counterexample instead of reporting the first hit.
TEST(GenTest, ShrinkerFindsMinimalCounterexample)
{
    // "No program has more than 2 phases" — false; minimal failing
    // case has exactly 3 phases.
    Check<workload::PhaseProgram> atMostTwo =
        [](const workload::PhaseProgram &prog)
        -> std::optional<std::string> {
        if (prog.phases.size() > 2)
            return "program has " + std::to_string(prog.phases.size()) +
                   " phases";
        return std::nullopt;
    };
    Shrink<workload::PhaseProgram> dropOnePhase =
        [](const workload::PhaseProgram &prog) {
            std::vector<workload::PhaseProgram> out;
            for (size_t i = 0; i < prog.phases.size(); ++i) {
                workload::PhaseProgram smaller = prog;
                smaller.phases.erase(smaller.phases.begin() +
                                     std::ptrdiff_t(i));
                out.push_back(std::move(smaller));
            }
            return out;
        };

    // Drive the shrink loop directly so the expected failure does not
    // fail this test: find a >2-phase program, then shrink by hand.
    Rng rng(7);
    workload::PhaseProgram failing;
    do {
        failing = genProgram(rng);
    } while (!atMostTwo(failing));
    bool shrunk = true;
    while (shrunk) {
        shrunk = false;
        for (auto &cand : dropOnePhase(failing)) {
            if (atMostTwo(cand)) {
                failing = std::move(cand);
                shrunk = true;
                break;
            }
        }
    }
    EXPECT_EQ(failing.phases.size(), 3u)
        << "greedy shrink should stop at the smallest failing case";
}

} // namespace
} // namespace dirigent::prop
