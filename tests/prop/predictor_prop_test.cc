/**
 * @file
 * Predictor properties, for every builtin kind behind the prediction
 * seam:
 *
 *  - On stationary workloads (constant slowdown, profile-conforming
 *    progress) the smoothed midpoint prediction error must not grow
 *    as executions accumulate, and must end small.
 *  - Generative candidate curves are strictly increasing cumulative
 *    time (they inherit the profile's monotonicity), for every
 *    candidate, ensemble size, and seed.
 *  - The generative sampler is deterministic in its seed: same seed,
 *    same curves and predictions; different seeds, different curves.
 *  - Deadline decomposition is exact: per-segment budgets are positive
 *    and sum to the end-to-end deadline.
 *
 * Uses the forAll harness so failures shrink and reproduce by seed.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/random.h"
#include "dirigent/decomposition_predictor.h"
#include "dirigent/fallback_predictor.h"
#include "dirigent/generative_predictor.h"
#include "dirigent/predictor_spec.h"
#include "dirigent/profile.h"
#include "prop/prop.h"

namespace dirigent::prop {
namespace {

using core::CompletionPredictor;
using core::DeadlineDecompositionPredictor;
using core::GenerativeProfilePredictor;
using core::PredictorSpec;
using core::Profile;
using core::ProfileSegment;

/** One randomized predictor scenario. */
struct PredCase
{
    size_t segments = 8;
    double progressPerSeg = 1e6;
    double dtMs = 5.0;
    double slowdown = 1.2;
    uint64_t seed = 1;
};

PredCase
genPredCase(Rng &rng)
{
    PredCase c;
    c.segments = 4 + rng.below(27);
    c.progressPerSeg = rng.uniform(1e5, 5e6);
    c.dtMs = rng.uniform(1.0, 10.0);
    c.slowdown = rng.uniform(1.0, 1.6);
    c.seed = rng.next();
    return c;
}

std::vector<PredCase>
shrinkPredCase(const PredCase &c)
{
    std::vector<PredCase> out;
    if (c.segments > 4) {
        PredCase s = c;
        s.segments = (c.segments + 4) / 2;
        out.push_back(s);
    }
    if (c.slowdown > 1.0) {
        PredCase s = c;
        s.slowdown = 1.0;
        out.push_back(s);
    }
    return out;
}

std::string
showPredCase(const PredCase &c)
{
    return "segments=" + std::to_string(c.segments) +
           " progress=" + std::to_string(c.progressPerSeg) +
           " dtMs=" + std::to_string(c.dtMs) +
           " slowdown=" + std::to_string(c.slowdown) +
           " seed=" + std::to_string(c.seed);
}

Profile
makeProfile(const PredCase &c)
{
    std::vector<ProfileSegment> segs(
        c.segments, ProfileSegment{c.progressPerSeg, Time::ms(c.dtMs)});
    return Profile("prop", Time::ms(c.dtMs), segs);
}

/**
 * One profile-conforming execution at a constant slowdown: each
 * segment takes slowdown x its profiled duration, observed at segment
 * boundaries, ending at full profiled progress.
 */
void
runStationaryExecution(CompletionPredictor &pred, const Profile &profile,
                       double slowdown, Time &now)
{
    pred.beginExecution(now);
    double progress = 0.0;
    for (const ProfileSegment &seg : profile.segments()) {
        now += seg.duration * slowdown;
        progress += seg.progress;
        pred.observe(now, progress);
    }
    pred.endExecution(now, progress);
}

TEST(PredictorPropTest, StationaryErrorShrinks)
{
    Check<PredCase> check =
        [](const PredCase &c) -> std::optional<std::string> {
        Profile profile = makeProfile(c);
        for (const PredictorSpec &spec :
             core::builtinPredictorSpecs()) {
            auto pred = core::makePredictor(spec, &profile, c.seed);
            Time now;
            double earlyError = 0.0;
            for (int exec = 1; exec <= 12; ++exec) {
                runStationaryExecution(*pred, profile, c.slowdown,
                                       now);
                if (exec == 3)
                    earlyError = pred->errorEstimate();
            }
            double lateError = pred->errorEstimate();
            if (pred->degraded())
                return spec.kind +
                       ": degraded on a profile-conforming workload";
            if (lateError > earlyError + 0.05)
                return spec.kind + ": error grew from " +
                       std::to_string(earlyError) + " to " +
                       std::to_string(lateError);
            if (lateError > 0.6)
                return spec.kind + ": stationary error stayed large (" +
                       std::to_string(lateError) + ")";
        }
        return std::nullopt;
    };
    forAll<PredCase>(0xD1519E17, 20, genPredCase, check, shrinkPredCase,
                     showPredCase);
}

TEST(PredictorPropTest, GenerativeCurvesAreMonotone)
{
    Check<PredCase> check =
        [](const PredCase &c) -> std::optional<std::string> {
        Profile profile = makeProfile(c);
        PredictorSpec spec = *core::findPredictorSpec("generative");
        spec.ensemble = 2 + unsigned(c.seed % 63);
        GenerativeProfilePredictor pred(&profile, spec, Rng(c.seed));
        if (pred.ensembleSize() != spec.ensemble)
            return "ensemble size " +
                   std::to_string(pred.ensembleSize()) + " != spec " +
                   std::to_string(spec.ensemble);
        for (size_t k = 0; k < pred.ensembleSize(); ++k) {
            std::vector<double> curve = pred.candidateCurve(k);
            if (curve.size() != profile.size())
                return "candidate " + std::to_string(k) +
                       " has wrong segment count";
            double prev = 0.0;
            for (size_t i = 0; i < curve.size(); ++i) {
                if (!(curve[i] > prev) || !std::isfinite(curve[i]))
                    return "candidate " + std::to_string(k) +
                           " not strictly increasing at segment " +
                           std::to_string(i);
                prev = curve[i];
            }
        }
        return std::nullopt;
    };
    forAll<PredCase>(0x6E0E12A7, 40, genPredCase, check, shrinkPredCase,
                     showPredCase);
}

TEST(PredictorPropTest, GenerativeIsSeedDeterministic)
{
    Check<PredCase> check =
        [](const PredCase &c) -> std::optional<std::string> {
        Profile profile = makeProfile(c);
        PredictorSpec spec = *core::findPredictorSpec("generative");
        GenerativeProfilePredictor a(&profile, spec, Rng(c.seed));
        GenerativeProfilePredictor b(&profile, spec, Rng(c.seed));
        GenerativeProfilePredictor other(&profile, spec,
                                         Rng(c.seed + 1));

        // Identical seeds: identical curves and identical predictions
        // after identical observation streams.
        for (size_t k = 0; k < a.ensembleSize(); ++k)
            if (a.candidateCurve(k) != b.candidateCurve(k))
                return "same seed produced different candidate " +
                       std::to_string(k);
        Time nowA, nowB;
        for (int exec = 0; exec < 3; ++exec) {
            runStationaryExecution(a, profile, c.slowdown, nowA);
            runStationaryExecution(b, profile, c.slowdown, nowB);
        }
        a.beginExecution(nowA);
        b.beginExecution(nowB);
        a.observe(nowA + Time::ms(c.dtMs), c.progressPerSeg);
        b.observe(nowB + Time::ms(c.dtMs), c.progressPerSeg);
        if (a.predictTotal() != b.predictTotal())
            return "same seed diverged after identical observations";

        // A different seed must sample different perturbed curves
        // (candidate 0 is the unperturbed profile, so compare k >= 1).
        bool differs = false;
        for (size_t k = 1; k < other.ensembleSize() && !differs; ++k)
            differs = other.candidateCurve(k) != a.candidateCurve(k);
        if (!differs)
            return "different seeds sampled identical ensembles";
        return std::nullopt;
    };
    forAll<PredCase>(0x5EEDDE7, 20, genPredCase, check, shrinkPredCase,
                     showPredCase);
}

TEST(PredictorPropTest, DeadlineDecompositionIsExact)
{
    Check<PredCase> check =
        [](const PredCase &c) -> std::optional<std::string> {
        Profile profile = makeProfile(c);
        PredictorSpec spec = *core::findPredictorSpec("decomposition");
        DeadlineDecompositionPredictor pred(&profile, spec);
        Time now;
        // Both cold (profile-only budgets) and warm (slowdown EMAs
        // populated) decompositions must be exact.
        for (int warm = 0; warm < 2; ++warm) {
            Time deadline =
                profile.totalTime() * (1.0 + c.slowdown);
            std::vector<Time> budgets = pred.segmentDeadlines(deadline);
            if (budgets.size() != profile.size())
                return "budget count != segment count";
            Time sum;
            for (size_t i = 0; i < budgets.size(); ++i) {
                if (!(budgets[i] > Time()))
                    return "segment " + std::to_string(i) +
                           " budget not positive";
                sum += budgets[i];
            }
            if (std::fabs((sum - deadline).sec()) > 1e-9)
                return "budgets sum to " + std::to_string(sum.sec()) +
                       " != deadline " +
                       std::to_string(deadline.sec());
            runStationaryExecution(pred, profile, c.slowdown, now);
            runStationaryExecution(pred, profile, c.slowdown, now);
        }
        return std::nullopt;
    };
    forAll<PredCase>(0xDEAD11E, 30, genPredCase, check, shrinkPredCase,
                     showPredCase);
}

} // namespace
} // namespace dirigent::prop
