/**
 * @file
 * Property: skip-ahead stepping is trace-equivalent to single-quantum
 * (reference) stepping. Two layers:
 *
 *  - Engine-level: randomized event schedules (including events
 *    scheduled from within firing events) and observers attaching and
 *    detaching mid-run must see the identical span grid, event fire
 *    clock, and observer callback counts under both modes.
 *  - Harness-level: a random mix / config / fault plan / builtin
 *    scheme spec must produce a byte-identical precise golden trace
 *    under both modes, with the fast path proven engaged.
 *
 * Uses the forAll harness so failures shrink and reproduce by seed.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "check/check.h"
#include "dirigent/scheme_spec.h"
#include "dirigent/trace.h"
#include "fault/plan.h"
#include "harness/experiment.h"
#include "prop/prop.h"
#include "sim/engine.h"

namespace dirigent::prop {
namespace {

/** Scoped DIRIGENT_FAST_PATH override (restores the prior value). */
class ScopedFastPath
{
  public:
    explicit ScopedFastPath(bool on)
    {
        const char *prev = std::getenv("DIRIGENT_FAST_PATH");
        had_ = prev != nullptr;
        if (had_)
            prev_ = prev;
        ::setenv("DIRIGENT_FAST_PATH", on ? "1" : "0", 1);
    }

    ~ScopedFastPath()
    {
        if (had_)
            ::setenv("DIRIGENT_FAST_PATH", prev_.c_str(), 1);
        else
            ::unsetenv("DIRIGENT_FAST_PATH");
    }

  private:
    bool had_ = false;
    std::string prev_;
};

// ---------------------------------------------------------------------
// Engine-level property.
// ---------------------------------------------------------------------

struct EngineCase
{
    double endUs = 1000.0;
    /** Initial event schedule (absolute µs; may exceed endUs). */
    std::vector<double> eventsUs;
    /** Relative delay chained from each firing event (0 = no chain). */
    std::vector<double> chainUs;
    /** Observer attach/detach windows (absolute µs, attach < detach). */
    std::vector<std::pair<double, double>> observersUs;
};

EngineCase
genEngineCase(Rng &rng)
{
    EngineCase c;
    c.endUs = rng.uniform(250.0, 3000.0);
    size_t events = rng.below(8);
    for (size_t i = 0; i < events; ++i) {
        c.eventsUs.push_back(rng.uniform(0.0, c.endUs * 1.2));
        c.chainUs.push_back(rng.chance(0.5) ? rng.uniform(0.0, 400.0)
                                            : 0.0);
    }
    size_t observers = rng.below(3);
    for (size_t i = 0; i < observers; ++i) {
        double a = rng.uniform(0.0, c.endUs);
        double b = rng.uniform(0.0, c.endUs);
        c.observersUs.emplace_back(std::min(a, b), std::max(a, b));
    }
    return c;
}

/** Everything observable about one run of an EngineCase. */
struct EngineRunLog
{
    std::vector<std::pair<double, double>> spans;
    std::vector<std::pair<int, double>> fires; //!< (event idx, now µs)
    std::vector<uint64_t> observerCalls;
    double finalUs = 0.0;
    uint64_t quanta = 0;

    bool operator==(const EngineRunLog &) const = default;
};

class CountingObserver : public sim::Observer
{
  public:
    void beforeQuantum(Time, Time) override { ++calls; }
    void afterQuantum(Time, Time) override { ++calls; }
    uint64_t calls = 0;
};

EngineRunLog
runEngineCase(const EngineCase &c, sim::StepMode mode)
{
    class Recorder : public sim::Component
    {
      public:
        void
        advance(Time start, Time dt) override
        {
            spans.emplace_back(start.us(), dt.us());
        }
        std::vector<std::pair<double, double>> spans;
    };

    Recorder comp;
    sim::Engine engine(comp, Time::us(100.0));
    engine.setStepMode(mode);

    EngineRunLog log;
    log.observerCalls.assign(c.observersUs.size(), 0);
    std::vector<CountingObserver> observers(c.observersUs.size());

    for (size_t i = 0; i < c.eventsUs.size(); ++i) {
        double chain = c.chainUs[i];
        engine.at(Time::us(c.eventsUs[i]), [&, i, chain] {
            log.fires.emplace_back(int(i), engine.now().us());
            if (chain > 0.0) {
                // Event scheduled from within a firing event: must
                // split spans identically in both modes.
                engine.after(Time::us(chain), [&, i] {
                    log.fires.emplace_back(-1 - int(i),
                                           engine.now().us());
                });
            }
        });
    }
    for (size_t i = 0; i < c.observersUs.size(); ++i) {
        engine.at(Time::us(c.observersUs[i].first),
                  [&, i] { engine.addObserver(&observers[i]); });
        engine.at(Time::us(c.observersUs[i].second),
                  [&, i] { engine.removeObserver(&observers[i]); });
    }

    engine.runUntil(Time::us(c.endUs));

    log.spans = comp.spans;
    log.finalUs = engine.now().us();
    log.quanta = engine.stepStats().quanta;
    for (size_t i = 0; i < observers.size(); ++i)
        log.observerCalls[i] = observers[i].calls;
    return log;
}

std::string
showEngineCase(const EngineCase &c)
{
    std::ostringstream out;
    out << "end=" << c.endUs << "us events=[";
    for (size_t i = 0; i < c.eventsUs.size(); ++i)
        out << c.eventsUs[i] << "(+" << c.chainUs[i] << ") ";
    out << "] observers=[";
    for (const auto &[a, b] : c.observersUs)
        out << a << ".." << b << " ";
    out << "]";
    return out.str();
}

std::vector<EngineCase>
shrinkEngineCase(const EngineCase &c)
{
    std::vector<EngineCase> out;
    for (size_t i = 0; i < c.eventsUs.size(); ++i) {
        EngineCase smaller = c;
        smaller.eventsUs.erase(smaller.eventsUs.begin() + i);
        smaller.chainUs.erase(smaller.chainUs.begin() + i);
        out.push_back(std::move(smaller));
    }
    for (size_t i = 0; i < c.observersUs.size(); ++i) {
        EngineCase smaller = c;
        smaller.observersUs.erase(smaller.observersUs.begin() + i);
        out.push_back(std::move(smaller));
    }
    if (c.endUs > 200.0) {
        EngineCase smaller = c;
        smaller.endUs = c.endUs / 2.0;
        out.push_back(std::move(smaller));
    }
    return out;
}

TEST(SkipAheadProperty, EngineSpansAndEventsMatchReference)
{
    forAll<EngineCase>(
        0xD161E27, 60, genEngineCase,
        [](const EngineCase &c) -> std::optional<std::string> {
            EngineRunLog ref = runEngineCase(c, sim::StepMode::Reference);
            EngineRunLog fast = runEngineCase(c, sim::StepMode::SkipAhead);
            if (ref == fast)
                return std::nullopt;
            std::ostringstream why;
            why << "diverged: ref " << ref.spans.size() << " spans, "
                << ref.fires.size() << " fires, quanta " << ref.quanta
                << "; skip-ahead " << fast.spans.size() << " spans, "
                << fast.fires.size() << " fires, quanta " << fast.quanta;
            return why.str();
        },
        shrinkEngineCase, showEngineCase);
}

// ---------------------------------------------------------------------
// Harness-level property.
// ---------------------------------------------------------------------

struct HarnessCase
{
    workload::WorkloadMix mix;
    harness::HarnessConfig cfg;
    std::string faultPlan;
    size_t specIdx = 0;
};

const std::vector<std::string> &
faultPlanPool()
{
    static const std::vector<std::string> pool = {
        "",
        "[sampler]\nstall_prob = 0.05\nmiss_prob = 0.02\n",
        "[counters]\ndrop_prob = 0.05\nglitch_prob = 0.01\n",
        "[dvfs]\nfail_prob = 0.1\nspike_prob = 0.05\n",
    };
    return pool;
}

HarnessCase
genHarnessCase(Rng &rng)
{
    HarnessCase c;
    c.mix = genMix(rng);
    c.cfg = genConfig(rng);
    c.cfg.executions = 3; // keep each comparison run short
    c.cfg.warmup = 1;
    c.faultPlan = faultPlanPool()[rng.below(faultPlanPool().size())];
    c.specIdx = rng.below(core::builtinSchemeSpecs().size());
    return c;
}

std::string
showHarnessCase(const HarnessCase &c)
{
    const auto &spec = core::builtinSchemeSpecs()[c.specIdx];
    std::ostringstream out;
    out << "mix=" << c.mix.name << " seed=" << c.cfg.seed
        << " spec=" << spec.name << " faults="
        << (c.faultPlan.empty() ? "none" : c.faultPlan);
    return out.str();
}

TEST(SkipAheadProperty, HarnessTracesMatchReference)
{
    bool wasChecking = check::enabled();
    check::setEnabled(false); // checker observers would force reference
    forAll<HarnessCase>(
        0xFA57, 4, genHarnessCase,
        [](const HarnessCase &c) -> std::optional<std::string> {
            const core::SchemeSpec &spec =
                core::builtinSchemeSpecs()[c.specIdx];
            harness::HarnessConfig cfg = c.cfg;
            cfg.faultPlan = fault::parseFaultPlan(c.faultPlan);

            auto trace = [&](bool fastMode,
                             uint64_t *spanDelta) -> std::string {
                ScopedFastPath env(fastMode);
                harness::ExperimentRunner runner(cfg);
                std::map<std::string, Time> deadlines;
                {
                    auto baseline =
                        runner.run(c.mix, core::Scheme::Baseline, {});
                    deadlines = runner.deadlinesFromBaseline(baseline);
                }
                core::GoldenTraceRecorder recorder;
                harness::RunOptions opts;
                opts.golden = &recorder;
                uint64_t before = sim::totalSpanQuantaAdvanced();
                runner.run(c.mix, spec, deadlines, opts);
                if (spanDelta != nullptr)
                    *spanDelta =
                        sim::totalSpanQuantaAdvanced() - before;
                return recorder.preciseText();
            };

            uint64_t fastSpans = 0;
            std::string ref = trace(false, nullptr);
            std::string fast = trace(true, &fastSpans);
            if (fastSpans == 0)
                return "fast path never engaged (vacuous comparison)";
            if (ref != fast)
                return "trace diverged:\n" + core::traceDiff(ref, fast);
            return std::nullopt;
        },
        nullptr, showHarnessCase);
    check::setEnabled(wasChecking);
}

} // namespace
} // namespace dirigent::prop
