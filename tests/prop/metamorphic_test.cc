/**
 * @file
 * Metamorphic relations over the co-simulator: transformations of a
 * run whose effect on the output has a known direction (or none),
 * regardless of the absolute numbers. These catch model regressions
 * that absolute-threshold tests cannot.
 */

#include <gtest/gtest.h>

#include <string>

#include "dirigent/trace.h"
#include "harness/experiment.h"
#include "machine/cpufreq.h"
#include "machine/machine.h"
#include "prop/prop.h"
#include "sim/engine.h"
#include "workload/benchmarks.h"
#include "workload/mix.h"

namespace dirigent::prop {
namespace {

harness::HarnessConfig
fastConfig(uint64_t seed)
{
    harness::HarnessConfig cfg;
    cfg.executions = 10;
    cfg.warmup = 2;
    cfg.seed = seed;
    return cfg;
}

/**
 * Relation 1: adding background interference never makes the
 * foreground faster. Standalone FG mean ≤ contended FG mean.
 */
class BgInterferenceTest
    : public testing::TestWithParam<workload::WorkloadMix>
{
};

TEST_P(BgInterferenceTest, AddingBgNeverSpeedsUpFg)
{
    const auto &mix = GetParam();
    harness::ExperimentRunner runner(fastConfig(2024));
    auto alone = runner.runStandalone(mix.fg.front());
    auto contended = runner.run(mix, core::Scheme::Baseline, {});
    // Contention can only add time (2% slack for workload jitter: the
    // contended run sees a different random stream interleaving).
    EXPECT_LE(alone.fgDurationMean(),
              contended.fgDurationMean() * 1.02)
        << mix.name;
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, BgInterferenceTest,
    testing::Values(
        workload::makeMix({"ferret"}, workload::BgSpec::single("rs")),
        workload::makeMix({"raytrace"},
                          workload::BgSpec::single("bwaves")),
        workload::makeMix({"streamcluster"},
                          workload::BgSpec::single("pca"))),
    [](const testing::TestParamInfo<workload::WorkloadMix> &info) {
        std::string name = info.param.name;
        for (char &c : name)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

/** LLC-miss bandwidth of a solo benchmark run at a fixed DVFS grade. */
double
missBandwidthAtGrade(unsigned grade, uint64_t seed)
{
    machine::MachineConfig mcfg;
    mcfg.seed = seed;
    machine::Machine machine(mcfg);
    sim::Engine engine(machine, machine.config().maxQuantum);
    machine::CpuFreqGovernor governor(machine, engine);

    const auto &lib = workload::BenchmarkLibrary::instance();
    machine::ProcessSpec bg;
    bg.name = "bg";
    bg.program = &lib.get("lbm").program;
    bg.core = 1;
    machine.spawnProcess(bg);
    governor.setGrade(1, grade);

    engine.runFor(Time::ms(20.0)); // settle past the grade transition
    double missesBefore = machine.readCounters(1).llcMisses;
    Time window = Time::ms(100.0);
    engine.runFor(window);
    double misses = machine.readCounters(1).llcMisses - missesBefore;
    return misses * machine.cache().config().lineSize / window.sec();
}

/**
 * Relation 2: throttling a background core by one DVFS grade never
 * raises its memory bandwidth demand.
 */
TEST(ThrottleMetamorphicTest, LowerGradeNeverRaisesBgBandwidth)
{
    machine::MachineConfig mcfg;
    machine::Machine probe(mcfg);
    sim::Engine probeEngine(probe, probe.config().maxQuantum);
    machine::CpuFreqGovernor governor(probe, probeEngine);

    double previous = -1.0;
    for (unsigned g = 0; g < governor.numGrades(); ++g) {
        double bw = missBandwidthAtGrade(g, 77);
        EXPECT_GT(bw, 0.0) << "grade " << g;
        if (previous >= 0.0) {
            // 5% slack: the slower run samples the workload's random
            // stream at different phase offsets.
            EXPECT_LE(previous, bw * 1.05)
                << "throttling from grade " << g << " to " << g - 1
                << " raised BG bandwidth";
        }
        previous = bw;
    }
}

/**
 * Relation 3: on identical seeds, Dirigent's FG success is at least
 * Baseline's. Checked across generated mixes and seeds.
 */
TEST(SchemeMetamorphicTest, DirigentSuccessAtLeastBaseline)
{
    forAll<workload::WorkloadMix>(
        3001, 2, [](Rng &rng) { return genMix(rng); },
        [](const workload::WorkloadMix &mix)
            -> std::optional<std::string> {
            harness::ExperimentRunner runner(fastConfig(11));
            auto baseline = runner.run(mix, core::Scheme::Baseline, {});
            auto deadlines = runner.deadlinesFromBaseline(baseline);
            harness::applyDeadlines(baseline, deadlines);
            auto dirigent =
                runner.run(mix, core::Scheme::Dirigent, deadlines);
            if (dirigent.fgSuccessRatio() <
                baseline.fgSuccessRatio() - 1e-12) {
                return "Dirigent success " +
                       std::to_string(dirigent.fgSuccessRatio()) +
                       " below Baseline " +
                       std::to_string(baseline.fgSuccessRatio()) +
                       " on mix " + mix.name;
            }
            return std::nullopt;
        },
        nullptr,
        [](const workload::WorkloadMix &mix) { return mix.name; });
}

/** Register the zero-jitter FG/BG pair once per process. */
const char *
zeroJitterFgName()
{
    static const char *name = [] {
        workload::PhaseProgram fg;
        fg.name = "zj-fg";
        workload::Phase phase;
        phase.name = "only";
        phase.instructions = 4e8;
        phase.cpiBase = 0.8;
        phase.llcApki = 6.0;
        phase.workingSet = 3.0 * 1024 * 1024;
        phase.cpiJitterSigma = 0.0;
        phase.instrJitterSigma = 0.0;
        fg.phases.push_back(phase);
        workload::BenchmarkLibrary::registerCustom(
            fg.name, "zero-jitter FG for determinism tests", fg);
        return "zj-fg";
    }();
    return name;
}

const char *
zeroJitterBgName()
{
    static const char *name = [] {
        workload::PhaseProgram bg;
        bg.name = "zj-bg";
        bg.loop = true;
        workload::Phase phase;
        phase.name = "only";
        phase.instructions = 6e8;
        phase.cpiBase = 1.1;
        phase.llcApki = 18.0;
        phase.workingSet = 6.0 * 1024 * 1024;
        phase.cpiJitterSigma = 0.0;
        phase.instrJitterSigma = 0.0;
        bg.phases.push_back(phase);
        workload::BenchmarkLibrary::registerCustom(
            bg.name, "zero-jitter BG for determinism tests", bg);
        return "zj-bg";
    }();
    return name;
}

/** Precise trace of a Baseline run with all noise sources at zero. */
std::string
zeroJitterTrace(uint64_t seed)
{
    harness::HarnessConfig cfg = fastConfig(seed);
    cfg.machine.noiseEventsPerSec = 0.0;
    cfg.runtime.wakeOvershootSigma = Time();
    cfg.profiler.wakeOvershootSigma = Time();
    harness::ExperimentRunner runner(cfg);
    auto mix = workload::makeMix(
        {zeroJitterFgName()}, workload::BgSpec::single(zeroJitterBgName()));
    core::GoldenTraceRecorder recorder;
    harness::RunOptions opts;
    opts.golden = &recorder;
    runner.run(mix, core::Scheme::Baseline, {}, opts);
    return recorder.preciseText();
}

/**
 * Relation 4: with every stochastic input scaled to zero (workload
 * jitter, OS noise, timer overshoot), the trace is one deterministic
 * function of the workload — the seed must not matter at all.
 */
TEST(ZeroJitterMetamorphicTest, TraceIsSeedInvariant)
{
    std::string a = zeroJitterTrace(1);
    std::string b = zeroJitterTrace(999);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b) << core::traceDiff(a, b);
}

TEST(ZeroJitterMetamorphicTest, TraceIsRepeatable)
{
    EXPECT_EQ(zeroJitterTrace(5), zeroJitterTrace(5));
}

/** Sanity: with jitter restored, seeds do matter (the relation above
 *  has teeth because zeroing the noise is what removes the spread). */
TEST(ZeroJitterMetamorphicTest, JitterMakesSeedsMatter)
{
    auto trace = [](uint64_t seed) {
        harness::ExperimentRunner runner(fastConfig(seed));
        auto mix = workload::makeMix({"ferret"},
                                     workload::BgSpec::single("rs"));
        core::GoldenTraceRecorder recorder;
        harness::RunOptions opts;
        opts.golden = &recorder;
        runner.run(mix, core::Scheme::Baseline, {}, opts);
        return recorder.preciseText();
    };
    EXPECT_NE(trace(1), trace(2));
}

} // namespace
} // namespace dirigent::prop
