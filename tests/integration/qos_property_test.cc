/**
 * @file
 * Property-style parameterized integration tests: QoS invariants that
 * must hold across workload mixes and configuration sweeps.
 */

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "workload/mix.h"

namespace dirigent::harness {
namespace {

HarnessConfig
fastConfig()
{
    HarnessConfig cfg;
    cfg.executions = 15;
    cfg.warmup = 3;
    cfg.seed = 99;
    return cfg;
}

/**
 * For every tested mix: Dirigent improves FG success over Baseline
 * while retaining most of the BG throughput, and cuts the FG σ.
 */
class MixPropertyTest
    : public testing::TestWithParam<workload::WorkloadMix>
{
};

TEST_P(MixPropertyTest, DirigentDominatesBaselineQoS)
{
    ExperimentRunner runner(fastConfig());
    const auto &mix = GetParam();

    auto baseline = runner.run(mix, core::Scheme::Baseline, {});
    auto deadlines = runner.deadlinesFromBaseline(baseline);
    applyDeadlines(baseline, deadlines);
    auto dirigent = runner.run(mix, core::Scheme::Dirigent, deadlines);

    EXPECT_GE(dirigent.fgSuccessRatio(), 0.85) << mix.name;
    EXPECT_GE(dirigent.fgSuccessRatio(), baseline.fgSuccessRatio())
        << mix.name;
    EXPECT_LT(stdRatio(dirigent, baseline), 0.8) << mix.name;
    EXPECT_GT(bgThroughputRatio(dirigent, baseline), 0.6) << mix.name;
}

INSTANTIATE_TEST_SUITE_P(
    RepresentativeMixes, MixPropertyTest,
    testing::Values(
        workload::makeMix({"ferret"}, workload::BgSpec::single("rs")),
        workload::makeMix({"raytrace"},
                          workload::BgSpec::single("bwaves")),
        workload::makeMix({"streamcluster"},
                          workload::BgSpec::single("pca")),
        workload::makeMix({"bodytrack"},
                          workload::BgSpec::rotate("lbm", "namd")),
        workload::makeMix({"fluidanimate"},
                          workload::BgSpec::rotate("libquantum",
                                                   "soplex"))),
    [](const testing::TestParamInfo<workload::WorkloadMix> &info) {
        std::string name = info.param.name;
        for (char &c : name)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

/**
 * Deadline-tightness sweep (the paper's Fig. 15 tradeoff): looser
 * deadlines must never reduce BG throughput, and Dirigent's mean FG
 * time must track the target.
 */
class DeadlineSweepTest : public testing::TestWithParam<double>
{
};

TEST_P(DeadlineSweepTest, FgTimeTracksTarget)
{
    double factor = GetParam();
    HarnessConfig cfg = fastConfig();
    cfg.executions = 12;
    ExperimentRunner runner(cfg);
    auto mix = workload::makeMix({"raytrace"},
                                 workload::BgSpec::single("bwaves"));
    auto alone = runner.runStandalone("raytrace", 12);
    Time target = Time::sec(alone.fgDurationMean() * factor);
    std::map<std::string, Time> deadlines = {{"raytrace", target}};
    auto res = runner.run(mix, core::Scheme::Dirigent, deadlines);
    // Mean stays at or below the target but does not undershoot by
    // more than ~12% (Dirigent converts slack into BG throughput
    // rather than finishing early).
    EXPECT_LT(res.fgDurationMean(), target.sec() * 1.02);
    EXPECT_GT(res.fgDurationMean(), target.sec() * 0.82);
    EXPECT_GE(res.fgSuccessRatio(), 0.8);
}

INSTANTIATE_TEST_SUITE_P(Targets, DeadlineSweepTest,
                         testing::Values(1.08, 1.12, 1.15, 1.18));

/**
 * Static-partition sweep (paper Fig. 8): FG time under StaticBoth is
 * non-increasing as the FG partition grows through the knee region.
 */
class PartitionSweepTest : public testing::TestWithParam<unsigned>
{
};

TEST_P(PartitionSweepTest, MoreWaysNeverHurtFg)
{
    unsigned ways = GetParam();
    HarnessConfig cfg = fastConfig();
    cfg.executions = 10;
    ExperimentRunner runner(cfg);
    auto mix = workload::makeMix({"streamcluster"},
                                 workload::BgSpec::single("pca"));
    RunOptions small, large;
    small.staticFgWays = ways;
    large.staticFgWays = ways + 4;
    auto a = runner.run(mix, core::Scheme::StaticBoth, {}, small);
    auto b = runner.run(mix, core::Scheme::StaticBoth, {}, large);
    // Growing the FG partition can only help the FG (within noise).
    EXPECT_LT(b.fgDurationMean(), a.fgDurationMean() * 1.05)
        << "ways " << ways;
}

INSTANTIATE_TEST_SUITE_P(Ways, PartitionSweepTest,
                         testing::Values(2u, 4u, 6u));

/**
 * Sampling-period sensitivity (paper §4.2: even ~40 samples per task
 * suffice): predictor accuracy degrades gracefully as ΔT grows.
 */
class SamplingPeriodTest : public testing::TestWithParam<double>
{
};

TEST_P(SamplingPeriodTest, PredictionStaysUseful)
{
    double periodMs = GetParam();
    HarnessConfig cfg = fastConfig();
    cfg.executions = 12;
    cfg.profiler.samplingPeriod = Time::ms(periodMs);
    cfg.runtime.samplingPeriod = Time::ms(periodMs);
    ExperimentRunner runner(cfg);
    auto mix = workload::makeMix({"raytrace"},
                                 workload::BgSpec::single("rs"));
    RunOptions opts;
    opts.attachObserver = true;
    auto res = runner.run(mix, core::Scheme::Baseline, {}, opts);
    ASSERT_GE(res.midpointSamples.size(), 6u);
    EXPECT_LT(res.predictionError(), 0.12) << "period " << periodMs;
}

INSTANTIATE_TEST_SUITE_P(Periods, SamplingPeriodTest,
                         testing::Values(5.0, 10.0, 20.0));

} // namespace
} // namespace dirigent::harness
