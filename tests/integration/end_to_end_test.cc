/**
 * @file
 * End-to-end integration tests: the full pipeline (profile → calibrate
 * deadlines → run schemes → metrics) on a representative mix, with
 * reduced execution counts to keep test time reasonable.
 */

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "workload/mix.h"

namespace dirigent::harness {
namespace {

HarnessConfig
fastConfig()
{
    HarnessConfig cfg;
    cfg.executions = 20;
    cfg.warmup = 3;
    cfg.seed = 2024;
    return cfg;
}

class EndToEndTest : public testing::Test
{
  protected:
    EndToEndTest() : runner_(fastConfig()) {}

    ExperimentRunner runner_;
};

TEST_F(EndToEndTest, StandaloneRunIsStable)
{
    auto res = runner_.runStandalone("raytrace", 15);
    EXPECT_EQ(res.total, 15u);
    EXPECT_GT(res.fgDurationMean(), 0.4);
    EXPECT_LT(res.fgDurationMean(), 0.9);
    // Standalone variation is small (only CPI jitter and OS noise).
    EXPECT_LT(res.fgDurationStd() / res.fgDurationMean(), 0.05);
    EXPECT_GT(res.fgMpki(), 0.05);
    EXPECT_LT(res.fgMpki(), 1.0);
}

TEST_F(EndToEndTest, ContentionSlowsAndSpreads)
{
    auto alone = runner_.runStandalone("ferret", 15);
    auto mix = workload::makeMix({"ferret"},
                                 workload::BgSpec::single("bwaves"));
    auto contended = runner_.run(mix, core::Scheme::Baseline, {});
    EXPECT_GT(contended.fgDurationMean(), alone.fgDurationMean() * 1.2);
    EXPECT_GT(contended.fgDurationStd(), alone.fgDurationStd() * 2.0);
    EXPECT_GT(contended.fgMpki(), alone.fgMpki() * 1.5);
}

TEST_F(EndToEndTest, DeadlineCalibrationMatchesFormula)
{
    auto mix = workload::makeMix({"raytrace"},
                                 workload::BgSpec::single("pca"));
    auto baseline = runner_.run(mix, core::Scheme::Baseline, {});
    auto deadlines = runner_.deadlinesFromBaseline(baseline);
    ASSERT_TRUE(deadlines.count("raytrace"));
    double expected = baseline.fgDurationMean() +
                      0.3 * baseline.fgDurationStd();
    EXPECT_NEAR(deadlines.at("raytrace").sec(), expected, 1e-9);
}

TEST_F(EndToEndTest, BaselineSuccessNearSixtyPercent)
{
    // With deadline = µ + 0.3σ of itself, the Baseline success ratio
    // sits near 60% (paper: "just under 60%" on average).
    auto mix = workload::makeMix({"ferret"},
                                 workload::BgSpec::single("rs"));
    auto baseline = runner_.run(mix, core::Scheme::Baseline, {});
    auto deadlines = runner_.deadlinesFromBaseline(baseline);
    applyDeadlines(baseline, deadlines);
    EXPECT_GT(baseline.fgSuccessRatio(), 0.35);
    EXPECT_LT(baseline.fgSuccessRatio(), 0.85);
}

TEST_F(EndToEndTest, DirigentEnforcesQoS)
{
    auto mix = workload::makeMix({"ferret"},
                                 workload::BgSpec::single("rs"));
    auto baseline = runner_.run(mix, core::Scheme::Baseline, {});
    auto deadlines = runner_.deadlinesFromBaseline(baseline);
    applyDeadlines(baseline, deadlines);

    auto dirigent = runner_.run(mix, core::Scheme::Dirigent, deadlines);
    // Near-perfect deadline success (paper: > 99% average).
    EXPECT_GE(dirigent.fgSuccessRatio(), 0.9);
    EXPECT_GT(dirigent.fgSuccessRatio(),
              baseline.fgSuccessRatio() + 0.1);
    // Large variance reduction (paper: 85% σ reduction on average).
    EXPECT_LT(stdRatio(dirigent, baseline), 0.5);
    // At modest BG throughput cost (paper: 9% loss).
    EXPECT_GT(bgThroughputRatio(dirigent, baseline), 0.7);
}

TEST_F(EndToEndTest, RunAllSchemesProducesPaperOrdering)
{
    auto mix = workload::makeMix({"streamcluster"},
                                 workload::BgSpec::single("pca"));
    auto results = runner_.runAllSchemes(mix);
    ASSERT_EQ(results.size(), 5u);

    const auto &baseline = results[0];
    const auto &staticFreq = results[1];
    const auto &staticBoth = results[2];
    const auto &dirigentFreq = results[3];
    const auto &dirigent = results[4];

    // Managed schemes beat Baseline on FG success.
    for (size_t i = 1; i < 5; ++i)
        EXPECT_GT(results[i].fgSuccessRatio(),
                  baseline.fgSuccessRatio());

    // Dirigent delivers more BG throughput than the static schemes.
    EXPECT_GT(bgThroughputRatio(dirigent, baseline),
              bgThroughputRatio(staticFreq, baseline));
    EXPECT_GT(bgThroughputRatio(dirigent, baseline),
              bgThroughputRatio(staticBoth, baseline));
    // Fine-grain control alone already beats static throttling.
    EXPECT_GT(bgThroughputRatio(dirigentFreq, baseline),
              bgThroughputRatio(staticFreq, baseline));

    // Variance: Dirigent crushes the Baseline spread.
    EXPECT_LT(stdRatio(dirigent, baseline), 0.6);
}

TEST_F(EndToEndTest, ObserverPredictionsAreAccurate)
{
    auto mix = workload::makeMix({"raytrace"},
                                 workload::BgSpec::single("rs"));
    RunOptions opts;
    opts.attachObserver = true;
    auto res = runner_.run(mix, core::Scheme::Baseline, {}, opts);
    ASSERT_GE(res.midpointSamples.size(), 10u);
    // Paper: ~2–3% typical midpoint error for non-streamcluster mixes.
    EXPECT_LT(res.predictionError(), 0.08);
}

TEST_F(EndToEndTest, ProfileCacheReuses)
{
    const core::Profile &a = runner_.profiles().get("fluidanimate");
    const core::Profile &b = runner_.profiles().get("fluidanimate");
    EXPECT_EQ(&a, &b);
    EXPECT_GE(a.size(), 90u);
}

TEST_F(EndToEndTest, RotateMixRuns)
{
    auto mix = workload::makeMix(
        {"bodytrack"}, workload::BgSpec::rotate("libquantum", "soplex"));
    auto baseline = runner_.run(mix, core::Scheme::Baseline, {});
    EXPECT_EQ(baseline.total, 20u);
    EXPECT_GT(baseline.fgDurationStd() / baseline.fgDurationMean(),
              0.03);
}

TEST_F(EndToEndTest, MultiFgMixRuns)
{
    auto mix = workload::makeMix({"ferret", "ferret"},
                                 workload::BgSpec::single("bwaves"));
    auto results = runner_.run(mix, core::Scheme::Baseline, {});
    EXPECT_EQ(results.perFgDurations.size(), 2u);
    EXPECT_EQ(results.total, 40u); // 20 measured per FG process
}

TEST_F(EndToEndTest, ResultsAreDeterministic)
{
    auto mix = workload::makeMix({"fluidanimate"},
                                 workload::BgSpec::single("pca"));
    ExperimentRunner r1(fastConfig());
    ExperimentRunner r2(fastConfig());
    auto a = r1.run(mix, core::Scheme::Baseline, {});
    auto b = r2.run(mix, core::Scheme::Baseline, {});
    ASSERT_EQ(a.perFgDurations[0].size(), b.perFgDurations[0].size());
    for (size_t i = 0; i < a.perFgDurations[0].size(); ++i)
        EXPECT_DOUBLE_EQ(a.perFgDurations[0][i],
                         b.perFgDurations[0][i]);
    EXPECT_DOUBLE_EQ(a.bgInstructions, b.bgInstructions);
}

} // namespace
} // namespace dirigent::harness
