/**
 * @file
 * Randomized end-to-end stress: seeded random workload mixes (random
 * FG set, random BG spec) must all complete, and Dirigent must never
 * do worse than Baseline on deadline success.
 */

#include <gtest/gtest.h>

#include "common/random.h"
#include "harness/experiment.h"
#include "workload/benchmarks.h"
#include "workload/mix.h"

namespace dirigent::harness {
namespace {

workload::WorkloadMix
randomMix(Rng &rng)
{
    const auto &lib = workload::BenchmarkLibrary::instance();
    const std::vector<std::string> fgNames = {
        "bodytrack", "ferret", "fluidanimate", "raytrace",
        "streamcluster"};
    const std::vector<std::string> bgNames = {"bwaves", "pca", "rs"};
    auto pairs = lib.rotatePairs();

    size_t nFg = 1 + rng.below(3);
    std::vector<std::string> fgs;
    for (size_t i = 0; i < nFg; ++i)
        fgs.push_back(fgNames[rng.below(fgNames.size())]);

    workload::BgSpec bg;
    if (rng.chance(0.5)) {
        bg = workload::BgSpec::single(bgNames[rng.below(bgNames.size())]);
    } else {
        const auto &[a, b] = pairs[rng.below(pairs.size())];
        bg = workload::BgSpec::rotate(a, b);
    }
    return workload::makeMix(fgs, bg);
}

class RandomMixTest : public testing::TestWithParam<uint64_t>
{
};

TEST_P(RandomMixTest, DirigentNeverWorseThanBaseline)
{
    Rng rng(GetParam());
    HarnessConfig cfg;
    cfg.executions = 10;
    cfg.warmup = 2;
    cfg.seed = GetParam() * 1000003;
    ExperimentRunner runner(cfg);

    auto mix = randomMix(rng);
    SCOPED_TRACE(mix.name);

    auto baseline = runner.run(mix, core::Scheme::Baseline, {});
    auto deadlines = runner.deadlinesFromBaseline(baseline);
    applyDeadlines(baseline, deadlines);
    auto dirigent = runner.run(mix, core::Scheme::Dirigent, deadlines);

    EXPECT_GE(dirigent.fgSuccessRatio(),
              baseline.fgSuccessRatio() - 0.05);
    EXPECT_GE(dirigent.fgSuccessRatio(), 0.8);
    EXPECT_GT(bgThroughputRatio(dirigent, baseline), 0.5);
    // All FG processes produced the requested executions.
    for (const auto &durations : dirigent.perFgDurations)
        EXPECT_EQ(durations.size(), 10u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMixTest,
                         testing::Range(uint64_t(1), uint64_t(7)));

} // namespace
} // namespace dirigent::harness
