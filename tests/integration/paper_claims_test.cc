/**
 * @file
 * Small-scale checks of specific sentence-level claims from the paper,
 * beyond the figure-level reproductions in bench/.
 */

#include <gtest/gtest.h>

#include "dirigent/profiler.h"
#include "harness/experiment.h"
#include "machine/cpufreq.h"
#include "workload/benchmarks.h"
#include "workload/mix.h"

namespace dirigent {
namespace {

TEST(PaperClaimsTest, SamplingGives100PlusSegmentsForEveryFg)
{
    // §4.2: "This sampling period provides 100 or more segments in all
    // the FG applications we test."
    core::ProfilerConfig pcfg;
    pcfg.executions = 1;
    core::OfflineProfiler profiler(pcfg);
    const auto &lib = workload::BenchmarkLibrary::instance();
    for (const char *fg : {"bodytrack", "ferret", "fluidanimate",
                           "raytrace", "streamcluster"}) {
        core::Profile profile =
            profiler.profileAlone(lib.get(fg), machine::MachineConfig{});
        EXPECT_GE(profile.size(), 100u) << fg;
    }
}

TEST(PaperClaimsTest, NineFrequencyStepsDirigentUsesFive)
{
    // §5.1: "9 frequency steps are available for throttling
    // (1.2–2.0 GHz, though Dirigent uses just 5 equi-spaced
    // frequencies)."
    machine::MachineConfig cfg;
    machine::Machine machine(cfg);
    sim::Engine engine(machine, cfg.maxQuantum);
    machine::CpuFreqGovernor governor(machine, engine);
    EXPECT_EQ(governor.numGrades(), 9u);
    auto five = governor.equispacedGrades(5);
    ASSERT_EQ(five.size(), 5u);
    const double expected[] = {1.2, 1.4, 1.6, 1.8, 2.0};
    for (size_t i = 0; i < five.size(); ++i)
        EXPECT_NEAR(governor.gradeFreq(five[i]).ghz(), expected[i],
                    1e-9);
}

TEST(PaperClaimsTest, CacheGeometryMatchesTestbed)
{
    // §5.1: 15 MB L3 with Intel CAT; 4×DDR4-2133.
    machine::MachineConfig cfg;
    EXPECT_DOUBLE_EQ(cfg.cache.capacity(), 15.0 * 1024 * 1024);
    EXPECT_EQ(cfg.numCores, 6u);
    EXPECT_NEAR(cfg.maxFreq.ghz(), 2.0, 1e-12);
}

TEST(PaperClaimsTest, RuntimeOverheadBudgetUnder100us)
{
    // §4.2: "each Dirigent invocation requires on average less than
    // 100 µs (including predictor and throttler)" — the modelled
    // per-invocation cost charged to the shared core honours that.
    core::RuntimeConfig rcfg;
    EXPECT_LT(rcfg.invocationOverhead.us(), 100.0);
    EXPECT_GT(rcfg.invocationOverhead.us(), 0.0);
}

TEST(PaperClaimsTest, DeadlineFormulaAndThresholds)
{
    // §5.4: deadline = µ_Baseline + 0.3 σ_Baseline; §4.3: act when
    // > 2 % ahead, pause only when > 10 % behind, decide every 5
    // prediction segments.
    harness::HarnessConfig hcfg;
    EXPECT_DOUBLE_EQ(hcfg.deadlineSigmaFactor, 0.3);
    core::RuntimeConfig rcfg;
    EXPECT_DOUBLE_EQ(rcfg.fine.aheadThreshold, 0.02);
    EXPECT_DOUBLE_EQ(rcfg.fine.pauseThreshold, 0.10);
    EXPECT_EQ(rcfg.decisionPeriodTicks, 5u);
    EXPECT_DOUBLE_EQ(rcfg.predictor.penaltyEmaWeight, 0.2);
    EXPECT_DOUBLE_EQ(rcfg.samplingPeriod.ms(), 5.0);
}

TEST(PaperClaimsTest, FortySamplesStillPredictAccurately)
{
    // §4.2: "even 40 samples per execution of the FG task tested
    // provide for accurate completion-time predictions."
    harness::HarnessConfig cfg;
    cfg.executions = 15;
    cfg.warmup = 3;
    // raytrace ≈ 0.6 s standalone → 15 ms period ≈ 40 samples.
    cfg.profiler.samplingPeriod = Time::ms(15.0);
    cfg.runtime.samplingPeriod = Time::ms(15.0);
    harness::ExperimentRunner runner(cfg);
    auto mix = workload::makeMix({"raytrace"},
                                 workload::BgSpec::single("pca"));
    harness::RunOptions opts;
    opts.attachObserver = true;
    auto res = runner.run(mix, core::Scheme::Baseline, {}, opts);
    EXPECT_LT(res.predictionError(), 0.06);
}

TEST(PaperClaimsTest, FgTasksYieldWhenDeadlineLoose)
{
    // §4.3: "If a FG task is expected to complete before its target
    // time, it is deprioritized and BG tasks can achieve higher
    // throughput." With a loose deadline, Dirigent's BG throughput
    // approaches unmanaged Baseline.
    harness::HarnessConfig cfg;
    cfg.executions = 12;
    cfg.warmup = 2;
    harness::ExperimentRunner runner(cfg);
    auto mix = workload::makeMix({"fluidanimate"},
                                 workload::BgSpec::single("bwaves"));
    auto baseline = runner.run(mix, core::Scheme::Baseline, {});
    std::map<std::string, Time> loose = {
        {"fluidanimate",
         Time::sec(baseline.fgDurationMean() * 1.5)}};
    auto dirigent = runner.run(mix, core::Scheme::Dirigent, loose);
    EXPECT_GT(harness::bgThroughputRatio(dirigent, baseline), 0.92);
    EXPECT_DOUBLE_EQ(dirigent.fgSuccessRatio(), 1.0);
}

TEST(PaperClaimsTest, StaticSchemesSacrificeBgThroughput)
{
    // §5.4: "while the (semi-)static mechanisms significantly improve
    // FG completion rate … BG performance is severely degraded."
    harness::HarnessConfig cfg;
    cfg.executions = 20;
    cfg.warmup = 3;
    harness::ExperimentRunner runner(cfg);
    auto mix = workload::makeMix({"streamcluster"},
                                 workload::BgSpec::single("pca")); // heavy
    auto baseline = runner.run(mix, core::Scheme::Baseline, {});
    auto deadlines = runner.deadlinesFromBaseline(baseline);
    applyDeadlines(baseline, deadlines);
    auto staticFreq =
        runner.run(mix, core::Scheme::StaticFreq, deadlines);
    EXPECT_GE(staticFreq.fgSuccessRatio(),
              baseline.fgSuccessRatio());
    EXPECT_LT(harness::bgThroughputRatio(staticFreq, baseline), 0.85);
}

} // namespace
} // namespace dirigent
