/**
 * @file
 * Randomized property tests: invariants that must hold for arbitrary
 * (seeded) inputs — predictor observation-cadence independence, cache
 * conservation laws, DRAM monotonicity, event-queue ordering under
 * random schedules, and confidence-interval coverage.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "common/stats.h"
#include "dirigent/predictor.h"
#include "mem/cache.h"
#include "mem/dram.h"
#include "sim/event_queue.h"

namespace dirigent {
namespace {

// ---------------------------------------------------------------------
// Predictor: the segment penalties it learns are independent of how
// the observations happen to be batched.
// ---------------------------------------------------------------------

core::Profile
uniformProfile(size_t n)
{
    std::vector<core::ProfileSegment> segs(
        n, core::ProfileSegment{1e6, Time::ms(5.0)});
    return core::Profile("fuzz", Time::ms(5.0), segs);
}

class PredictorCadenceFuzz : public testing::TestWithParam<uint64_t>
{
};

TEST_P(PredictorCadenceFuzz, PenaltiesIndependentOfObservationBatching)
{
    Rng rng(GetParam());
    core::Profile profile = uniformProfile(50);
    const double slowdown = 1.0 + rng.uniform(0.0, 1.5);
    const double totalTime = 50 * 5e-3 * slowdown;

    // Reference: observe exactly at every segment boundary.
    core::Predictor exact(&profile);
    exact.beginExecution(Time());
    for (size_t i = 1; i <= 50; ++i)
        exact.observe(Time::sec(double(i) * 5e-3 * slowdown),
                      double(i) * 1e6);
    exact.endExecution(Time::sec(totalTime), 50e6);

    // Fuzzed: observe at random times along the same linear trajectory.
    core::Predictor fuzzed(&profile);
    fuzzed.beginExecution(Time());
    double t = 0.0;
    while (t < totalTime) {
        t = std::min(totalTime, t + rng.uniform(1e-3, 20e-3));
        double progress = std::min(50e6, t / slowdown / 5e-3 * 1e6);
        fuzzed.observe(Time::sec(t), progress);
    }
    fuzzed.endExecution(Time::sec(totalTime), 50e6);

    // Per-segment penalties agree (progress is linear, so boundary
    // interpolation is exact regardless of cadence).
    for (size_t i = 0; i < 50; ++i) {
        EXPECT_NEAR(fuzzed.penaltyAverage(i), exact.penaltyAverage(i),
                    1e-9)
            << "segment " << i << " slowdown " << slowdown;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredictorCadenceFuzz,
                         testing::Range(uint64_t(1), uint64_t(9)));

// ---------------------------------------------------------------------
// Cache: conservation and bounds under random traffic/partitions.
// ---------------------------------------------------------------------

class CacheFuzz : public testing::TestWithParam<uint64_t>
{
};

TEST_P(CacheFuzz, OccupancyBoundsHoldUnderRandomTraffic)
{
    Rng rng(GetParam());
    mem::CacheConfig cfg;
    cfg.numWays = 8;
    cfg.bytesPerWay = 4096.0;
    const unsigned clients = 4;
    mem::SharedCache cache(cfg, clients);

    std::vector<workload::Phase> phases(clients);
    std::vector<Bytes> caps(clients);
    for (unsigned s = 0; s < clients; ++s) {
        phases[s].name = "f";
        phases[s].instructions = 1e9;
        phases[s].llcApki = 10.0;
        phases[s].workingSet = rng.uniform(2048.0, 40960.0);
        phases[s].maxHitRatio = rng.uniform(0.3, 0.95);
        caps[s] = phases[s].workingSet;
    }

    for (int round = 0; round < 400; ++round) {
        // Occasionally repartition randomly.
        if (rng.chance(0.05)) {
            unsigned split = unsigned(rng.below(7)) + 1;
            for (unsigned s = 0; s < clients; ++s)
                cache.setWayMask(s, s % 2 == 0
                                        ? mem::wayRange(0, split)
                                        : mem::wayRange(split, 8));
        }
        if (rng.chance(0.03))
            cache.flush(unsigned(rng.below(clients)));
        for (unsigned s = 0; s < clients; ++s) {
            double accesses = rng.uniform(0.0, 300.0);
            double misses = cache.access(s, phases[s], accesses);
            EXPECT_GE(misses, 0.0);
            EXPECT_LE(misses, accesses + 1e-9);
        }
        cache.commit(caps);

        // Invariants: way occupancy within capacity; client occupancy
        // within working set; all occupancies non-negative.
        for (unsigned w = 0; w < 8; ++w)
            EXPECT_LE(cache.wayOccupancy(w), cfg.bytesPerWay + 1e-6);
        for (unsigned s = 0; s < clients; ++s) {
            EXPECT_LE(cache.occupancy(s), caps[s] + 1e-6);
            EXPECT_GE(cache.occupancy(s), 0.0);
            double hit = cache.hitRatio(s, phases[s]);
            EXPECT_GE(hit, 0.0);
            EXPECT_LE(hit, phases[s].maxHitRatio + 1e-12);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheFuzz,
                         testing::Range(uint64_t(10), uint64_t(16)));

// ---------------------------------------------------------------------
// DRAM: latency stays within [base, base × cap] whatever the demand.
// ---------------------------------------------------------------------

class DramFuzz : public testing::TestWithParam<uint64_t>
{
};

TEST_P(DramFuzz, LatencyAlwaysWithinBounds)
{
    Rng rng(GetParam());
    mem::DramConfig cfg;
    mem::DramModel dram(cfg);
    for (int round = 0; round < 1000; ++round) {
        dram.recordDemand(rng.uniform(0.0, 5e6));
        dram.update(Time::us(rng.uniform(10.0, 200.0)));
        EXPECT_GE(dram.latency().sec(),
                  cfg.baseLatency.sec() - 1e-15);
        EXPECT_LE(dram.latency().sec(),
                  cfg.baseLatency.sec() * cfg.maxLatencyFactor + 1e-15);
        EXPECT_GE(dram.utilization(), 0.0);
        EXPECT_LE(dram.utilization(), cfg.maxUtilization + 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DramFuzz,
                         testing::Range(uint64_t(20), uint64_t(24)));

// ---------------------------------------------------------------------
// Event queue: random schedules fire in nondecreasing time order.
// ---------------------------------------------------------------------

class EventQueueFuzz : public testing::TestWithParam<uint64_t>
{
};

TEST_P(EventQueueFuzz, FiringOrderIsNondecreasing)
{
    Rng rng(GetParam());
    sim::EventQueue queue;
    std::vector<double> fired;
    std::vector<sim::EventId> ids;
    for (int i = 0; i < 300; ++i) {
        double when = rng.uniform(0.0, 1.0);
        ids.push_back(queue.schedule(
            Time::sec(when), [&fired, when] { fired.push_back(when); }));
    }
    // Cancel a random quarter.
    size_t cancelled = 0;
    for (const auto &id : ids)
        if (rng.chance(0.25) && queue.cancel(id))
            ++cancelled;
    // Drain in random step sizes.
    double now = 0.0;
    while (!queue.empty()) {
        now += rng.uniform(0.0, 0.2);
        queue.runDue(Time::sec(now));
    }
    EXPECT_EQ(fired.size(), 300 - cancelled);
    EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueFuzz,
                         testing::Range(uint64_t(30), uint64_t(36)));

// ---------------------------------------------------------------------
// Confidence intervals: empirical coverage of the t interval.
// ---------------------------------------------------------------------

TEST(ConfidenceIntervalTest, KnownValues)
{
    // n=4, mean 5, sample σ = √(20/3)·… — checked against a hand
    // computation: samples {2,4,6,8}: mean 5, sample sd √(20/3)≈2.582,
    // se 1.291, t₃=3.182 → half ≈ 4.108.
    auto ci = meanConfidence({2.0, 4.0, 6.0, 8.0}, 0.95);
    EXPECT_DOUBLE_EQ(ci.mean, 5.0);
    EXPECT_NEAR(ci.half, 4.108, 0.01);
    EXPECT_NEAR(ci.lo, 0.892, 0.01);
    EXPECT_NEAR(ci.hi, 9.108, 0.01);
}

TEST(ConfidenceIntervalTest, DegenerateInputs)
{
    auto empty = meanConfidence({}, 0.95);
    EXPECT_DOUBLE_EQ(empty.mean, 0.0);
    EXPECT_DOUBLE_EQ(empty.half, 0.0);
    auto single = meanConfidence({3.0}, 0.95);
    EXPECT_DOUBLE_EQ(single.mean, 3.0);
    EXPECT_DOUBLE_EQ(single.lo, 3.0);
}

TEST(ConfidenceIntervalTest, EmpiricalCoverageNearNominal)
{
    // Draw many n=10 normal samples; the 95% interval should contain
    // the true mean ~95% of the time.
    Rng rng(404);
    int covered = 0;
    const int trials = 2000;
    for (int t = 0; t < trials; ++t) {
        std::vector<double> sample;
        for (int i = 0; i < 10; ++i)
            sample.push_back(rng.normal(7.0, 2.0));
        auto ci = meanConfidence(sample, 0.95);
        if (ci.lo <= 7.0 && 7.0 <= ci.hi)
            ++covered;
    }
    EXPECT_NEAR(double(covered) / trials, 0.95, 0.02);
}

TEST(ConfidenceIntervalTest, WiderAtHigherConfidence)
{
    std::vector<double> sample = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
    EXPECT_LT(meanConfidence(sample, 0.90).half,
              meanConfidence(sample, 0.95).half);
    EXPECT_LT(meanConfidence(sample, 0.95).half,
              meanConfidence(sample, 0.99).half);
}

TEST(ConfidenceIntervalTest, ShrinksWithSampleSize)
{
    Rng rng(505);
    std::vector<double> small, large;
    for (int i = 0; i < 8; ++i)
        small.push_back(rng.normal(0.0, 1.0));
    for (int i = 0; i < 200; ++i)
        large.push_back(rng.normal(0.0, 1.0));
    EXPECT_LT(meanConfidence(large).half, meanConfidence(small).half);
}

} // namespace
} // namespace dirigent
