/**
 * @file
 * Dispatcher unit tests: the modeled node queue, all four routing
 * policies (including the JSQ least-assigned tie-break that makes an
 * idle fleet degenerate to round-robin), seeded determinism of the
 * randomized policies, and splitArrivals' conservation / slot-rotation
 * / horizon contracts.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "cluster/dispatcher.h"
#include "serve/arrival.h"

namespace dirigent::cluster {
namespace {

NodeModel
model(double serviceSec, unsigned slots = 1, double weight = 1.0)
{
    NodeModel m;
    m.slots = slots;
    m.serviceEstimateSec = serviceSec;
    m.weight = weight;
    return m;
}

std::vector<NodeModel>
uniformFleet(size_t nodes, double serviceSec = 1.0)
{
    return std::vector<NodeModel>(nodes, model(serviceSec));
}

TEST(NodeLoadModelTest, DrainsCompletedRequests)
{
    NodeLoadModel load(model(1.0));
    EXPECT_EQ(load.depth(Time::sec(0.0)), 0u);
    load.assign(Time::sec(0.0)); // finishes at t=1
    EXPECT_EQ(load.depth(Time::sec(0.5)), 1u);
    EXPECT_EQ(load.depth(Time::sec(1.0)), 0u); // <= now drains
}

TEST(NodeLoadModelTest, BacklogSerializesRequests)
{
    NodeLoadModel load(model(1.0));
    load.assign(Time::sec(0.0)); // finishes at 1
    load.assign(Time::sec(0.0)); // queues: finishes at 2
    load.assign(Time::sec(0.0)); // queues: finishes at 3
    EXPECT_EQ(load.depth(Time::sec(0.5)), 3u);
    EXPECT_EQ(load.depth(Time::sec(1.5)), 2u);
    EXPECT_EQ(load.depth(Time::sec(2.5)), 1u);
    EXPECT_EQ(load.depth(Time::sec(3.0)), 0u);
    // An idle gap resets the backlog to the arrival time.
    load.assign(Time::sec(10.0)); // finishes at 11, not 4
    EXPECT_EQ(load.depth(Time::sec(10.5)), 1u);
    EXPECT_EQ(load.depth(Time::sec(11.0)), 0u);
}

TEST(NodeLoadModelTest, SlotsScaleTheServiceRate)
{
    NodeLoadModel load(model(1.0, /*slots=*/2));
    load.assign(Time::sec(0.0)); // effective service 0.5s
    EXPECT_EQ(load.depth(Time::sec(0.25)), 1u);
    EXPECT_EQ(load.depth(Time::sec(0.5)), 0u);
}

TEST(NodeLoadModelTest, DiesOnNonPositiveServiceEstimate)
{
    EXPECT_DEATH(NodeLoadModel(model(0.0)), "service estimate");
    EXPECT_DEATH(NodeLoadModel(model(-1.0)), "service estimate");
}

TEST(DispatcherTest, DiesOnEmptyFleet)
{
    EXPECT_DEATH(makeDispatcher(DispatchPolicy::RoundRobin, {}, 1),
                 "at least one node");
}

TEST(DispatcherTest, RoundRobinCycles)
{
    RoundRobinDispatcher rr(uniformFleet(3));
    std::vector<unsigned> picks;
    for (int i = 0; i < 7; ++i)
        picks.push_back(rr.route(Time::sec(double(i))));
    EXPECT_EQ(picks, (std::vector<unsigned>{0, 1, 2, 0, 1, 2, 0}));
    EXPECT_EQ(rr.assigned(), (std::vector<uint64_t>{3, 2, 2}));
}

TEST(DispatcherTest, JsqPicksTheShortestModeledQueue)
{
    // Two nodes, 1s service, four back-to-back arrivals at t=0:
    // depths force strict alternation (the fourth pick sees node0 at
    // depth 2 vs node1 at depth 1).
    JoinShortestQueueDispatcher jsq(uniformFleet(2));
    std::vector<unsigned> picks;
    for (int i = 0; i < 4; ++i)
        picks.push_back(jsq.route(Time::sec(0.0)));
    EXPECT_EQ(picks, (std::vector<unsigned>{0, 1, 0, 1}));
}

TEST(DispatcherTest, JsqDegeneratesToRoundRobinWhenIdle)
{
    // Arrivals spaced wider than the service time: every modeled
    // depth is 0 at decision time, so the least-assigned tie-break
    // must spread load exactly like round-robin instead of funnelling
    // everything to node 0.
    JoinShortestQueueDispatcher jsq(uniformFleet(4, 0.1));
    RoundRobinDispatcher rr(uniformFleet(4, 0.1));
    for (int i = 0; i < 12; ++i) {
        Time t = Time::sec(double(i));
        EXPECT_EQ(jsq.route(t), rr.route(t)) << "arrival " << i;
    }
    EXPECT_EQ(jsq.assigned(), (std::vector<uint64_t>{3, 3, 3, 3}));
}

TEST(DispatcherTest, JsqPrefersTheFasterNodeUnderLoad)
{
    // Node 1 drains each request before the next arrival while node 0
    // needs 16 inter-arrival gaps per request, so node 0's modeled
    // queue stays deep and node 1 must absorb almost everything.
    JoinShortestQueueDispatcher jsq({model(4.0), model(0.25)});
    for (int i = 0; i < 40; ++i)
        jsq.route(Time::sec(0.25 * double(i)));
    EXPECT_GT(jsq.assigned()[1], 2 * jsq.assigned()[0]);
}

TEST(DispatcherTest, WslackSamplesProportionallyToWeight)
{
    std::vector<NodeModel> fleet = {model(1.0, 1, 3.0),
                                    model(1.0, 1, 1.0)};
    auto wslack =
        makeDispatcher(DispatchPolicy::SlackWeighted, fleet, 42);
    for (int i = 0; i < 4000; ++i)
        wslack->route(Time::sec(0.001 * double(i)));
    double share =
        double(wslack->assigned()[0]) /
        double(wslack->assigned()[0] + wslack->assigned()[1]);
    EXPECT_NEAR(share, 0.75, 0.05);
}

TEST(DispatcherTest, WslackClampsNegativeWeightsToZero)
{
    std::vector<NodeModel> fleet = {model(1.0, 1, 1.0),
                                    model(1.0, 1, -5.0)};
    auto wslack =
        makeDispatcher(DispatchPolicy::SlackWeighted, fleet, 7);
    for (int i = 0; i < 200; ++i)
        wslack->route(Time::sec(double(i)));
    EXPECT_EQ(wslack->assigned()[0], 200u);
    EXPECT_EQ(wslack->assigned()[1], 0u);
}

TEST(DispatcherTest, WslackDiesWhenEveryWeightIsNonPositive)
{
    std::vector<NodeModel> fleet = {model(1.0, 1, 0.0),
                                    model(1.0, 1, -1.0)};
    EXPECT_DEATH(
        makeDispatcher(DispatchPolicy::SlackWeighted, fleet, 1),
        "weight");
}

TEST(DispatcherTest, PowerOfTwoProbesDistinctNodes)
{
    // With two nodes the two probes always cover both, so "shorter
    // queue wins" balances a back-to-back burst perfectly.
    auto po2 = makeDispatcher(DispatchPolicy::PowerOfTwoChoices,
                              uniformFleet(2, 1000.0), 99);
    for (int i = 0; i < 100; ++i)
        po2->route(Time::sec(0.0));
    EXPECT_EQ(po2->assigned()[0], 50u);
    EXPECT_EQ(po2->assigned()[1], 50u);
}

TEST(DispatcherTest, SingleNodeFleetRoutesEverythingToIt)
{
    for (DispatchPolicy policy : allDispatchPolicies()) {
        SCOPED_TRACE(dispatchPolicyName(policy));
        auto d = makeDispatcher(policy, uniformFleet(1), 5);
        for (int i = 0; i < 10; ++i)
            EXPECT_EQ(d->route(Time::sec(double(i))), 0u);
        EXPECT_EQ(d->assigned()[0], 10u);
    }
}

TEST(DispatcherTest, SeededPoliciesReplayFromTheirSeed)
{
    for (DispatchPolicy policy : {DispatchPolicy::SlackWeighted,
                                  DispatchPolicy::PowerOfTwoChoices}) {
        SCOPED_TRACE(dispatchPolicyName(policy));
        auto run = [&](uint64_t seed) {
            auto d = makeDispatcher(policy, uniformFleet(4), seed);
            std::vector<unsigned> picks;
            for (int i = 0; i < 64; ++i)
                picks.push_back(d->route(Time::sec(0.25 * double(i))));
            return picks;
        };
        EXPECT_EQ(run(1234), run(1234));
        EXPECT_NE(run(1234), run(4321));
    }
}

TEST(DispatcherTest, RouteMaintainsModeledDepthAndCounters)
{
    JoinShortestQueueDispatcher jsq(uniformFleet(2));
    EXPECT_EQ(jsq.modeledDepth(0, Time::sec(0.0)), 0u);
    unsigned node = jsq.route(Time::sec(0.0));
    EXPECT_EQ(jsq.modeledDepth(node, Time::sec(0.5)), 1u);
    uint64_t total = std::accumulate(jsq.assigned().begin(),
                                     jsq.assigned().end(), uint64_t(0));
    EXPECT_EQ(total, 1u);
}

TEST(SplitArrivalsTest, ConservesEveryRequest)
{
    serve::ArrivalSpec spec;
    spec.rate = 5.0;
    auto stream = serve::makeArrivalProcess(spec, 77);
    RoundRobinDispatcher rr(uniformFleet(3));
    DispatchPlan plan = splitArrivals(*stream, Time::sec(10.0), rr);

    EXPECT_GT(plan.generated, 0u);
    uint64_t assigned = std::accumulate(
        plan.assigned.begin(), plan.assigned.end(), uint64_t(0));
    EXPECT_EQ(assigned, plan.generated);
    uint64_t traced = 0;
    for (const auto &node : plan.slotArrivals)
        for (const auto &slot : node)
            traced += slot.size();
    EXPECT_EQ(traced, plan.generated);
}

TEST(SplitArrivalsTest, HorizonIsInclusive)
{
    serve::TraceArrivals trace(
        {Time::sec(1.0), Time::sec(2.0), Time::sec(3.0)});
    RoundRobinDispatcher rr(uniformFleet(2));
    DispatchPlan plan = splitArrivals(trace, Time::sec(2.0), rr);
    EXPECT_EQ(plan.generated, 2u); // t=2 in, t=3 out
}

TEST(SplitArrivalsTest, RotatesSlotsWithinANode)
{
    serve::TraceArrivals trace({Time::sec(1.0), Time::sec(2.0),
                                Time::sec(3.0), Time::sec(4.0)});
    RoundRobinDispatcher rr({model(1.0, /*slots=*/2)});
    DispatchPlan plan = splitArrivals(trace, Time::sec(10.0), rr);
    ASSERT_EQ(plan.slotArrivals.size(), 1u);
    ASSERT_EQ(plan.slotArrivals[0].size(), 2u);
    EXPECT_EQ(plan.slotArrivals[0][0],
              (std::vector<Time>{Time::sec(1.0), Time::sec(3.0)}));
    EXPECT_EQ(plan.slotArrivals[0][1],
              (std::vector<Time>{Time::sec(2.0), Time::sec(4.0)}));
}

TEST(SplitArrivalsTest, PerSlotTracesAreNondecreasing)
{
    serve::ArrivalSpec spec;
    spec.kind = serve::ArrivalKind::Mmpp;
    spec.rate = 2.0;
    spec.burstRate = 8.0;
    auto stream = serve::makeArrivalProcess(spec, 11);
    auto jsq = makeDispatcher(DispatchPolicy::JoinShortestQueue,
                              uniformFleet(3), 0);
    DispatchPlan plan = splitArrivals(*stream, Time::sec(20.0), *jsq);
    for (const auto &node : plan.slotArrivals)
        for (const auto &slot : node)
            for (size_t i = 1; i < slot.size(); ++i)
                EXPECT_LE(slot[i - 1], slot[i]);
}

} // namespace
} // namespace dirigent::cluster
