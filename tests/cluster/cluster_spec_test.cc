/**
 * @file
 * ClusterSpec tests: parse(format(spec)) == spec for every builtin and
 * for hand-built specs with overrides and sweep grids, hash stability,
 * policy/mix-label name mapping, structural validation, the
 * DIRIGENT_CLUSTER_FILE environment hook, and fatal() on hostile input
 * (specs are user input).
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "cluster/spec.h"

namespace dirigent::cluster {
namespace {

ClusterSpec
fullSpec()
{
    ClusterSpec spec;
    spec.name = "full";
    spec.nodes = 6;
    spec.policy = DispatchPolicy::PowerOfTwoChoices;
    spec.mix = "ferret/rs";
    spec.scheme = "Dirigent";
    spec.speed = 1.0;
    spec.serviceEstimateSec = 1.5;
    spec.sweepPolicies = {DispatchPolicy::RoundRobin,
                          DispatchPolicy::JoinShortestQueue};
    spec.sweepNodes = {2, 4, 6};
    spec.overrides[1].mix = "streamcluster/lbm";
    spec.overrides[1].speed = 0.85;
    spec.overrides[4].scheme = "Baseline";
    spec.overrides[4].faults = "plans/node4.faults";
    spec.serve.arrivals.rate = 3.0;
    spec.serve.slos = {{0.99, 12.0}};
    return spec;
}

TEST(ClusterSpecTest, PolicyNamesRoundTrip)
{
    ASSERT_EQ(allDispatchPolicies().size(), 4u);
    for (DispatchPolicy policy : allDispatchPolicies()) {
        std::string name = dispatchPolicyName(policy);
        auto back = dispatchPolicyFromName(name);
        ASSERT_TRUE(back.has_value()) << name;
        EXPECT_EQ(*back, policy);
    }
    EXPECT_EQ(dispatchPolicyName(DispatchPolicy::RoundRobin),
              std::string("rr"));
    EXPECT_EQ(dispatchPolicyName(DispatchPolicy::JoinShortestQueue),
              std::string("jsq"));
    EXPECT_EQ(dispatchPolicyName(DispatchPolicy::SlackWeighted),
              std::string("wslack"));
    EXPECT_EQ(dispatchPolicyName(DispatchPolicy::PowerOfTwoChoices),
              std::string("po2"));
    EXPECT_FALSE(dispatchPolicyFromName("random").has_value());
}

TEST(ClusterSpecTest, BuiltinsValidateAndRoundTrip)
{
    ASSERT_FALSE(builtinClusterSpecs().empty());
    for (const ClusterSpec &spec : builtinClusterSpecs()) {
        SCOPED_TRACE(spec.name);
        EXPECT_FALSE(validateClusterSpec(spec).has_value());
        EXPECT_EQ(parseClusterSpec(formatClusterSpec(spec)), spec);
    }
}

TEST(ClusterSpecTest, FindClusterSpecByName)
{
    auto pair = findClusterSpec("pair-rr");
    ASSERT_TRUE(pair.has_value());
    EXPECT_EQ(pair->nodes, 2u);
    EXPECT_EQ(pair->policy, DispatchPolicy::RoundRobin);
    EXPECT_FALSE(findClusterSpec("no-such-fleet").has_value());
}

TEST(ClusterSpecTest, FullSpecRoundTripsWithOverridesAndSweeps)
{
    ClusterSpec spec = fullSpec();
    EXPECT_FALSE(validateClusterSpec(spec).has_value());
    EXPECT_EQ(parseClusterSpec(formatClusterSpec(spec)), spec);
}

TEST(ClusterSpecTest, HashIsStableAndSensitive)
{
    EXPECT_EQ(clusterSpecHash(fullSpec()), clusterSpecHash(fullSpec()));
    ClusterSpec changed = fullSpec();
    changed.nodes = 7;
    EXPECT_NE(clusterSpecHash(fullSpec()), clusterSpecHash(changed));
    changed = fullSpec();
    changed.overrides[1].speed = 0.9;
    EXPECT_NE(clusterSpecHash(fullSpec()), clusterSpecHash(changed));
}

TEST(ClusterSpecTest, ParseAppliesDocumentedDefaults)
{
    ClusterSpec spec = parseClusterSpec("[cluster]\nname = tiny\n");
    EXPECT_EQ(spec.name, "tiny");
    EXPECT_EQ(spec.nodes, 2u);
    EXPECT_EQ(spec.policy, DispatchPolicy::RoundRobin);
    EXPECT_EQ(spec.mix, "ferret/rs");
    EXPECT_EQ(spec.scheme, "Dirigent");
    EXPECT_DOUBLE_EQ(spec.speed, 1.0);
    EXPECT_DOUBLE_EQ(spec.serviceEstimateSec, 0.0);
    EXPECT_TRUE(spec.sweepPolicies.empty());
    EXPECT_TRUE(spec.sweepNodes.empty());
    EXPECT_TRUE(spec.overrides.empty());
}

TEST(ClusterSpecTest, MixLabelsParseAndFormat)
{
    auto single = tryParseMixLabel("ferret/rs");
    ASSERT_TRUE(single.has_value());
    EXPECT_EQ(formatMixLabel(*single), "ferret/rs");

    auto rotate = tryParseMixLabel("ferret/lbm+namd");
    ASSERT_TRUE(rotate.has_value());
    EXPECT_EQ(formatMixLabel(*rotate), "ferret/lbm+namd");

    auto multi = tryParseMixLabel("ferret,streamcluster/rs");
    ASSERT_TRUE(multi.has_value());
    EXPECT_EQ(formatMixLabel(*multi), "ferret,streamcluster/rs");

    EXPECT_FALSE(tryParseMixLabel("ferret").has_value());
    EXPECT_FALSE(tryParseMixLabel("/rs").has_value());
    EXPECT_FALSE(tryParseMixLabel("ferret/").has_value());
    EXPECT_FALSE(tryParseMixLabel("nope/rs").has_value());
    EXPECT_FALSE(tryParseMixLabel("ferret/nope").has_value());
    EXPECT_FALSE(tryParseMixLabel("ferret/a+b+c").has_value());
}

TEST(ClusterSpecTest, ValidateRejectsStructuralErrors)
{
    ClusterSpec spec;
    spec.nodes = 0;
    EXPECT_TRUE(validateClusterSpec(spec).has_value());
    spec.nodes = 513;
    EXPECT_TRUE(validateClusterSpec(spec).has_value());
    spec.nodes = 2;
    spec.name.clear();
    EXPECT_TRUE(validateClusterSpec(spec).has_value());
    spec.name = "x";
    spec.speed = -1.0;
    EXPECT_TRUE(validateClusterSpec(spec).has_value());
    spec.speed = 1.0;
    spec.overrides[5] = {};
    spec.overrides[5].speed = 0.5; // index >= nodes
    EXPECT_TRUE(validateClusterSpec(spec).has_value());
    spec.overrides.clear();
    spec.serve.sweepRates = {1.0, 2.0};
    EXPECT_TRUE(validateClusterSpec(spec).has_value());
    spec.serve.sweepRates.clear();
    EXPECT_FALSE(validateClusterSpec(spec).has_value());
}

TEST(ClusterSpecTest, DiesOnUnknownKeys)
{
    EXPECT_DEATH(parseClusterSpec("[cluster]\nbogus = 1\n"),
                 "unknown key");
    EXPECT_DEATH(parseClusterSpec("[node0]\ncores = 4\n"),
                 "unknown key");
    EXPECT_DEATH(parseClusterSpec("[typo]\nx = 1\n"), "unknown key");
}

TEST(ClusterSpecTest, DiesOnBadPolicy)
{
    EXPECT_DEATH(parseClusterSpec("[cluster]\npolicy = lifo\n"),
                 "policy");
    EXPECT_DEATH(
        parseClusterSpec("[cluster]\nsweep_policies = rr,random\n"),
        "unknown policy");
}

TEST(ClusterSpecTest, DiesOnBadNodeCounts)
{
    EXPECT_DEATH(parseClusterSpec("[cluster]\nnodes = 0\n"),
                 "nodes");
    EXPECT_DEATH(parseClusterSpec("[cluster]\nnodes = 1000\n"),
                 "nodes");
    EXPECT_DEATH(
        parseClusterSpec("[cluster]\nsweep_nodes = 2,,4\n"),
        "node-count list");
    EXPECT_DEATH(
        parseClusterSpec("[cluster]\nnodes = 4\nsweep_nodes = 0\n"),
        "sweep_nodes");
}

TEST(ClusterSpecTest, DiesOnBadMixSchemeOrSpeed)
{
    EXPECT_DEATH(parseClusterSpec("[cluster]\nmix = nope/rs\n"),
                 "mix");
    EXPECT_DEATH(parseClusterSpec("[cluster]\nscheme = Nope\n"),
                 "scheme");
    EXPECT_DEATH(parseClusterSpec("[cluster]\nspeed = 32\n"),
                 "speed");
    EXPECT_DEATH(parseClusterSpec("[cluster]\nnodes = 2\n"
                                  "[node1]\nspeed = -0.5\n"),
                 "speed");
}

TEST(ClusterSpecTest, DiesOnOverrideIndexOutOfRange)
{
    EXPECT_DEATH(parseClusterSpec("[cluster]\nnodes = 2\n"
                                  "[node5]\nspeed = 0.9\n"),
                 "out of range");
}

TEST(ClusterSpecTest, DiesWhenServeRatesListedInClusterMode)
{
    EXPECT_DEATH(parseClusterSpec("[cluster]\nnodes = 2\n"
                                  "[serve]\nrates = 1,2\n"),
                 "serve.rates");
}

TEST(ClusterSpecTest, EnvClusterFilePath)
{
    unsetenv("DIRIGENT_CLUSTER_FILE");
    EXPECT_FALSE(envClusterFilePath().has_value());
    setenv("DIRIGENT_CLUSTER_FILE", "/tmp/x.cluster", 1);
    EXPECT_EQ(envClusterFilePath().value(), "/tmp/x.cluster");
    setenv("DIRIGENT_CLUSTER_FILE", "", 1);
    EXPECT_FALSE(envClusterFilePath().has_value());
    unsetenv("DIRIGENT_CLUSTER_FILE");
}

} // namespace
} // namespace dirigent::cluster
