/**
 * @file
 * Cluster-layer observability: instrumented fleet runs must write
 * span + Prometheus artifacts that are byte-identical at 1/2/4
 * executor threads, burn-rate verdicts must reach the JSONL stream
 * and the per-cell manifest, per-node fault-plan hashes must land in
 * the cluster manifest, and instrumentation must not perturb the
 * fleet's request accounting.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/spec.h"
#include "common/hash.h"
#include "exec/executor.h"
#include "fault/plan.h"
#include "obs/fleet.h"
#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/span.h"
#include "serve/driver.h"

namespace dirigent::cluster {
namespace {

harness::HarnessConfig
fastConfig()
{
    harness::HarnessConfig cfg;
    cfg.executions = 3;
    cfg.warmup = 1;
    cfg.seed = 20160402;
    return cfg;
}

/** A single rr2 cell: two nodes, one policy. */
ClusterSpec
cellSpec()
{
    ClusterSpec spec;
    spec.name = "span-cell";
    spec.nodes = 2;
    spec.policy = DispatchPolicy::RoundRobin;
    spec.serve.arrivals.rate = 2.0;
    spec.serve.horizonSec = 8.0;
    spec.serve.warmupSec = 1.0;
    spec.serve.slos = {{0.99, 15.0}};
    return spec;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

struct InstrumentedRun
{
    exec::ClusterCellResult cell;
    std::string spans;    //!< <base>.rr2.spans.json bytes
    std::string prom;     //!< <base>.rr2.prom bytes
    std::string jsonl;    //!< full JSONL stream
    std::string manifest; //!< <base>.rr2.manifest.json bytes
};

InstrumentedRun
runInstrumented(unsigned threads, const std::string &tag,
                const ClusterSpec &spec)
{
    std::string base = testing::TempDir() + "cluster_span_" + tag +
                       "_" + std::to_string(threads);
    std::string jsonlPath = base + ".jsonl";
    InstrumentedRun run;

    exec::ExecutorConfig ecfg;
    ecfg.threads = threads;
    ecfg.progress = false;
    ecfg.jsonlPath = jsonlPath;
    ecfg.spanOutBase = base;
    ecfg.metricsOutBase = base;
    {
        exec::SweepExecutor executor(fastConfig(), ecfg);
        run.cell = executor.runCluster(spec);
    }
    run.spans = readFile(base + ".rr2.spans.json");
    run.prom = readFile(base + ".rr2.prom");
    run.jsonl = readFile(jsonlPath);
    run.manifest = readFile(jsonlPath + ".rr2.manifest.json");
    return run;
}

TEST(ClusterSpanTest, InstrumentedArtifactsAreThreadCountInvariant)
{
    InstrumentedRun serial = runInstrumented(1, "threads", cellSpec());
    ASSERT_FALSE(serial.spans.empty());
    ASSERT_FALSE(serial.prom.empty());
    for (unsigned threads : {2u, 4u}) {
        SCOPED_TRACE(threads);
        InstrumentedRun other =
            runInstrumented(threads, "threads", cellSpec());
        EXPECT_EQ(other.spans, serial.spans);
        EXPECT_EQ(other.prom, serial.prom);
        EXPECT_EQ(other.jsonl, serial.jsonl);
        EXPECT_EQ(other.manifest, serial.manifest);
    }
}

TEST(ClusterSpanTest, ArtifactsCoverBothNodesAndCarryBurnRates)
{
    InstrumentedRun run = runInstrumented(2, "coverage", cellSpec());

    // Spans: parseable, cluster-seeded, node-major order.
    std::string error;
    auto doc = obs::parseJson(run.spans, &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_EQ(doc->stringOr("schema", ""), "dirigent-spans-v1");
    EXPECT_EQ(doc->stringOr("seed", ""), "20160402");
    auto spans = obs::parseSpans(*doc, &error);
    ASSERT_TRUE(spans.has_value()) << error;
    size_t logged = 0;
    for (const NodeResult &node : run.cell.nodes)
        for (const auto &slot : node.serving.perFgRequests)
            logged += slot.size();
    EXPECT_EQ(spans->size(), logged);
    bool sawNode0 = false, sawNode1 = false;
    for (const obs::Span &span : *spans) {
        sawNode0 = sawNode0 || span.node == 0;
        sawNode1 = sawNode1 || span.node == 1;
    }
    EXPECT_TRUE(sawNode0);
    EXPECT_TRUE(sawNode1);

    // Prometheus: parseable, per-node labels, byte-stable re-render.
    auto prom = obs::parsePrometheus(run.prom, &error);
    ASSERT_TRUE(prom.has_value()) << error;
    EXPECT_EQ(obs::renderPrometheus(*prom), run.prom);
    EXPECT_NE(run.prom.find("{node=\"1\"}"), std::string::npos);

    // Burn rates: one per node FG slot plus the fleet rollup, both in
    // the result and as JSONL rows.
    ASSERT_EQ(run.cell.burnRates.size(), 3u);
    EXPECT_EQ(run.cell.burnRates[0].scope, "node0/fg0");
    EXPECT_EQ(run.cell.burnRates[1].scope, "node1/fg0");
    EXPECT_EQ(run.cell.burnRates[2].scope, "fleet");
    EXPECT_EQ(run.cell.burnRates[2].total,
              run.cell.burnRates[0].total +
                  run.cell.burnRates[1].total);
    EXPECT_NE(run.jsonl.find("\"record\":\"burn_rate\""),
              std::string::npos);
    EXPECT_NE(run.jsonl.find("\"scope\":\"fleet\""), std::string::npos);

    // And the manifest round-trips them.
    auto manifestDoc = obs::parseJson(run.manifest, &error);
    ASSERT_TRUE(manifestDoc.has_value()) << error;
    obs::RunManifest manifest = obs::RunManifest::fromJson(*manifestDoc);
    ASSERT_TRUE(manifest.cluster.present);
    ASSERT_EQ(manifest.cluster.burnRates.size(), 3u);
    EXPECT_EQ(manifest.cluster.burnRates[2].scope, "fleet");
}

TEST(ClusterSpanTest, InstrumentationDoesNotPerturbTheFleet)
{
    InstrumentedRun instrumented =
        runInstrumented(2, "noperturb", cellSpec());

    exec::ExecutorConfig ecfg;
    ecfg.threads = 2;
    ecfg.progress = false;
    exec::SweepExecutor executor(fastConfig(), ecfg);
    exec::ClusterCellResult detached = executor.runCluster(cellSpec());

    EXPECT_EQ(detached.fleet.generated,
              instrumented.cell.fleet.generated);
    EXPECT_EQ(detached.fleet.completed,
              instrumented.cell.fleet.completed);
    ASSERT_EQ(detached.nodes.size(), instrumented.cell.nodes.size());
    for (size_t i = 0; i < detached.nodes.size(); ++i) {
        SCOPED_TRACE(i);
        ASSERT_EQ(detached.nodes[i].serving.perFgRequests.size(),
                  instrumented.cell.nodes[i]
                      .serving.perFgRequests.size());
        for (size_t s = 0;
             s < detached.nodes[i].serving.perFgRequests.size(); ++s)
            EXPECT_EQ(
                serve::formatRequestLog(
                    detached.nodes[i].serving.perFgRequests[s], true),
                serve::formatRequestLog(
                    instrumented.cell.nodes[i]
                        .serving.perFgRequests[s],
                    true));
    }
    // A detached run owes nothing: no burn rates were computed.
    EXPECT_TRUE(detached.burnRates.empty());
}

TEST(ClusterSpanTest, FaultPlanHashReachesTheClusterManifest)
{
    fault::FaultPlan plan;
    plan.dvfs.failProb = 0.05;
    std::string planPath =
        testing::TempDir() + "cluster_span_faults.cfg";
    {
        std::ofstream out(planPath, std::ios::trunc);
        out << fault::formatFaultPlan(plan);
    }

    ClusterSpec spec = cellSpec();
    spec.overrides[1].faults = planPath;
    InstrumentedRun run = runInstrumented(2, "faults", spec);

    uint64_t expected = fnv1a64(fault::formatFaultPlan(plan));
    ASSERT_EQ(run.cell.nodes.size(), 2u);
    EXPECT_EQ(run.cell.nodes[0].faultPlanHash, 0u);
    EXPECT_EQ(run.cell.nodes[1].faultPlanHash, expected);
    EXPECT_EQ(run.cell.nodes[1].faultsFile, planPath);

    std::string error;
    auto doc = obs::parseJson(run.manifest, &error);
    ASSERT_TRUE(doc.has_value()) << error;
    obs::RunManifest manifest = obs::RunManifest::fromJson(*doc);
    ASSERT_EQ(manifest.cluster.perNode.size(), 2u);
    EXPECT_EQ(manifest.cluster.perNode[0].faultPlanHash, 0u);
    EXPECT_EQ(manifest.cluster.perNode[1].faultPlanHash, expected);
    EXPECT_EQ(manifest.cluster.perNode[1].faultsFile, planPath);
}

} // namespace
} // namespace dirigent::cluster
