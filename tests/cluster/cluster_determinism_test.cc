/**
 * @file
 * Cluster determinism: the executor's core contract extended to
 * fleets. A cluster sweep (policy × node-count grid) must produce
 * byte-identical JSONL rows and per-cell manifests at 1, 2, and 4
 * executor threads, node configurations must be pure functions of
 * (spec, base config), and request conservation must hold in every
 * cell.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/node.h"
#include "cluster/spec.h"
#include "exec/executor.h"

namespace dirigent::cluster {
namespace {

harness::HarnessConfig
fastConfig()
{
    harness::HarnessConfig cfg;
    cfg.executions = 3;
    cfg.warmup = 1;
    cfg.seed = 20160402;
    return cfg;
}

/** A small policy × node-count grid that still exercises dispatch. */
ClusterSpec
sweepSpec()
{
    ClusterSpec spec;
    spec.name = "determinism";
    spec.nodes = 2;
    spec.policy = DispatchPolicy::RoundRobin;
    spec.sweepPolicies = {DispatchPolicy::RoundRobin,
                          DispatchPolicy::JoinShortestQueue};
    spec.sweepNodes = {1, 2};
    spec.serve.arrivals.rate = 2.0;
    spec.serve.horizonSec = 8.0;
    spec.serve.warmupSec = 1.0;
    spec.serve.slos = {{0.99, 15.0}};
    return spec;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

/**
 * Run the sweep at @p threads with a JSONL export and return every
 * thread-count-invariant artifact concatenated: the JSONL rows plus
 * each per-cell manifest (the sweep manifest is excluded — it embeds
 * wall-clock metrics by design).
 */
std::string
sweepArtifacts(unsigned threads, const std::string &tag)
{
    std::string path = testing::TempDir() + "cluster_det_" + tag +
                       "_" + std::to_string(threads) + ".jsonl";
    std::vector<std::string> manifests;
    for (const char *cell : {"rr1", "jsq1", "rr2", "jsq2"})
        manifests.push_back(path + "." + cell + ".manifest.json");
    std::remove(path.c_str());
    for (const std::string &m : manifests)
        std::remove(m.c_str());

    exec::ExecutorConfig ecfg;
    ecfg.threads = threads;
    ecfg.progress = false;
    ecfg.jsonlPath = path;
    {
        exec::SweepExecutor executor(fastConfig(), ecfg);
        auto cells = executor.runClusterSweep(sweepSpec());
        EXPECT_EQ(cells.size(), 4u);
    }

    std::string artifacts = readFile(path);
    EXPECT_FALSE(artifacts.empty()) << path;
    for (const std::string &m : manifests) {
        std::string manifest = readFile(m);
        EXPECT_FALSE(manifest.empty()) << m;
        artifacts += "\n=== " + m.substr(path.size()) + " ===\n";
        artifacts += manifest;
    }
    return artifacts;
}

TEST(ClusterDeterminismTest, SweepReplaysExactly)
{
    EXPECT_EQ(sweepArtifacts(1, "replay_a"),
              sweepArtifacts(1, "replay_b"));
}

TEST(ClusterDeterminismTest, ThreadCountDoesNotChangeArtifacts)
{
    std::string serial = sweepArtifacts(1, "threads");
    for (unsigned threads : {2u, 4u}) {
        SCOPED_TRACE(threads);
        EXPECT_EQ(sweepArtifacts(threads, "threads"), serial);
    }
}

TEST(ClusterDeterminismTest, SweepCellsFollowTheGridAndConserve)
{
    exec::ExecutorConfig ecfg;
    ecfg.threads = 2;
    ecfg.progress = false;
    exec::SweepExecutor executor(fastConfig(), ecfg);
    auto cells = executor.runClusterSweep(sweepSpec());
    ASSERT_EQ(cells.size(), 4u);

    // Node-count-major, policy-minor order.
    const std::vector<std::pair<unsigned, DispatchPolicy>> grid = {
        {1, DispatchPolicy::RoundRobin},
        {1, DispatchPolicy::JoinShortestQueue},
        {2, DispatchPolicy::RoundRobin},
        {2, DispatchPolicy::JoinShortestQueue},
    };
    for (size_t i = 0; i < cells.size(); ++i) {
        SCOPED_TRACE(i);
        EXPECT_EQ(cells[i].fleet.nodes, grid[i].first);
        EXPECT_EQ(cells[i].fleet.policy, grid[i].second);
        EXPECT_EQ(cells[i].nodes.size(), grid[i].first);
        // Conservation: the accountant already fataled if per-node
        // arrivals leaked, so generated == arrivals must hold here.
        EXPECT_EQ(cells[i].fleet.arrivals, cells[i].fleet.generated);
        EXPECT_GT(cells[i].fleet.generated, 0u);
    }

    // Calibration is shared across cells: both policy columns of the
    // same node count must see identical per-node deadlines.
    EXPECT_EQ(cells[2].nodes[0].calibration.deadlines,
              cells[3].nodes[0].calibration.deadlines);
    EXPECT_EQ(cells[2].nodes[1].calibration.deadlines,
              cells[3].nodes[1].calibration.deadlines);
}

TEST(ClusterDeterminismTest, RunClusterProducesOneCell)
{
    ClusterSpec spec = sweepSpec();
    spec.nodes = 2;
    exec::ExecutorConfig ecfg;
    ecfg.threads = 2;
    ecfg.progress = false;
    exec::SweepExecutor executor(fastConfig(), ecfg);
    auto cell = executor.runCluster(spec);
    EXPECT_EQ(cell.fleet.policy, spec.policy);
    EXPECT_EQ(cell.fleet.nodes, 2u);
    EXPECT_EQ(cell.fleet.arrivals, cell.fleet.generated);
    ASSERT_EQ(cell.nodes.size(), 2u);
    for (const NodeResult &node : cell.nodes)
        EXPECT_EQ(node.health.fgSlackSec.size(),
                  node.serving.perFgRequests.size());
}

TEST(ClusterNodeTest, ResolveAppliesOverrides)
{
    ClusterSpec spec;
    spec.nodes = 3;
    spec.mix = "ferret/rs";
    spec.scheme = "Dirigent";
    spec.overrides[1].scheme = "Baseline";
    spec.overrides[2].speed = 0.85;
    auto nodes = resolveNodes(spec);
    ASSERT_EQ(nodes.size(), 3u);
    EXPECT_EQ(nodes[0].scheme.name, "Dirigent");
    EXPECT_EQ(nodes[1].scheme.name, "Baseline");
    EXPECT_DOUBLE_EQ(nodes[1].speed, 1.0);
    EXPECT_DOUBLE_EQ(nodes[2].speed, 0.85);
    EXPECT_EQ(nodes[2].mix.fg, std::vector<std::string>{"ferret"});
}

TEST(ClusterNodeTest, NodeSeedsAreSaltedAndDeterministic)
{
    ClusterSpec spec = sweepSpec();
    auto configs = resolveNodes(spec);
    harness::HarnessConfig base = fastConfig();
    Node a0(configs[0], base);
    Node b0(configs[0], base);
    Node a1(configs[1], base);
    EXPECT_EQ(a0.harnessConfig().seed, b0.harnessConfig().seed);
    EXPECT_NE(a0.harnessConfig().seed, a1.harnessConfig().seed);
    EXPECT_NE(a0.harnessConfig().seed, base.seed);
}

TEST(ClusterNodeTest, SpeedScalesTheDvfsRange)
{
    ClusterSpec spec = sweepSpec();
    spec.overrides[1].speed = 0.5;
    auto configs = resolveNodes(spec);
    harness::HarnessConfig base = fastConfig();
    Node fast(configs[0], base);
    Node slow(configs[1], base);
    EXPECT_DOUBLE_EQ(fast.harnessConfig().machine.maxFreq.hz(),
                     base.machine.maxFreq.hz());
    EXPECT_DOUBLE_EQ(slow.harnessConfig().machine.maxFreq.hz(),
                     base.machine.maxFreq.hz() * 0.5);
    EXPECT_DOUBLE_EQ(slow.harnessConfig().machine.minFreq.hz(),
                     base.machine.minFreq.hz() * 0.5);
}

} // namespace
} // namespace dirigent::cluster
