/**
 * @file
 * Health-report and fleet-accounting invariants: Node::healthFrom's
 * slack/utilization/shed arithmetic on synthetic request logs (NaN
 * slack for idle slots, never 0), formatNodeHealth rendering, and the
 * ResourceAccountant's fold contract — index order enforced, request
 * conservation enforced, quantiles merged across nodes, imbalance and
 * utilization spread computed over the fleet.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/accountant.h"
#include "cluster/node.h"
#include "workload/mix.h"

namespace dirigent::cluster {
namespace {

serve::Request
completedRequest(double arrivedSec, double startedSec,
                 double finishedSec, size_t queueDepth = 0)
{
    serve::Request req;
    req.arrived = Time::sec(arrivedSec);
    req.started = Time::sec(startedSec);
    req.finished = Time::sec(finishedSec);
    req.queueDepth = queueDepth;
    req.outcome = serve::RequestOutcome::Completed;
    return req;
}

NodeConfig
ferretNode(unsigned index = 0)
{
    NodeConfig config;
    config.index = index;
    config.mix = workload::makeMix({"ferret"},
                                   workload::BgSpec::single("rs"));
    return config;
}

NodeCalibration
calibrationWithDeadline(double deadlineSec)
{
    NodeCalibration calibration;
    calibration.deadlines["ferret"] = Time::sec(deadlineSec);
    calibration.serviceEstimateSec = 1.0;
    calibration.slackSec = deadlineSec - 1.0;
    return calibration;
}

TEST(NodeHealthTest, SlackIsDeadlineMinusMeanServiceTime)
{
    harness::ServingRunResult run;
    // Two completions with service times 0.5s and 1.5s: mean 1.0.
    run.perFgRequests = {{completedRequest(0.0, 0.0, 0.5),
                          completedRequest(2.0, 2.0, 3.5)}};
    NodeHealth health = Node::healthFrom(
        ferretNode(3), calibrationWithDeadline(2.0), run, 10.0);
    EXPECT_EQ(health.node, 3u);
    ASSERT_EQ(health.fgSlackSec.size(), 1u);
    EXPECT_DOUBLE_EQ(health.fgSlackSec[0], 1.0);
}

TEST(NodeHealthTest, IdleSlotReportsNanSlackNotZero)
{
    harness::ServingRunResult run;
    run.perFgRequests = {{}}; // one slot, nothing completed
    NodeHealth health = Node::healthFrom(
        ferretNode(), calibrationWithDeadline(2.0), run, 10.0);
    ASSERT_EQ(health.fgSlackSec.size(), 1u);
    EXPECT_TRUE(std::isnan(health.fgSlackSec[0]));
    EXPECT_DOUBLE_EQ(health.utilization, 0.0);
}

TEST(NodeHealthTest, UtilizationIsBusyFractionOfHorizon)
{
    harness::ServingRunResult run;
    // 5s of completed service over a 10s horizon on one slot.
    run.perFgRequests = {{completedRequest(0.0, 0.0, 2.0),
                          completedRequest(2.0, 2.0, 5.0)}};
    NodeHealth health = Node::healthFrom(
        ferretNode(), calibrationWithDeadline(4.0), run, 10.0);
    EXPECT_DOUBLE_EQ(health.utilization, 0.5);
}

TEST(NodeHealthTest, QueueDepthShedRateAndAdmitLimit)
{
    harness::ServingRunResult run;
    run.perFgRequests = {{completedRequest(0.0, 0.0, 1.0, 2),
                          completedRequest(1.0, 1.0, 2.0, 4)}};
    run.arrivals = 10;
    run.dropped = 1;
    run.shed = 1;
    run.maxQueueDepth = 4;
    run.finalAdmitLimits = {2.0, 4.0};
    NodeHealth health = Node::healthFrom(
        ferretNode(), calibrationWithDeadline(3.0), run, 10.0);
    EXPECT_DOUBLE_EQ(health.meanQueueDepth, 3.0);
    EXPECT_EQ(health.maxQueueDepth, 4u);
    EXPECT_DOUBLE_EQ(health.shedRate, 0.2);
    EXPECT_DOUBLE_EQ(health.admitLimit, 3.0);
}

TEST(NodeHealthTest, FormatRendersSlackAndDegradedFlag)
{
    NodeHealth health;
    health.node = 2;
    health.fgSlackSec = {0.5, std::nan("")};
    health.utilization = 0.672;
    std::string line = formatNodeHealth(health);
    EXPECT_NE(line.find("node2:"), std::string::npos);
    EXPECT_NE(line.find("0.5"), std::string::npos);
    EXPECT_NE(line.find("n/a"), std::string::npos);
    EXPECT_EQ(line.find("DEGRADED"), std::string::npos);
    health.degraded = true;
    EXPECT_NE(formatNodeHealth(health).find("DEGRADED"),
              std::string::npos);
}

NodeResult
syntheticNode(unsigned index, uint64_t arrivals,
              std::vector<double> responseSec, double utilization,
              bool degraded = false)
{
    NodeResult node;
    node.index = index;
    node.serving.arrivals = arrivals;
    node.serving.completed = responseSec.size();
    for (double s : responseSec)
        node.serving.stats.add(s);
    node.health.utilization = utilization;
    node.health.degraded = degraded;
    return node;
}

TEST(ResourceAccountantTest, AggregatesTotalsAndMergedQuantiles)
{
    ResourceAccountant accountant(DispatchPolicy::RoundRobin, 2,
                                  {{0.5, 5.0}});
    accountant.add(syntheticNode(0, 3, {1.0, 2.0, 3.0}, 0.4));
    accountant.add(syntheticNode(1, 1, {4.0}, 0.8));
    FleetSummary fleet = accountant.finish(4);

    EXPECT_EQ(fleet.generated, 4u);
    EXPECT_EQ(fleet.arrivals, 4u);
    EXPECT_EQ(fleet.completed, 4u);
    EXPECT_DOUBLE_EQ(fleet.meanSec, 2.5);
    EXPECT_DOUBLE_EQ(fleet.p50Sec, 2.5); // merged, not per-node
    EXPECT_DOUBLE_EQ(fleet.utilizationMean, 0.6);
    EXPECT_DOUBLE_EQ(fleet.utilizationMin, 0.4);
    EXPECT_DOUBLE_EQ(fleet.utilizationMax, 0.8);
    ASSERT_EQ(fleet.verdicts.size(), 1u);
    EXPECT_TRUE(fleet.sloMet());
    EXPECT_FALSE(fleet.degraded);
}

TEST(ResourceAccountantTest, ImbalanceIsMaxOverMeanArrivals)
{
    ResourceAccountant accountant(DispatchPolicy::JoinShortestQueue, 2,
                                  {});
    accountant.add(syntheticNode(0, 30, {1.0}, 0.9));
    accountant.add(syntheticNode(1, 10, {1.0}, 0.3));
    FleetSummary fleet = accountant.finish(40);
    EXPECT_DOUBLE_EQ(fleet.imbalance, 1.5); // 30 / mean(20)
}

TEST(ResourceAccountantTest, DegradedNodePoisonsTheFleetFlag)
{
    ResourceAccountant accountant(DispatchPolicy::RoundRobin, 2, {});
    accountant.add(syntheticNode(0, 1, {1.0}, 0.5));
    accountant.add(syntheticNode(1, 1, {1.0}, 0.5, /*degraded=*/true));
    EXPECT_TRUE(accountant.finish(2).degraded);
}

TEST(ResourceAccountantTest, MissedSloIsReportedNotFatal)
{
    ResourceAccountant accountant(DispatchPolicy::RoundRobin, 1,
                                  {{0.99, 0.5}});
    accountant.add(syntheticNode(0, 2, {1.0, 2.0}, 0.5));
    FleetSummary fleet = accountant.finish(2);
    EXPECT_FALSE(fleet.sloMet());
}

TEST(ResourceAccountantTest, DiesOnOutOfOrderFold)
{
    ResourceAccountant accountant(DispatchPolicy::RoundRobin, 2, {});
    EXPECT_DEATH(accountant.add(syntheticNode(1, 1, {1.0}, 0.5)),
                 "index order");
}

TEST(ResourceAccountantTest, DiesOnTooManyNodes)
{
    ResourceAccountant accountant(DispatchPolicy::RoundRobin, 1, {});
    accountant.add(syntheticNode(0, 1, {1.0}, 0.5));
    EXPECT_DEATH(accountant.add(syntheticNode(1, 1, {1.0}, 0.5)),
                 "too many");
}

TEST(ResourceAccountantTest, DiesWhenRequestsLeakAcrossTheSplit)
{
    ResourceAccountant leaky(DispatchPolicy::RoundRobin, 1, {});
    leaky.add(syntheticNode(0, 3, {1.0}, 0.5));
    EXPECT_DEATH(leaky.finish(4), "leaked");

    ResourceAccountant partial(DispatchPolicy::RoundRobin, 2, {});
    partial.add(syntheticNode(0, 1, {1.0}, 0.5));
    EXPECT_DEATH(partial.finish(1), "folded in");
}

TEST(ResourceAccountantTest, FormatSummarizesTheFleet)
{
    ResourceAccountant accountant(DispatchPolicy::JoinShortestQueue, 2,
                                  {{0.99, 5.0}});
    accountant.add(syntheticNode(0, 2, {1.0, 2.0}, 0.5));
    accountant.add(syntheticNode(1, 2, {1.5, 2.5}, 0.7));
    std::string line = formatFleetSummary(accountant.finish(4));
    EXPECT_NE(line.find("jsq x2"), std::string::npos);
    EXPECT_NE(line.find("4 req"), std::string::npos);
    EXPECT_NE(line.find("slo=met"), std::string::npos);
}

} // namespace
} // namespace dirigent::cluster
