/**
 * @file
 * Tests of the deterministic fault injector: empty-plan passthrough,
 * counter filter semantics (drop / glitch / saturate), per-boundary
 * stream independence, and bit-exact replay from (seed, plan).
 */

#include <gtest/gtest.h>

#include <vector>

#include "fault/injector.h"

namespace dirigent::fault {
namespace {

constexpr double kSaturated = 281474976710655.0; // 2^48 - 1

TEST(FaultInjectorTest, EmptyPlanPassesEverythingThrough)
{
    FaultInjector inj(FaultPlan{}, 1234);
    for (int i = 0; i < 1000; ++i) {
        double v = double(i) * 17.5;
        EXPECT_EQ(inj.filterCounter(Channel::Progress, 0, v), v);
        EXPECT_EQ(inj.samplerStall().sec(), 0.0);
        EXPECT_FALSE(inj.samplerMissesWake());
        EXPECT_EQ(inj.callbackOverrun().sec(), 0.0);
        EXPECT_FALSE(inj.dvfsWriteFails());
        EXPECT_EQ(inj.dvfsLatencySpike().sec(), 0.0);
        EXPECT_FALSE(inj.catApplyFails());
    }
    EXPECT_EQ(inj.stats().total(), 0u);
}

TEST(FaultInjectorTest, DropReturnsPreviousValue)
{
    FaultPlan plan;
    plan.counters.dropProb = 1.0;
    FaultInjector inj(plan, 7);
    // The very first read has nothing to repeat; it passes through.
    EXPECT_EQ(inj.filterCounter(Channel::Progress, 2, 100.0), 100.0);
    // Every later read repeats the previous *true* value.
    EXPECT_EQ(inj.filterCounter(Channel::Progress, 2, 150.0), 100.0);
    EXPECT_EQ(inj.filterCounter(Channel::Progress, 2, 200.0), 150.0);
    EXPECT_GE(inj.stats().counterDrops, 2u);
}

TEST(FaultInjectorTest, DropStateIsPerChannelAndCore)
{
    FaultPlan plan;
    plan.counters.dropProb = 1.0;
    FaultInjector inj(plan, 7);
    EXPECT_EQ(inj.filterCounter(Channel::Progress, 0, 10.0), 10.0);
    // Different channel and different core each start fresh.
    EXPECT_EQ(inj.filterCounter(Channel::LlcMisses, 0, 20.0), 20.0);
    EXPECT_EQ(inj.filterCounter(Channel::Progress, 1, 30.0), 30.0);
    EXPECT_EQ(inj.filterCounter(Channel::Progress, 0, 99.0), 10.0);
}

TEST(FaultInjectorTest, SaturateReturnsAllOnes48Bit)
{
    FaultPlan plan;
    plan.counters.saturateProb = 1.0;
    FaultInjector inj(plan, 9);
    EXPECT_EQ(inj.filterCounter(Channel::LlcMisses, 0, 123.0),
              kSaturated);
    EXPECT_EQ(inj.stats().counterSaturations, 1u);
}

TEST(FaultInjectorTest, GlitchScalesTheTrueValue)
{
    FaultPlan plan;
    plan.counters.glitchProb = 1.0;
    plan.counters.glitchScale = 100.0;
    FaultInjector inj(plan, 11);
    for (int i = 0; i < 200; ++i) {
        double out = inj.filterCounter(Channel::Progress, 0, 1000.0);
        EXPECT_GE(out, 0.0);
        EXPECT_LE(out, 1000.0 * 100.0);
    }
    EXPECT_EQ(inj.stats().counterGlitches, 200u);
}

TEST(FaultInjectorTest, SamplerFaultsDrawPlausibleValues)
{
    FaultPlan plan;
    plan.sampler.stallProb = 1.0;
    plan.sampler.stallMean = Time::ms(10.0);
    plan.sampler.overrunProb = 1.0;
    plan.sampler.overrunMean = Time::ms(8.0);
    FaultInjector inj(plan, 13);
    double stallSum = 0.0, overrunSum = 0.0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        Time stall = inj.samplerStall();
        Time overrun = inj.callbackOverrun();
        EXPECT_GT(stall.sec(), 0.0);
        EXPECT_GT(overrun.sec(), 0.0);
        stallSum += stall.ms();
        overrunSum += overrun.ms();
    }
    // Exponential means within 20% at n=4000.
    EXPECT_NEAR(stallSum / n, 10.0, 2.0);
    EXPECT_NEAR(overrunSum / n, 8.0, 1.6);
    EXPECT_EQ(inj.stats().samplerStalls, uint64_t(n));
    EXPECT_EQ(inj.stats().samplerOverruns, uint64_t(n));
}

TEST(FaultInjectorTest, ProbabilitiesHitTheirRate)
{
    FaultPlan plan;
    plan.sampler.missProb = 0.25;
    plan.dvfs.failProb = 0.5;
    plan.cat.failProb = 0.1;
    FaultInjector inj(plan, 17);
    int misses = 0, fails = 0, catFails = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        misses += inj.samplerMissesWake() ? 1 : 0;
        fails += inj.dvfsWriteFails() ? 1 : 0;
        catFails += inj.catApplyFails() ? 1 : 0;
    }
    EXPECT_NEAR(double(misses) / n, 0.25, 0.02);
    EXPECT_NEAR(double(fails) / n, 0.5, 0.02);
    EXPECT_NEAR(double(catFails) / n, 0.1, 0.02);
}

TEST(FaultInjectorTest, SameSeedAndPlanReplayBitIdentically)
{
    FaultPlan plan;
    plan.counters.dropProb = 0.1;
    plan.counters.glitchProb = 0.1;
    plan.sampler.stallProb = 0.3;
    plan.dvfs.failProb = 0.2;
    auto trace = [&](uint64_t seed) {
        FaultInjector inj(plan, seed);
        std::vector<double> out;
        for (int i = 0; i < 500; ++i) {
            out.push_back(
                inj.filterCounter(Channel::Progress, i % 4, double(i)));
            out.push_back(inj.samplerStall().sec());
            out.push_back(inj.dvfsWriteFails() ? 1.0 : 0.0);
        }
        return out;
    };
    EXPECT_EQ(trace(42), trace(42));
    EXPECT_NE(trace(42), trace(43));
}

TEST(FaultInjectorTest, SeedSaltChangesTheStreams)
{
    FaultPlan a, b;
    a.sampler.missProb = b.sampler.missProb = 0.5;
    b.seedSalt = 1;
    FaultInjector injA(a, 42), injB(b, 42);
    std::vector<bool> sa, sb;
    for (int i = 0; i < 200; ++i) {
        sa.push_back(injA.samplerMissesWake());
        sb.push_back(injB.samplerMissesWake());
    }
    EXPECT_NE(sa, sb);
}

TEST(FaultInjectorTest, BoundaryStreamsAreIndependent)
{
    // Consuming one boundary's stream must not shift another's: the
    // DVFS decisions of a plan that also injects sampler faults match
    // those of a DVFS-only plan, draw for draw.
    FaultPlan dvfsOnly;
    dvfsOnly.dvfs.failProb = 0.5;
    FaultPlan both = dvfsOnly;
    both.sampler.stallProb = 1.0;

    FaultInjector a(dvfsOnly, 99), b(both, 99);
    for (int i = 0; i < 300; ++i) {
        b.samplerStall(); // consume sampler draws in b only
        EXPECT_EQ(a.dvfsWriteFails(), b.dvfsWriteFails()) << "draw " << i;
    }
}

TEST(FaultInjectorTest, ProfileRngIsDeterministicAndRepeatable)
{
    FaultPlan plan;
    FaultInjector inj(plan, 5);
    Rng a = inj.profileRng();
    Rng b = inj.profileRng();
    EXPECT_EQ(a.uniform(), b.uniform()); // const accessor: same stream
}

} // namespace
} // namespace dirigent::fault
