/**
 * @file
 * Tests of the fault-plan DSL: parsing, validation (fatal on user
 * errors), emptiness detection, and the format/parse round trip that
 * lets failing chaos cells be replayed from their (seed, plan) pair.
 */

#include <gtest/gtest.h>

#include "fault/plan.h"

namespace dirigent::fault {
namespace {

TEST(FaultPlanTest, DefaultPlanIsEmpty)
{
    FaultPlan plan;
    EXPECT_TRUE(plan.empty());
}

TEST(FaultPlanTest, EmptyTextParsesToEmptyPlan)
{
    FaultPlan plan = parseFaultPlan(std::string(""));
    EXPECT_TRUE(plan.empty());
    EXPECT_EQ(plan.seedSalt, 0u);
}

TEST(FaultPlanTest, ParsesAllSections)
{
    FaultPlan plan = parseFaultPlan(std::string(R"(
[faults]
seed_salt = 42

[counters]
drop_prob = 0.1
glitch_prob = 0.05
glitch_scale = 50
saturate_prob = 0.01

[sampler]
stall_prob = 0.2
stall_mean = 12ms
miss_prob = 0.02
overrun_prob = 0.03
overrun_mean = 6ms

[dvfs]
fail_prob = 0.3
spike_prob = 0.04
spike_mean = 1ms

[cat]
fail_prob = 0.25

[profile]
stale_scale = 1.5
noise_sigma = 0.2
corrupt_prob = 0.1
corrupt_scale = 3
)"));
    EXPECT_FALSE(plan.empty());
    EXPECT_EQ(plan.seedSalt, 42u);
    EXPECT_DOUBLE_EQ(plan.counters.dropProb, 0.1);
    EXPECT_DOUBLE_EQ(plan.counters.glitchProb, 0.05);
    EXPECT_DOUBLE_EQ(plan.counters.glitchScale, 50.0);
    EXPECT_DOUBLE_EQ(plan.counters.saturateProb, 0.01);
    EXPECT_DOUBLE_EQ(plan.sampler.stallProb, 0.2);
    EXPECT_NEAR(plan.sampler.stallMean.ms(), 12.0, 1e-12);
    EXPECT_DOUBLE_EQ(plan.sampler.missProb, 0.02);
    EXPECT_DOUBLE_EQ(plan.sampler.overrunProb, 0.03);
    EXPECT_NEAR(plan.sampler.overrunMean.ms(), 6.0, 1e-12);
    EXPECT_DOUBLE_EQ(plan.dvfs.failProb, 0.3);
    EXPECT_DOUBLE_EQ(plan.dvfs.spikeProb, 0.04);
    EXPECT_NEAR(plan.dvfs.spikeMean.ms(), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(plan.cat.failProb, 0.25);
    EXPECT_DOUBLE_EQ(plan.profile.staleScale, 1.5);
    EXPECT_DOUBLE_EQ(plan.profile.noiseSigma, 0.2);
    EXPECT_DOUBLE_EQ(plan.profile.corruptProb, 0.1);
    EXPECT_DOUBLE_EQ(plan.profile.corruptScale, 3.0);
}

TEST(FaultPlanTest, SingleNonzeroKnobMakesPlanNonEmpty)
{
    EXPECT_FALSE(
        parseFaultPlan(std::string("counters.drop_prob = 0.01")).empty());
    EXPECT_FALSE(
        parseFaultPlan(std::string("sampler.miss_prob = 0.01")).empty());
    EXPECT_FALSE(
        parseFaultPlan(std::string("dvfs.fail_prob = 0.01")).empty());
    EXPECT_FALSE(
        parseFaultPlan(std::string("cat.fail_prob = 0.01")).empty());
    EXPECT_FALSE(
        parseFaultPlan(std::string("profile.stale_scale = 2")).empty());
}

TEST(FaultPlanTest, SeedSaltAloneKeepsPlanEmpty)
{
    // A salt changes the fault streams but injects nothing by itself.
    EXPECT_TRUE(
        parseFaultPlan(std::string("faults.seed_salt = 7")).empty());
}

TEST(FaultPlanDeathTest, RejectsOutOfRangeProbability)
{
    EXPECT_EXIT(parseFaultPlan(std::string("counters.drop_prob = 1.5")),
                testing::ExitedWithCode(1), "probability");
    EXPECT_EXIT(parseFaultPlan(std::string("dvfs.fail_prob = -0.1")),
                testing::ExitedWithCode(1), "probability");
}

TEST(FaultPlanDeathTest, RejectsNonFiniteValues)
{
    EXPECT_EXIT(parseFaultPlan(std::string("counters.glitch_prob = nan")),
                testing::ExitedWithCode(1), "finite");
    EXPECT_EXIT(parseFaultPlan(std::string("profile.noise_sigma = inf")),
                testing::ExitedWithCode(1), "finite");
}

TEST(FaultPlanDeathTest, RejectsNonPositiveDurationsAndScales)
{
    EXPECT_EXIT(parseFaultPlan(std::string("sampler.stall_mean = 0s")),
                testing::ExitedWithCode(1), "positive");
    EXPECT_EXIT(parseFaultPlan(std::string("counters.glitch_scale = 0")),
                testing::ExitedWithCode(1), "positive");
    EXPECT_EXIT(parseFaultPlan(std::string("profile.stale_scale = -1")),
                testing::ExitedWithCode(1), "positive");
}

TEST(FaultPlanDeathTest, RejectsUnknownKeys)
{
    EXPECT_EXIT(parseFaultPlan(std::string("samplr.stall_prob = 0.1")),
                testing::ExitedWithCode(1), "unknown key");
    EXPECT_EXIT(parseFaultPlan(std::string("machine.cores = 4")),
                testing::ExitedWithCode(1), "unknown key");
}

TEST(FaultPlanTest, FormatParseRoundTrips)
{
    FaultPlan plan;
    plan.seedSalt = 0xDEADBEEF;
    plan.counters.dropProb = 0.125;
    plan.counters.glitchProb = 0.0625;
    plan.counters.glitchScale = 17.5;
    plan.counters.saturateProb = 0.03125;
    plan.sampler.stallProb = 0.25;
    plan.sampler.stallMean = Time::ms(7.5);
    plan.sampler.missProb = 0.015625;
    plan.sampler.overrunProb = 0.5;
    plan.sampler.overrunMean = Time::ms(3.25);
    plan.dvfs.failProb = 0.75;
    plan.dvfs.spikeProb = 0.375;
    plan.dvfs.spikeMean = Time::ms(1.125);
    plan.cat.failProb = 0.875;
    plan.profile.staleScale = 2.5;
    plan.profile.noiseSigma = 0.25;
    plan.profile.corruptProb = 0.0078125;
    plan.profile.corruptScale = 6.75;

    FaultPlan again = parseFaultPlan(formatFaultPlan(plan));
    EXPECT_EQ(again.seedSalt, plan.seedSalt);
    EXPECT_DOUBLE_EQ(again.counters.dropProb, plan.counters.dropProb);
    EXPECT_DOUBLE_EQ(again.counters.glitchProb, plan.counters.glitchProb);
    EXPECT_DOUBLE_EQ(again.counters.glitchScale,
                     plan.counters.glitchScale);
    EXPECT_DOUBLE_EQ(again.counters.saturateProb,
                     plan.counters.saturateProb);
    EXPECT_DOUBLE_EQ(again.sampler.stallProb, plan.sampler.stallProb);
    EXPECT_DOUBLE_EQ(again.sampler.stallMean.sec(),
                     plan.sampler.stallMean.sec());
    EXPECT_DOUBLE_EQ(again.sampler.missProb, plan.sampler.missProb);
    EXPECT_DOUBLE_EQ(again.sampler.overrunProb,
                     plan.sampler.overrunProb);
    EXPECT_DOUBLE_EQ(again.sampler.overrunMean.sec(),
                     plan.sampler.overrunMean.sec());
    EXPECT_DOUBLE_EQ(again.dvfs.failProb, plan.dvfs.failProb);
    EXPECT_DOUBLE_EQ(again.dvfs.spikeProb, plan.dvfs.spikeProb);
    EXPECT_DOUBLE_EQ(again.dvfs.spikeMean.sec(),
                     plan.dvfs.spikeMean.sec());
    EXPECT_DOUBLE_EQ(again.cat.failProb, plan.cat.failProb);
    EXPECT_DOUBLE_EQ(again.profile.staleScale, plan.profile.staleScale);
    EXPECT_DOUBLE_EQ(again.profile.noiseSigma, plan.profile.noiseSigma);
    EXPECT_DOUBLE_EQ(again.profile.corruptProb,
                     plan.profile.corruptProb);
    EXPECT_DOUBLE_EQ(again.profile.corruptScale,
                     plan.profile.corruptScale);
}

TEST(FaultPlanTest, EnvPathUnsetReturnsNullopt)
{
    unsetenv("DIRIGENT_FAULTS");
    EXPECT_FALSE(envFaultPlanPath().has_value());
    setenv("DIRIGENT_FAULTS", "", 1);
    EXPECT_FALSE(envFaultPlanPath().has_value());
    setenv("DIRIGENT_FAULTS", "/tmp/plan.cfg", 1);
    ASSERT_TRUE(envFaultPlanPath().has_value());
    EXPECT_EQ(*envFaultPlanPath(), "/tmp/plan.cfg");
    unsetenv("DIRIGENT_FAULTS");
}

} // namespace
} // namespace dirigent::fault
