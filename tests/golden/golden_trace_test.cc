/**
 * @file
 * Golden-trace regression suite: six sentinel runs (three mixes ×
 * {Baseline, Dirigent}) are fingerprinted as canonical event traces
 * and compared against checked-in golden files. Any behavioural drift
 * — model changes, scheme changes, thread-count-dependent divergence —
 * fails loudly with a line-level trace diff.
 *
 * Regenerate after an intentional behaviour change with:
 *   DIRIGENT_REGEN_GOLDEN=1 ./test_golden
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "common/hash.h"
#include "dirigent/trace.h"
#include "exec/executor.h"
#include "harness/experiment.h"
#include "workload/mix.h"

#ifndef DIRIGENT_GOLDEN_DIR
#error "DIRIGENT_GOLDEN_DIR must point at the golden data directory"
#endif

namespace dirigent::harness {
namespace {

constexpr uint64_t kGoldenSeed = 4242;

HarnessConfig
goldenConfig()
{
    HarnessConfig cfg;
    cfg.executions = 5;
    cfg.warmup = 2;
    cfg.seed = kGoldenSeed;
    return cfg;
}

std::vector<workload::WorkloadMix>
sentinelMixes()
{
    return {
        workload::makeMix({"ferret"}, workload::BgSpec::single("rs")),
        workload::makeMix({"raytrace"},
                          workload::BgSpec::single("bwaves")),
        workload::makeMix({"streamcluster"},
                          workload::BgSpec::single("pca")),
    };
}

/** Both renderings of one sentinel's trace. */
struct SentinelTrace
{
    std::string canonical; //!< rounded; stable across toolchains
    std::string precise;   //!< %.17g; must match across thread counts
};

std::string
sentinelSlug(const std::string &mixName, const std::string &scheme)
{
    std::string slug = mixName + "_" + scheme;
    for (char &c : slug)
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return slug;
}

/**
 * Run all six sentinels on @p threads workers and return their traces
 * keyed by slug. Baselines run first (they calibrate the deadlines the
 * Dirigent runs consume), then the Dirigent stage fans out.
 */
std::map<std::string, SentinelTrace>
runSentinels(unsigned threads)
{
    exec::ExecutorConfig ecfg;
    ecfg.threads = threads;
    ecfg.progress = false;
    exec::SweepExecutor executor(goldenConfig(), ecfg);

    std::vector<workload::WorkloadMix> mixes = sentinelMixes();
    std::map<std::string, workload::WorkloadMix> byName;
    for (const auto &mix : mixes)
        byName[mix.name] = mix;

    std::mutex mutex;
    std::map<std::string, SentinelTrace> traces;
    std::map<std::string, std::map<std::string, Time>> deadlines;

    std::vector<exec::JobKey> stage1;
    for (const auto &mix : mixes)
        stage1.push_back({mix.name, "Baseline", 0});
    executor.forEach(stage1, [&](size_t, const exec::JobKey &key,
                                 ExperimentRunner &runner) {
        core::GoldenTraceRecorder recorder;
        RunOptions opts;
        opts.golden = &recorder;
        auto result = runner.run(byName.at(key.mix),
                                 core::Scheme::Baseline, {}, opts);
        std::lock_guard<std::mutex> lock(mutex);
        traces[sentinelSlug(key.mix, "Baseline")] = {
            recorder.canonicalText(), recorder.preciseText()};
        deadlines[key.mix] = runner.deadlinesFromBaseline(result);
    });

    std::vector<exec::JobKey> stage2;
    for (const auto &mix : mixes)
        stage2.push_back({mix.name, "Dirigent", 0});
    executor.forEach(stage2, [&](size_t, const exec::JobKey &key,
                                 ExperimentRunner &runner) {
        core::GoldenTraceRecorder recorder;
        RunOptions opts;
        opts.golden = &recorder;
        std::map<std::string, Time> mixDeadlines;
        {
            std::lock_guard<std::mutex> lock(mutex);
            mixDeadlines = deadlines.at(key.mix);
        }
        runner.run(byName.at(key.mix), core::Scheme::Dirigent,
                   mixDeadlines, opts);
        std::lock_guard<std::mutex> lock(mutex);
        traces[sentinelSlug(key.mix, "Dirigent")] = {
            recorder.canonicalText(), recorder.preciseText()};
    });

    return traces;
}

std::string
goldenPath(const std::string &slug)
{
    return std::string(DIRIGENT_GOLDEN_DIR) + "/" + slug + ".trace";
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return "";
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

bool
regenRequested()
{
    const char *env = std::getenv("DIRIGENT_REGEN_GOLDEN");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

TEST(GoldenTraceTest, SentinelsMatchCheckedInGolden)
{
    std::map<std::string, SentinelTrace> traces = runSentinels(1);
    ASSERT_EQ(traces.size(), 6u);

    if (regenRequested()) {
        for (const auto &[slug, trace] : traces) {
            std::ofstream out(goldenPath(slug),
                              std::ios::trunc | std::ios::binary);
            ASSERT_TRUE(out) << "cannot write " << goldenPath(slug);
            out << trace.canonical << "\n";
        }
        GTEST_SKIP() << "regenerated " << traces.size()
                     << " golden traces in " << DIRIGENT_GOLDEN_DIR;
    }

    for (const auto &[slug, trace] : traces) {
        SCOPED_TRACE(slug);
        std::string expected = readFile(goldenPath(slug));
        ASSERT_FALSE(expected.empty())
            << "missing golden file " << goldenPath(slug)
            << " — run with DIRIGENT_REGEN_GOLDEN=1 to create it";
        // Golden files end with one newline; the trace itself doesn't.
        std::string actual = trace.canonical + "\n";
        EXPECT_EQ(actual, expected)
            << "behavioural drift in sentinel " << slug << ":\n"
            << core::traceDiff(expected, actual);
        EXPECT_FALSE(trace.canonical.empty());
    }
}

TEST(GoldenTraceTest, TracesAreIdenticalAcrossThreadCounts)
{
    std::map<std::string, SentinelTrace> serial = runSentinels(1);
    for (unsigned threads : {2u, 4u}) {
        std::map<std::string, SentinelTrace> parallel =
            runSentinels(threads);
        ASSERT_EQ(parallel.size(), serial.size());
        for (const auto &[slug, trace] : serial) {
            SCOPED_TRACE(slug + " @" + std::to_string(threads) +
                         " threads");
            ASSERT_TRUE(parallel.count(slug));
            // Bit-exact: %.17g round-trips doubles, so any divergence
            // between worker counts shows up here.
            EXPECT_EQ(parallel.at(slug).precise, trace.precise)
                << core::traceDiff(trace.precise,
                                   parallel.at(slug).precise);
        }
    }
}

TEST(GoldenTraceTest, RecorderHashIsFingerprintOfText)
{
    // CI logs print hashes, not full traces; the hash must be exactly
    // the FNV-1a of the rendered text so operators can cross-check.
    core::GoldenTraceRecorder recorder;
    machine::CompletionRecord rec;
    rec.pid = 1;
    rec.core = 0;
    rec.program = "ferret";
    rec.foreground = true;
    rec.started = Time::sec(0.5);
    rec.finished = Time::sec(1.25);
    rec.instructions = 1e9;
    recorder.recordCompletion(rec);
    recorder.decisions().record({Time::sec(1.0),
                                 core::TraceAction::BgThrottled, 1, 0.9,
                                 "grade 3"});
    EXPECT_EQ(recorder.hash(), fnv1a64(recorder.canonicalText()));
    EXPECT_EQ(recorder.preciseHash(), fnv1a64(recorder.preciseText()));
    EXPECT_NE(recorder.hash(), 0u);
    // Completion lines key on their finish time, so the t=1.0 decision
    // sorts before the completion that finished at t=1.25.
    std::string text = recorder.canonicalText();
    EXPECT_NE(text.find("D t=1.000000"), std::string::npos) << text;
    EXPECT_NE(text.find("C t=1.250000"), std::string::npos) << text;
    EXPECT_LT(text.find("D t=1.000000"), text.find("C t=1.250000"));
}

} // namespace
} // namespace dirigent::harness
