/**
 * @file
 * Golden cluster sentinel: one 4-node cluster cell (join-shortest-
 * queue over homogeneous ferret + rs nodes) fingerprinted as a
 * canonical document — fleet accounting, per-node health, and the
 * complete per-node request logs — and compared against a checked-in
 * golden file. Any drift in dispatch decisions, node seed salting,
 * calibration, queue mechanics, or fleet aggregation shows up as a
 * line-level diff. The same document must be byte-identical at any
 * executor thread count.
 *
 * Regenerate after an intentional behaviour change with:
 *   DIRIGENT_REGEN_GOLDEN=1 ./test_golden
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "cluster/accountant.h"
#include "cluster/spec.h"
#include "exec/executor.h"
#include "serve/driver.h"

#ifndef DIRIGENT_GOLDEN_DIR
#error "DIRIGENT_GOLDEN_DIR must point at the golden data directory"
#endif

namespace dirigent::cluster {
namespace {

constexpr uint64_t kGoldenSeed = 20161604;

harness::HarnessConfig
goldenConfig()
{
    harness::HarnessConfig cfg;
    cfg.executions = 4;
    cfg.warmup = 2;
    cfg.seed = kGoldenSeed;
    return cfg;
}

ClusterSpec
sentinelSpec()
{
    ClusterSpec spec;
    spec.name = "golden-quad";
    spec.nodes = 4;
    spec.policy = DispatchPolicy::JoinShortestQueue;
    spec.mix = "ferret/rs";
    spec.scheme = "Dirigent";
    spec.serve.arrivals.rate = 2.5; // fleet-wide
    spec.serve.queueCapacity = 16;
    spec.serve.slos = {{0.99, 15.0}};
    spec.serve.horizonSec = 12.0;
    spec.serve.warmupSec = 2.0;
    return spec;
}

/**
 * Render one cluster cell as a deterministic text document. With
 * @p precise, timestamps print at %.17g so a single diverging double
 * anywhere in any node's request log breaks equality.
 */
std::string
clusterText(const exec::ClusterCellResult &cell, bool precise)
{
    std::ostringstream out;
    out << "=== fleet " << dispatchPolicyName(cell.fleet.policy)
        << " x" << cell.fleet.nodes << " ===\n"
        << "generated=" << cell.fleet.generated
        << " completed=" << cell.fleet.completed
        << " dropped=" << cell.fleet.dropped
        << " shed=" << cell.fleet.shed
        << " max_queue=" << cell.fleet.maxQueueDepth
        << " slo_met=" << (cell.fleet.sloMet() ? 1 : 0)
        << " degraded=" << (cell.fleet.degraded ? 1 : 0) << "\n";
    for (const NodeResult &node : cell.nodes) {
        out << "--- " << formatNodeHealth(node.health) << "\n"
            << "arrivals=" << node.serving.arrivals
            << " completed=" << node.serving.completed
            << " dropped=" << node.serving.dropped
            << " shed=" << node.serving.shed << "\n";
        for (size_t slot = 0;
             slot < node.serving.perFgRequests.size(); ++slot) {
            out << "-- node" << node.index << "/fg" << slot << "\n"
                << serve::formatRequestLog(
                       node.serving.perFgRequests[slot], precise);
        }
    }
    return out.str();
}

exec::ClusterCellResult
runSentinel(unsigned threads)
{
    exec::ExecutorConfig ecfg;
    ecfg.threads = threads;
    ecfg.progress = false;
    exec::SweepExecutor executor(goldenConfig(), ecfg);
    return executor.runCluster(sentinelSpec());
}

std::string
goldenPath()
{
    return std::string(DIRIGENT_GOLDEN_DIR) + "/cluster_quad_jsq.log";
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return "";
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

bool
regenRequested()
{
    const char *env = std::getenv("DIRIGENT_REGEN_GOLDEN");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

TEST(GoldenClusterTest, SentinelMatchesCheckedInGolden)
{
    exec::ClusterCellResult cell = runSentinel(1);
    std::string canonical = clusterText(cell, false);

    if (regenRequested()) {
        std::ofstream out(goldenPath(),
                          std::ios::trunc | std::ios::binary);
        ASSERT_TRUE(out) << "cannot write " << goldenPath();
        out << canonical;
        GTEST_SKIP() << "regenerated cluster golden " << goldenPath();
    }

    std::string expected = readFile(goldenPath());
    ASSERT_FALSE(expected.empty())
        << "missing golden file " << goldenPath()
        << " — run with DIRIGENT_REGEN_GOLDEN=1 to create it";
    EXPECT_EQ(canonical, expected)
        << "behavioural drift in the cluster sentinel";

    // The sentinel must actually exercise the fleet: requests were
    // generated, routed across several nodes, and served.
    EXPECT_GT(cell.fleet.generated, 0u);
    EXPECT_GT(cell.fleet.completed, 0u);
    unsigned busyNodes = 0;
    for (const NodeResult &node : cell.nodes)
        busyNodes += node.serving.arrivals > 0 ? 1 : 0;
    EXPECT_GE(busyNodes, 2u);
}

TEST(GoldenClusterTest, SentinelIsIdenticalAcrossThreadCounts)
{
    std::string serial = clusterText(runSentinel(1), true);
    for (unsigned threads : {2u, 4u}) {
        SCOPED_TRACE(threads);
        // Bit-exact: %.17g round-trips doubles, so any worker-count
        // divergence in a single request timestamp shows up here.
        EXPECT_EQ(clusterText(runSentinel(threads), true), serial);
    }
}

} // namespace
} // namespace dirigent::cluster
