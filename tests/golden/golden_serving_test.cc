/**
 * @file
 * Golden serving sentinel: one open-loop serving cell (ferret + rs,
 * MMPP arrivals, every default serving scheme) fingerprinted as a
 * canonical request log and compared against a checked-in golden file.
 * Any drift in arrival seeding, queue mechanics, admission decisions,
 * or scheme behaviour shows up as a line-level request-log diff.
 *
 * Regenerate after an intentional behaviour change with:
 *   DIRIGENT_REGEN_GOLDEN=1 ./test_golden
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "harness/experiment.h"
#include "harness/serving.h"
#include "serve/driver.h"
#include "serve/spec.h"
#include "workload/mix.h"

#ifndef DIRIGENT_GOLDEN_DIR
#error "DIRIGENT_GOLDEN_DIR must point at the golden data directory"
#endif

namespace dirigent::harness {
namespace {

constexpr uint64_t kGoldenSeed = 4242;

HarnessConfig
goldenConfig()
{
    HarnessConfig cfg;
    cfg.executions = 5;
    cfg.warmup = 2;
    cfg.seed = kGoldenSeed;
    return cfg;
}

serve::ServeSpec
sentinelServeSpec()
{
    serve::ServeSpec spec;
    spec.arrivals.kind = serve::ArrivalKind::Mmpp;
    spec.arrivals.rate = 0.3;
    spec.arrivals.burstRate = 1.5;
    spec.arrivals.dwellSec = 8.0;
    spec.arrivals.burstDwellSec = 2.0;
    spec.queueCapacity = 16;
    spec.slos = {{0.99, 8.0}};
    spec.horizonSec = 25.0;
    spec.warmupSec = 3.0;
    return spec; // no sweepRates: one cell per scheme
}

/**
 * Render the sentinel cells as one deterministic text document: a
 * summary line per scheme plus the complete per-slot request log.
 */
std::string
servingText(const std::vector<ServingRunResult> &cells, bool precise)
{
    std::ostringstream out;
    for (const ServingRunResult &cell : cells) {
        out << "=== " << cell.schemeLabel << " ===\n"
            << "arrivals=" << cell.arrivals
            << " completed=" << cell.completed
            << " dropped=" << cell.dropped << " shed=" << cell.shed
            << " max_queue=" << cell.maxQueueDepth << "\n";
        for (size_t slot = 0; slot < cell.perFgRequests.size(); ++slot) {
            out << "-- fg" << slot << "\n"
                << serve::formatRequestLog(cell.perFgRequests[slot],
                                           precise);
        }
    }
    return out.str();
}

std::vector<ServingRunResult>
runServingSentinel(unsigned threads)
{
    exec::ExecutorConfig ecfg;
    ecfg.threads = threads;
    ecfg.progress = false;
    exec::SweepExecutor executor(goldenConfig(), ecfg);
    std::vector<workload::WorkloadMix> mixes = {
        workload::makeMix({"ferret"}, workload::BgSpec::single("rs"))};
    auto perMix = executor.runServingSweep(mixes, sentinelServeSpec(),
                                           exec::defaultServingSchemes());
    return perMix.at(0);
}

std::string
goldenPath()
{
    return std::string(DIRIGENT_GOLDEN_DIR) + "/serving_ferret_rs.log";
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return "";
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

bool
regenRequested()
{
    const char *env = std::getenv("DIRIGENT_REGEN_GOLDEN");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

TEST(GoldenServingTest, SentinelMatchesCheckedInGolden)
{
    std::vector<ServingRunResult> cells = runServingSentinel(1);
    ASSERT_EQ(cells.size(), exec::defaultServingSchemes().size());
    std::string canonical = servingText(cells, false);

    if (regenRequested()) {
        std::ofstream out(goldenPath(),
                          std::ios::trunc | std::ios::binary);
        ASSERT_TRUE(out) << "cannot write " << goldenPath();
        out << canonical;
        GTEST_SKIP() << "regenerated serving golden " << goldenPath();
    }

    std::string expected = readFile(goldenPath());
    ASSERT_FALSE(expected.empty())
        << "missing golden file " << goldenPath()
        << " — run with DIRIGENT_REGEN_GOLDEN=1 to create it";
    EXPECT_EQ(canonical, expected)
        << "behavioural drift in the serving sentinel";

    // The sentinel must actually exercise serving: arrivals happened
    // and something completed under every scheme.
    for (const ServingRunResult &cell : cells) {
        SCOPED_TRACE(cell.schemeLabel);
        EXPECT_GT(cell.arrivals, 0u);
        EXPECT_GT(cell.completed, 0u);
    }
}

TEST(GoldenServingTest, SentinelIsIdenticalAcrossThreadCounts)
{
    std::string serial = servingText(runServingSentinel(1), true);
    for (unsigned threads : {2u, 4u}) {
        SCOPED_TRACE(threads);
        // Bit-exact: %.17g round-trips doubles, so any worker-count
        // divergence in a single request timestamp shows up here.
        EXPECT_EQ(servingText(runServingSentinel(threads), true),
                  serial);
    }
}

} // namespace
} // namespace dirigent::harness
