/**
 * @file
 * Predictor-seam license: with the default predictor, the spec
 * assembly path (an explicit `[predictor]` section round-tripped
 * through parse(format(spec)), and the harness-wide
 * runtime.predictor override) must reproduce the checked-in golden
 * sentinels byte-identically — no regeneration allowed — and must
 * stay bit-exact across 1/2/4 worker threads. This is the proof that
 * extracting the prediction seam changed no behaviour.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "dirigent/predictor_spec.h"
#include "dirigent/scheme_spec.h"
#include "dirigent/trace.h"
#include "exec/executor.h"
#include "harness/experiment.h"
#include "workload/mix.h"

#ifndef DIRIGENT_GOLDEN_DIR
#error "DIRIGENT_GOLDEN_DIR must point at the golden data directory"
#endif

namespace dirigent::harness {
namespace {

constexpr uint64_t kGoldenSeed = 4242;

HarnessConfig
goldenConfig()
{
    HarnessConfig cfg;
    cfg.executions = 5;
    cfg.warmup = 2;
    cfg.seed = kGoldenSeed;
    return cfg;
}

std::vector<workload::WorkloadMix>
sentinelMixes()
{
    return {
        workload::makeMix({"ferret"}, workload::BgSpec::single("rs")),
        workload::makeMix({"raytrace"},
                          workload::BgSpec::single("bwaves")),
        workload::makeMix({"streamcluster"},
                          workload::BgSpec::single("pca")),
    };
}

/** Both renderings of one sentinel's trace. */
struct SentinelTrace
{
    std::string canonical;
    std::string precise;
};

std::string
sentinelSlug(const std::string &mixName, const std::string &scheme)
{
    std::string slug = mixName + "_" + scheme;
    for (char &c : slug)
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return slug;
}

/** A builtin scheme spec with its (default) [predictor] section made
 *  explicit by round-tripping the canonical text — exactly what a
 *  scheme file carrying `[predictor]\nkind = ema\n...` produces. */
core::SchemeSpec
specWithExplicitPredictor(const char *scheme)
{
    const core::SchemeSpec *spec = core::findSchemeSpec(scheme);
    EXPECT_NE(spec, nullptr);
    core::SchemeSpec explicitSpec =
        core::parseSchemeSpec(core::formatSchemeSpec(*spec));
    EXPECT_EQ(explicitSpec.predictor, core::PredictorSpec{});
    return explicitSpec;
}

/**
 * Run all six sentinels through the spec path on @p threads workers
 * and return their traces keyed by slug (mirrors the golden suite's
 * runSentinels, with specs instead of enums).
 */
std::map<std::string, SentinelTrace>
runSpecSentinels(unsigned threads)
{
    exec::ExecutorConfig ecfg;
    ecfg.threads = threads;
    ecfg.progress = false;
    exec::SweepExecutor executor(goldenConfig(), ecfg);

    std::vector<workload::WorkloadMix> mixes = sentinelMixes();
    std::map<std::string, workload::WorkloadMix> byName;
    for (const auto &mix : mixes)
        byName[mix.name] = mix;

    std::mutex mutex;
    std::map<std::string, SentinelTrace> traces;
    std::map<std::string, std::map<std::string, Time>> deadlines;

    std::vector<exec::JobKey> stage1;
    for (const auto &mix : mixes)
        stage1.push_back({mix.name, "Baseline", 0});
    executor.forEach(stage1, [&](size_t, const exec::JobKey &key,
                                 ExperimentRunner &runner) {
        core::GoldenTraceRecorder recorder;
        RunOptions opts;
        opts.golden = &recorder;
        auto result = runner.run(byName.at(key.mix),
                                 specWithExplicitPredictor("Baseline"),
                                 {}, opts);
        std::lock_guard<std::mutex> lock(mutex);
        traces[sentinelSlug(key.mix, "Baseline")] = {
            recorder.canonicalText(), recorder.preciseText()};
        deadlines[key.mix] = runner.deadlinesFromBaseline(result);
    });

    std::vector<exec::JobKey> stage2;
    for (const auto &mix : mixes)
        stage2.push_back({mix.name, "Dirigent", 0});
    executor.forEach(stage2, [&](size_t, const exec::JobKey &key,
                                 ExperimentRunner &runner) {
        core::GoldenTraceRecorder recorder;
        RunOptions opts;
        opts.golden = &recorder;
        std::map<std::string, Time> mixDeadlines;
        {
            std::lock_guard<std::mutex> lock(mutex);
            mixDeadlines = deadlines.at(key.mix);
        }
        runner.run(byName.at(key.mix),
                   specWithExplicitPredictor("Dirigent"), mixDeadlines,
                   opts);
        std::lock_guard<std::mutex> lock(mutex);
        traces[sentinelSlug(key.mix, "Dirigent")] = {
            recorder.canonicalText(), recorder.preciseText()};
    });

    return traces;
}

std::string
readGolden(const std::string &slug)
{
    std::string path =
        std::string(DIRIGENT_GOLDEN_DIR) + "/" + slug + ".trace";
    std::ifstream in(path);
    if (!in)
        return "";
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

TEST(PredictorEquivalenceTest, ExplicitDefaultSectionMatchesSentinels)
{
    std::map<std::string, SentinelTrace> traces = runSpecSentinels(1);
    ASSERT_EQ(traces.size(), 6u);
    for (const auto &[slug, trace] : traces) {
        SCOPED_TRACE(slug);
        std::string expected = readGolden(slug);
        ASSERT_FALSE(expected.empty()) << "missing golden " << slug;
        EXPECT_EQ(trace.canonical + "\n", expected)
            << "predictor seam changed sentinel " << slug << ":\n"
            << core::traceDiff(expected, trace.canonical + "\n");
    }
}

TEST(PredictorEquivalenceTest, SpecPathIsThreadCountInvariant)
{
    std::map<std::string, SentinelTrace> serial = runSpecSentinels(1);
    for (unsigned threads : {2u, 4u}) {
        std::map<std::string, SentinelTrace> parallel =
            runSpecSentinels(threads);
        ASSERT_EQ(parallel.size(), serial.size());
        for (const auto &[slug, trace] : serial) {
            SCOPED_TRACE(slug + " @" + std::to_string(threads) +
                         " threads");
            ASSERT_TRUE(parallel.count(slug));
            EXPECT_EQ(parallel.at(slug).precise, trace.precise)
                << core::traceDiff(trace.precise,
                                   parallel.at(slug).precise);
        }
    }
}

TEST(PredictorEquivalenceTest, HarnessWideEmaOverrideMatchesSentinel)
{
    // runtime.predictor=ema on the harness config (what the
    // run_experiment CLI key sets) is the same run as no override.
    HarnessConfig cfg = goldenConfig();
    cfg.runtime.predictor = *core::findPredictorSpec("ema");
    ExperimentRunner runner(cfg);
    workload::WorkloadMix mix =
        workload::makeMix({"ferret"}, workload::BgSpec::single("rs"));

    auto baseline = runner.run(mix, core::Scheme::Baseline, {});
    auto deadlines = runner.deadlinesFromBaseline(baseline);

    core::GoldenTraceRecorder recorder;
    RunOptions opts;
    opts.golden = &recorder;
    runner.run(mix, core::Scheme::Dirigent, deadlines, opts);

    std::string expected = readGolden("ferret_rs_Dirigent");
    ASSERT_FALSE(expected.empty());
    EXPECT_EQ(recorder.canonicalText() + "\n", expected)
        << core::traceDiff(expected, recorder.canonicalText() + "\n");
}

} // namespace
} // namespace dirigent::harness
