/**
 * @file
 * Scheme-spec equivalence regression: every builtin spec must reproduce
 * the legacy enum wiring byte-identically, and a scheme file mirroring
 * a builtin (parse(format(spec))) must produce the identical trace as
 * the enum path. Runs on the golden sentinel config (seed 4242,
 * executions 5, warmup 2) and cross-checks the Dirigent/Baseline
 * sentinels against the checked-in golden files, so spec-assembly drift
 * fails the same way behavioural drift does.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "dirigent/scheme_spec.h"
#include "dirigent/trace.h"
#include "harness/experiment.h"
#include "workload/mix.h"

#ifndef DIRIGENT_GOLDEN_DIR
#error "DIRIGENT_GOLDEN_DIR must point at the golden data directory"
#endif

namespace dirigent::harness {
namespace {

constexpr uint64_t kGoldenSeed = 4242;

HarnessConfig
goldenConfig()
{
    HarnessConfig cfg;
    cfg.executions = 5;
    cfg.warmup = 2;
    cfg.seed = kGoldenSeed;
    return cfg;
}

/** Both renderings of one run's golden trace. */
struct RunTrace
{
    std::string canonical;
    std::string precise;
};

class SchemeEquivalenceTest : public testing::Test
{
  protected:
    SchemeEquivalenceTest()
        : runner_(goldenConfig()),
          mix_(workload::makeMix({"ferret"},
                                 workload::BgSpec::single("rs")))
    {
        auto baseline = runner_.run(mix_, core::Scheme::Baseline, {});
        deadlines_ = runner_.deadlinesFromBaseline(baseline);
    }

    RunTrace
    runEnum(core::Scheme scheme)
    {
        core::GoldenTraceRecorder recorder;
        RunOptions opts;
        opts.golden = &recorder;
        runner_.run(mix_, scheme, deadlines_, opts);
        return {recorder.canonicalText(), recorder.preciseText()};
    }

    RunTrace
    runSpec(const core::SchemeSpec &spec)
    {
        core::GoldenTraceRecorder recorder;
        RunOptions opts;
        opts.golden = &recorder;
        runner_.run(mix_, spec, deadlines_, opts);
        return {recorder.canonicalText(), recorder.preciseText()};
    }

    ExperimentRunner runner_;
    workload::WorkloadMix mix_;
    std::map<std::string, Time> deadlines_;
};

TEST_F(SchemeEquivalenceTest, BuiltinSpecsReproduceEnumWiring)
{
    for (core::Scheme scheme : core::allSchemes()) {
        SCOPED_TRACE(core::schemeName(scheme));
        RunTrace viaEnum = runEnum(scheme);
        ASSERT_FALSE(viaEnum.precise.empty());

        // The registry spec and a scheme file mirroring it
        // (parse(format(spec)) is exactly what --scheme-file does)
        // must assemble the identical run, bit for bit.
        core::SchemeSpec spec = core::schemeSpec(scheme);
        RunTrace viaSpec = runSpec(spec);
        EXPECT_EQ(viaSpec.precise, viaEnum.precise)
            << core::traceDiff(viaEnum.precise, viaSpec.precise);

        RunTrace viaFile =
            runSpec(core::parseSchemeSpec(core::formatSchemeSpec(spec)));
        EXPECT_EQ(viaFile.precise, viaEnum.precise)
            << core::traceDiff(viaEnum.precise, viaFile.precise);
    }
}

TEST_F(SchemeEquivalenceTest, SpecPathMatchesCheckedInSentinels)
{
    // The spec path must reproduce the same traces the golden suite
    // checked in from the legacy switchboard — no regeneration allowed.
    for (const char *scheme : {"Baseline", "Dirigent"}) {
        SCOPED_TRACE(scheme);
        std::string path = std::string(DIRIGENT_GOLDEN_DIR) +
                           "/ferret_rs_" + scheme + ".trace";
        std::ifstream in(path);
        ASSERT_TRUE(in) << "missing golden file " << path;
        std::ostringstream expected;
        expected << in.rdbuf();

        RunTrace trace = runSpec(*core::findSchemeSpec(scheme));
        EXPECT_EQ(trace.canonical + "\n", expected.str())
            << core::traceDiff(expected.str(), trace.canonical + "\n");
    }
}

} // namespace
} // namespace dirigent::harness
