/**
 * @file
 * Tests of the sleep-based periodic sampler: cadence, jitter model,
 * start/stop semantics.
 */

#include <gtest/gtest.h>

#include <vector>

#include "machine/sampler.h"
#include "sim/engine.h"

namespace dirigent::machine {
namespace {

/** Engine with a trivial root component. */
class NullComponent : public sim::Component
{
  public:
    void advance(Time, Time) override {}
};

class SamplerTest : public testing::Test
{
  protected:
    SamplerTest() : engine_(root_, Time::us(100.0)) {}

    NullComponent root_;
    sim::Engine engine_;
    std::vector<PeriodicSampler::Tick> ticks_;
};

TEST_F(SamplerTest, TicksAtRequestedCadence)
{
    PeriodicSampler sampler(
        engine_, Time::ms(5.0), Time(), Time(), Rng(1),
        [&](const PeriodicSampler::Tick &t) { ticks_.push_back(t); });
    sampler.start();
    engine_.runUntil(Time::ms(26.0));
    ASSERT_EQ(ticks_.size(), 5u);
    for (size_t i = 0; i < ticks_.size(); ++i) {
        EXPECT_EQ(ticks_[i].index, i);
        EXPECT_NEAR(ticks_[i].actual.ms(), 5.0 * double(i + 1), 1e-9);
        EXPECT_DOUBLE_EQ(ticks_[i].scheduled.ms(),
                         ticks_[i].actual.ms());
    }
}

TEST_F(SamplerTest, OvershootDelaysWakeups)
{
    PeriodicSampler sampler(
        engine_, Time::ms(5.0), Time::us(50.0), Time::us(20.0), Rng(2),
        [&](const PeriodicSampler::Tick &t) { ticks_.push_back(t); });
    sampler.start();
    engine_.runUntil(Time::ms(60.0));
    ASSERT_GE(ticks_.size(), 10u);
    double totalOvershoot = 0.0;
    for (const auto &t : ticks_) {
        EXPECT_GE(t.actual.sec(), t.scheduled.sec());
        totalOvershoot += (t.actual - t.scheduled).us();
    }
    // Mean overshoot near the configured 50 µs.
    EXPECT_NEAR(totalOvershoot / double(ticks_.size()), 50.0, 25.0);
}

TEST_F(SamplerTest, SleepLoopDrifts)
{
    // Rescheduling from the actual wake time means overshoot
    // accumulates, as with a real sleep loop.
    PeriodicSampler sampler(
        engine_, Time::ms(5.0), Time::us(100.0), Time(), Rng(3),
        [&](const PeriodicSampler::Tick &t) { ticks_.push_back(t); });
    sampler.start();
    engine_.runUntil(Time::ms(52.0));
    ASSERT_GE(ticks_.size(), 10u);
    // Tick 9 nominal: 50 ms; with 100 µs drift per tick: ~50.9 ms.
    EXPECT_GT(ticks_[9].actual.ms(), 50.5);
}

TEST_F(SamplerTest, StopCancelsPendingTick)
{
    PeriodicSampler sampler(
        engine_, Time::ms(5.0), Time(), Time(), Rng(4),
        [&](const PeriodicSampler::Tick &t) { ticks_.push_back(t); });
    sampler.start();
    engine_.runUntil(Time::ms(12.0));
    EXPECT_EQ(ticks_.size(), 2u);
    sampler.stop();
    EXPECT_FALSE(sampler.running());
    engine_.runUntil(Time::ms(30.0));
    EXPECT_EQ(ticks_.size(), 2u);
}

TEST_F(SamplerTest, RestartRealignsToNow)
{
    PeriodicSampler sampler(
        engine_, Time::ms(5.0), Time(), Time(), Rng(5),
        [&](const PeriodicSampler::Tick &t) { ticks_.push_back(t); });
    sampler.start();
    engine_.runUntil(Time::ms(7.0));
    sampler.stop();
    sampler.start(); // realigned: next tick at 12 ms
    engine_.runUntil(Time::ms(13.0));
    ASSERT_EQ(ticks_.size(), 2u);
    EXPECT_NEAR(ticks_[1].actual.ms(), 12.0, 1e-9);
}

TEST_F(SamplerTest, StartIsIdempotent)
{
    PeriodicSampler sampler(
        engine_, Time::ms(5.0), Time(), Time(), Rng(6),
        [&](const PeriodicSampler::Tick &t) { ticks_.push_back(t); });
    sampler.start();
    sampler.start();
    engine_.runUntil(Time::ms(6.0));
    EXPECT_EQ(ticks_.size(), 1u); // not double-scheduled
}

TEST_F(SamplerTest, DestructorStops)
{
    {
        PeriodicSampler sampler(
            engine_, Time::ms(5.0), Time(), Time(), Rng(7),
            [&](const PeriodicSampler::Tick &t) { ticks_.push_back(t); });
        sampler.start();
    }
    engine_.runUntil(Time::ms(20.0));
    EXPECT_TRUE(ticks_.empty());
}

TEST_F(SamplerTest, CallbackMayStopSampler)
{
    PeriodicSampler *ptr = nullptr;
    PeriodicSampler sampler(
        engine_, Time::ms(5.0), Time(), Time(), Rng(8),
        [&](const PeriodicSampler::Tick &t) {
            ticks_.push_back(t);
            if (t.index == 1)
                ptr->stop();
        });
    ptr = &sampler;
    sampler.start();
    engine_.runUntil(Time::ms(50.0));
    EXPECT_EQ(ticks_.size(), 2u);
}

} // namespace
} // namespace dirigent::machine
