/**
 * @file
 * Tests of the actuator adapters (machine/actuators.h): each adapter is
 * a pure pass-through to its device — same values in, same state out —
 * and MachineActuators bundles the four and wires fault injection into
 * every fault-capable device in one call.
 */

#include <gtest/gtest.h>

#include "fault/injector.h"
#include "machine/actuators.h"
#include "workload/benchmarks.h"

namespace dirigent::machine {
namespace {

MachineConfig
config()
{
    MachineConfig cfg;
    cfg.noiseEventsPerSec = 0.0;
    return cfg;
}

class ActuatorTest : public testing::Test
{
  protected:
    ActuatorTest()
        : machine_(config()), engine_(machine_, Time::us(100.0)),
          governor_(machine_, engine_), cat_(machine_)
    {
    }

    /** Let pending DVFS transitions land. */
    void settle() { engine_.runFor(Time::ms(1.0)); }

    Machine machine_;
    sim::Engine engine_;
    CpuFreqGovernor governor_;
    CatController cat_;
};

TEST_F(ActuatorTest, FrequencyActuatorDelegatesToGovernor)
{
    GovernorFrequencyActuator freq(governor_);
    EXPECT_EQ(freq.numGrades(), governor_.numGrades());
    EXPECT_EQ(freq.maxGrade(), governor_.maxGrade());
    for (unsigned g = 0; g < freq.numGrades(); ++g)
        EXPECT_EQ(freq.gradeFreq(g).hz(), governor_.gradeFreq(g).hz());
    EXPECT_EQ(freq.equispacedGrades(5), governor_.equispacedGrades(5));

    freq.setGrade(2, 3);
    settle();
    EXPECT_EQ(governor_.grade(2), 3u);
    EXPECT_EQ(freq.grade(2), governor_.grade(2));
}

TEST_F(ActuatorTest, PartitionActuatorDelegatesToCat)
{
    CatPartitionActuator part(cat_);
    EXPECT_EQ(part.numWays(), cat_.numWays());

    EXPECT_TRUE(part.setFgWays(4));
    EXPECT_TRUE(cat_.partitioned());
    EXPECT_EQ(cat_.fgWays(), 4u);
    EXPECT_EQ(part.fgWays(), 4u);

    EXPECT_TRUE(part.setShared());
    EXPECT_FALSE(cat_.partitioned());
    EXPECT_EQ(part.fgWays(), 0u);
}

TEST_F(ActuatorTest, PauseActuatorDelegatesToOs)
{
    const auto &lib = workload::BenchmarkLibrary::instance();
    ProcessSpec bg;
    bg.name = "bg";
    bg.program = &lib.get("lbm").program;
    bg.core = 1;
    bg.foreground = false;
    Pid pid = machine_.spawnProcess(bg);

    OsPauseActuator pause(machine_.os());
    ASSERT_TRUE(machine_.os().process(pid).runnable());
    pause.pause(pid);
    EXPECT_FALSE(machine_.os().process(pid).runnable());
    pause.resume(pid);
    EXPECT_TRUE(machine_.os().process(pid).runnable());
}

TEST_F(ActuatorTest, BandwidthActuatorDelegatesToBwGuard)
{
    BwGuardBandwidthActuator bw(machine_.bwGuard());
    bw.setBudget(1, 2.5e9);
    EXPECT_DOUBLE_EQ(machine_.bwGuard().budget(1), 2.5e9);
    EXPECT_DOUBLE_EQ(bw.budget(1), 2.5e9);
}

TEST_F(ActuatorTest, BundleExposesAllFourActuators)
{
    MachineActuators actuators(machine_, governor_, cat_);
    ActuatorSet set = actuators.set();
    EXPECT_EQ(set.frequency, &actuators.frequency());
    EXPECT_EQ(set.partition, &actuators.partition());
    EXPECT_EQ(set.pause, &actuators.pause());
    EXPECT_EQ(set.bandwidth, &actuators.bandwidth());

    // The bundle actuates the same devices the references were built on.
    actuators.frequency().setGrade(1, 0);
    settle();
    EXPECT_EQ(governor_.grade(1), 0u);
    EXPECT_TRUE(actuators.partition().setFgWays(3));
    EXPECT_EQ(cat_.fgWays(), 3u);
}

TEST_F(ActuatorTest, BundleWiresFaultInjectorIntoBothDevices)
{
    MachineActuators actuators(machine_, governor_, cat_);
    fault::FaultPlan plan;
    plan.dvfs.failProb = 1.0;
    plan.cat.failProb = 1.0;
    fault::FaultInjector faults(plan, 7);
    actuators.setFaultInjector(&faults);

    // Every DVFS write fails: the transition is abandoned and the
    // hardware stays at its maximum frequency.
    actuators.frequency().setGrade(0, 0);
    engine_.runFor(Time::ms(10.0)); // covers all backoff retries
    EXPECT_TRUE(governor_.writeAbandoned(0));
    EXPECT_GT(governor_.writeFailures(), 0u);

    // Every CAT reconfiguration fails too.
    EXPECT_FALSE(actuators.partition().setFgWays(4));
    EXPECT_EQ(cat_.failedReconfigs(), 1u);

    // Detaching restores fault-free behaviour.
    actuators.setFaultInjector(nullptr);
    EXPECT_TRUE(actuators.partition().setFgWays(4));
    EXPECT_EQ(cat_.fgWays(), 4u);
}

} // namespace
} // namespace dirigent::machine
