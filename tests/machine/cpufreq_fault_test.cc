/**
 * @file
 * Tests of the governor's actuation-failure handling: transient write
 * failures retried with bounded exponential backoff, abandonment after
 * the retry budget, recovery on the next request, latency spikes, and
 * the bit-identical fault-free path with an empty-plan injector.
 */

#include <gtest/gtest.h>

#include "fault/injector.h"
#include "machine/cpufreq.h"

namespace dirigent::machine {
namespace {

MachineConfig
config()
{
    MachineConfig cfg;
    cfg.noiseEventsPerSec = 0.0;
    return cfg;
}

class CpuFreqFaultTest : public testing::Test
{
  protected:
    CpuFreqFaultTest()
        : machine_(config()), engine_(machine_, Time::us(100.0)),
          governor_(machine_, engine_)
    {
    }

    Machine machine_;
    sim::Engine engine_;
    CpuFreqGovernor governor_;
};

TEST_F(CpuFreqFaultTest, AlwaysFailingWriteIsAbandoned)
{
    fault::FaultPlan plan;
    plan.dvfs.failProb = 1.0;
    fault::FaultInjector faults(plan, 1);
    governor_.setFaultInjector(&faults);

    governor_.setGrade(0, 0);
    EXPECT_EQ(governor_.grade(0), 0u); // target visible immediately
    engine_.runFor(Time::ms(10.0));    // covers all backoff retries

    // The write never landed: hardware still at max frequency.
    EXPECT_NEAR(machine_.core(0).frequency().ghz(), 2.0, 1e-9);
    EXPECT_TRUE(governor_.writeAbandoned(0));
    EXPECT_FALSE(governor_.transitionPending(0));
    // 1 initial attempt + maxRetries() retries, all failed.
    EXPECT_EQ(governor_.writeFailures(), governor_.maxRetries() + 1);
    EXPECT_EQ(governor_.retriesScheduled(), governor_.maxRetries());
    EXPECT_EQ(governor_.abandonedWrites(), 1u);
}

TEST_F(CpuFreqFaultTest, RetryBudgetUsesExponentialBackoff)
{
    fault::FaultPlan plan;
    plan.dvfs.failProb = 1.0;
    fault::FaultInjector faults(plan, 2);
    governor_.setFaultInjector(&faults);
    governor_.setMaxRetries(2);

    governor_.setGrade(0, 0);
    // Attempts at 50 µs, +100 µs, +200 µs: abandoned by 350 µs, not
    // before 150 µs (the first retry still pending).
    engine_.runFor(Time::us(160.0));
    EXPECT_TRUE(governor_.transitionPending(0));
    engine_.runFor(Time::us(300.0));
    EXPECT_TRUE(governor_.writeAbandoned(0));
    EXPECT_EQ(governor_.writeFailures(), 3u);
}

TEST_F(CpuFreqFaultTest, TransientFailureEventuallyApplies)
{
    fault::FaultPlan plan;
    plan.dvfs.failProb = 0.5;
    fault::FaultInjector faults(plan, 3);
    governor_.setFaultInjector(&faults);

    // With p = 0.5 and 4 attempts per write, each request abandons with
    // probability 1/16; re-request until one lands.
    bool applied = false;
    for (int attempt = 0; attempt < 20 && !applied; ++attempt) {
        governor_.setGrade(0, 0);
        engine_.runFor(Time::ms(10.0));
        applied = !governor_.writeAbandoned(0);
    }
    ASSERT_TRUE(applied);
    EXPECT_NEAR(machine_.core(0).frequency().ghz(), 1.2, 1e-9);
    EXPECT_FALSE(governor_.transitionPending(0));
}

TEST_F(CpuFreqFaultTest, NextRequestRecoversFromAbandonment)
{
    fault::FaultPlan plan;
    plan.dvfs.failProb = 1.0;
    fault::FaultInjector faults(plan, 4);
    governor_.setFaultInjector(&faults);

    governor_.setGrade(0, 0);
    engine_.runFor(Time::ms(10.0));
    ASSERT_TRUE(governor_.writeAbandoned(0));

    // The fault clears (injector detached); re-requesting the *same*
    // grade must retry — an abandoned write is not a satisfied one.
    governor_.setFaultInjector(nullptr);
    governor_.setGrade(0, 0);
    engine_.runFor(Time::ms(1.0));
    EXPECT_FALSE(governor_.writeAbandoned(0));
    EXPECT_NEAR(machine_.core(0).frequency().ghz(), 1.2, 1e-9);
}

TEST_F(CpuFreqFaultTest, SupersededWriteStopsRetrying)
{
    fault::FaultPlan plan;
    plan.dvfs.failProb = 1.0;
    fault::FaultInjector faults(plan, 5);
    governor_.setFaultInjector(&faults);

    governor_.setGrade(0, 0);
    governor_.setFaultInjector(nullptr);
    governor_.setGrade(0, 4); // supersedes the failing write
    engine_.runFor(Time::ms(10.0));
    EXPECT_EQ(governor_.grade(0), 4u);
    EXPECT_NEAR(machine_.core(0).frequency().ghz(), 1.6, 1e-9);
    EXPECT_FALSE(governor_.writeAbandoned(0));
}

TEST_F(CpuFreqFaultTest, LatencySpikesDelayButApplyTheWrite)
{
    fault::FaultPlan plan;
    plan.dvfs.spikeProb = 1.0;
    plan.dvfs.spikeMean = Time::ms(5.0);
    fault::FaultInjector faults(plan, 6);
    governor_.setFaultInjector(&faults);

    governor_.setGrade(0, 0);
    engine_.runFor(Time::us(60.0)); // past the nominal 50 µs latency
    // Spiked: very likely not applied yet (mean spike 5 ms).
    engine_.runFor(Time::ms(100.0));
    EXPECT_NEAR(machine_.core(0).frequency().ghz(), 1.2, 1e-9);
    EXPECT_GT(faults.stats().dvfsSpikes, 0u);
}

TEST_F(CpuFreqFaultTest, EmptyPlanInjectorIsBitIdentical)
{
    auto settle = [](fault::FaultInjector *inj) {
        Machine machine(config());
        sim::Engine engine(machine, Time::us(100.0));
        CpuFreqGovernor governor(machine, engine);
        if (inj != nullptr)
            governor.setFaultInjector(inj);
        governor.setGrade(0, 3);
        governor.setGrade(2, 1);
        engine.runFor(Time::ms(1.0));
        return std::pair{machine.core(0).frequency().hz(),
                         machine.core(2).frequency().hz()};
    };
    fault::FaultInjector empty(fault::FaultPlan{}, 9);
    EXPECT_EQ(settle(nullptr), settle(&empty));
    EXPECT_EQ(empty.stats().total(), 0u);
}

TEST_F(CpuFreqFaultTest, FaultFreeStatsStayZero)
{
    governor_.setGrade(0, 0);
    governor_.setGrade(1, 5);
    engine_.runFor(Time::ms(1.0));
    EXPECT_EQ(governor_.writeFailures(), 0u);
    EXPECT_EQ(governor_.retriesScheduled(), 0u);
    EXPECT_EQ(governor_.abandonedWrites(), 0u);
}

} // namespace
} // namespace dirigent::machine
