/**
 * @file
 * Tests of the assembled machine: execution, completion records and
 * restarts, program switching, counters, and noise.
 */

#include <gtest/gtest.h>

#include <vector>

#include "machine/machine.h"
#include "sim/engine.h"
#include "workload/benchmarks.h"

namespace dirigent::machine {
namespace {

MachineConfig
quietConfig()
{
    MachineConfig cfg;
    cfg.noiseEventsPerSec = 0.0; // deterministic tests
    cfg.seed = 42;
    return cfg;
}

/** A short, deterministic one-shot program. */
workload::PhaseProgram
shortProgram(double instructions = 2e7)
{
    workload::PhaseProgram prog;
    prog.name = "short";
    workload::Phase p;
    p.name = "p";
    p.instructions = instructions;
    p.cpiBase = 1.0;
    p.llcApki = 0.0;
    p.cpiJitterSigma = 0.0;
    p.instrJitterSigma = 0.0;
    prog.phases = {p};
    return prog;
}

ProcessSpec
specFor(const workload::PhaseProgram &prog, unsigned core, bool fg)
{
    ProcessSpec s;
    s.name = prog.name;
    s.program = &prog;
    s.core = core;
    s.foreground = fg;
    return s;
}

TEST(MachineTest, ConstructionMatchesConfig)
{
    Machine m(quietConfig());
    EXPECT_EQ(m.numCores(), 6u);
    EXPECT_EQ(m.cache().clients(), 6u);
    EXPECT_DOUBLE_EQ(m.core(0).frequency().ghz(), 2.0);
}

TEST(MachineTest, TaskCompletesAndRestarts)
{
    Machine m(quietConfig());
    auto prog = shortProgram(); // 2e7 instr @ 2 GHz = 10 ms
    Pid pid = m.spawnProcess(specFor(prog, 0, true));

    std::vector<CompletionRecord> records;
    m.addCompletionListener(
        [&](const CompletionRecord &rec) { records.push_back(rec); });

    sim::Engine engine(m, Time::us(100.0));
    engine.runUntil(Time::ms(25.0));

    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].pid, pid);
    EXPECT_NEAR(records[0].finished.ms(), 10.0, 0.01);
    EXPECT_NEAR(records[0].duration().ms(), 10.0, 0.01);
    EXPECT_EQ(records[0].executionIndex, 0u);
    EXPECT_EQ(records[1].executionIndex, 1u);
    EXPECT_NEAR(records[1].started.ms(), records[0].finished.ms(), 1e-9);
    EXPECT_TRUE(records[0].foreground);
    EXPECT_NEAR(records[0].instructions, 2e7, 1.0);
}

TEST(MachineTest, CompletionTimeIsSubQuantum)
{
    Machine m(quietConfig());
    auto prog = shortProgram(2.1e6); // 1.05 ms: not a quantum multiple
    m.spawnProcess(specFor(prog, 0, true));
    std::vector<CompletionRecord> records;
    m.addCompletionListener(
        [&](const CompletionRecord &rec) { records.push_back(rec); });
    sim::Engine engine(m, Time::us(100.0));
    engine.runUntil(Time::ms(3.0));
    ASSERT_GE(records.size(), 1u);
    EXPECT_NEAR(records[0].finished.ms(), 1.05, 1e-6);
}

TEST(MachineTest, PausedProcessMakesNoProgress)
{
    Machine m(quietConfig());
    auto prog = shortProgram();
    Pid pid = m.spawnProcess(specFor(prog, 0, true));
    m.os().pause(pid);
    sim::Engine engine(m, Time::us(100.0));
    engine.runUntil(Time::ms(5.0));
    EXPECT_DOUBLE_EQ(m.readCounters(0).instructions, 0.0);
    m.os().resume(pid);
    engine.runUntil(Time::ms(10.0));
    EXPECT_GT(m.readCounters(0).instructions, 0.0);
}

TEST(MachineTest, SwitchProgramTakesEffectNow)
{
    Machine m(quietConfig());
    auto progA = shortProgram();
    auto progB = shortProgram();
    progB.name = "other";
    Pid pid = m.spawnProcess(specFor(progA, 0, false));
    sim::Engine engine(m, Time::us(100.0));
    engine.runUntil(Time::ms(1.0));
    m.switchProgram(pid, &progB);
    EXPECT_EQ(m.os().process(pid).program, &progB);
    EXPECT_DOUBLE_EQ(m.os().process(pid).task->retired(), 0.0);
    // Residency dropped with the program switch.
    EXPECT_DOUBLE_EQ(m.cache().occupancy(0), 0.0);
}

TEST(MachineTest, MultipleCoresRunConcurrently)
{
    Machine m(quietConfig());
    auto prog = shortProgram(1e12);
    std::vector<workload::PhaseProgram> progs(3, prog);
    for (unsigned c = 0; c < 3; ++c)
        m.spawnProcess(specFor(progs[c], c, false));
    sim::Engine engine(m, Time::us(100.0));
    engine.runUntil(Time::ms(1.0));
    for (unsigned c = 0; c < 3; ++c)
        EXPECT_NEAR(m.readCounters(c).instructions, 2e6, 10.0);
    EXPECT_DOUBLE_EQ(m.readCounters(3).instructions, 0.0);
}

TEST(MachineTest, ListenerRemovalStopsDelivery)
{
    Machine m(quietConfig());
    auto prog = shortProgram();
    m.spawnProcess(specFor(prog, 0, true));
    int count = 0;
    size_t handle = m.addCompletionListener(
        [&](const CompletionRecord &) { ++count; });
    sim::Engine engine(m, Time::us(100.0));
    engine.runUntil(Time::ms(12.0));
    EXPECT_EQ(count, 1);
    m.removeCompletionListener(handle);
    engine.runUntil(Time::ms(25.0));
    EXPECT_EQ(count, 1);
}

TEST(MachineTest, OsNoiseStealsTime)
{
    MachineConfig noisy = quietConfig();
    noisy.noiseEventsPerSec = 2000.0;
    noisy.noiseMeanDuration = Time::us(100.0);
    Machine quiet(quietConfig());
    Machine loud(noisy);
    auto prog = shortProgram(1e12);
    quiet.spawnProcess(specFor(prog, 0, false));
    loud.spawnProcess(specFor(prog, 0, false));
    sim::Engine e1(quiet, Time::us(100.0));
    sim::Engine e2(loud, Time::us(100.0));
    e1.runUntil(Time::ms(50.0));
    e2.runUntil(Time::ms(50.0));
    EXPECT_LT(loud.readCounters(0).instructions,
              quiet.readCounters(0).instructions * 0.95);
}

TEST(MachineTest, DeterministicForSameSeed)
{
    auto run = [](uint64_t seed) {
        MachineConfig cfg;
        cfg.seed = seed;
        cfg.noiseEventsPerSec = 40.0;
        Machine m(cfg);
        const auto &lib = workload::BenchmarkLibrary::instance();
        ProcessSpec s;
        s.name = "fg";
        s.program = &lib.get("ferret").program;
        s.core = 0;
        s.foreground = true;
        m.spawnProcess(s);
        sim::Engine engine(m, Time::us(100.0));
        engine.runUntil(Time::ms(100.0));
        return m.readCounters(0).instructions;
    };
    EXPECT_DOUBLE_EQ(run(7), run(7));
    EXPECT_NE(run(7), run(8));
}

TEST(MachineTest, NowTracksEngine)
{
    Machine m(quietConfig());
    auto prog = shortProgram(1e12);
    m.spawnProcess(specFor(prog, 0, false));
    sim::Engine engine(m, Time::us(100.0));
    engine.runUntil(Time::ms(3.0));
    EXPECT_DOUBLE_EQ(m.now().ms(), 3.0);
}

TEST(MachineDeathTest, BadCoreAccess)
{
    Machine m(quietConfig());
    EXPECT_DEATH(m.core(10), "bad core");
}

} // namespace
} // namespace dirigent::machine
