/**
 * @file
 * Tests of the CPUFreq governor: grade table, transition latency,
 * supersession, and the equispaced-subset helper Dirigent uses.
 */

#include <gtest/gtest.h>

#include "machine/cpufreq.h"

namespace dirigent::machine {
namespace {

MachineConfig
config()
{
    MachineConfig cfg;
    cfg.noiseEventsPerSec = 0.0;
    return cfg;
}

class CpuFreqTest : public testing::Test
{
  protected:
    CpuFreqTest()
        : machine_(config()), engine_(machine_, Time::us(100.0)),
          governor_(machine_, engine_)
    {
    }

    Machine machine_;
    sim::Engine engine_;
    CpuFreqGovernor governor_;
};

TEST_F(CpuFreqTest, NineGradesSpanPaperRange)
{
    // Xeon E5-2618L v3: 9 steps, 1.2–2.0 GHz in 0.1 GHz increments.
    EXPECT_EQ(governor_.numGrades(), 9u);
    EXPECT_NEAR(governor_.gradeFreq(0).ghz(), 1.2, 1e-9);
    EXPECT_NEAR(governor_.gradeFreq(8).ghz(), 2.0, 1e-9);
    EXPECT_NEAR(governor_.gradeFreq(4).ghz(), 1.6, 1e-9);
    for (unsigned g = 1; g < 9; ++g)
        EXPECT_NEAR(governor_.gradeFreq(g).ghz() -
                        governor_.gradeFreq(g - 1).ghz(),
                    0.1, 1e-9);
}

TEST_F(CpuFreqTest, CoresStartAtMax)
{
    for (unsigned c = 0; c < machine_.numCores(); ++c) {
        EXPECT_EQ(governor_.grade(c), 8u);
        EXPECT_NEAR(machine_.core(c).frequency().ghz(), 2.0, 1e-9);
    }
}

TEST_F(CpuFreqTest, TransitionAppliesAfterLatency)
{
    governor_.setGrade(0, 0);
    EXPECT_EQ(governor_.grade(0), 0u); // target visible immediately
    // Hardware not yet switched.
    EXPECT_NEAR(machine_.core(0).frequency().ghz(), 2.0, 1e-9);
    engine_.runFor(Time::us(60.0)); // > 50 µs transition latency
    EXPECT_NEAR(machine_.core(0).frequency().ghz(), 1.2, 1e-9);
}

TEST_F(CpuFreqTest, LaterRequestSupersedes)
{
    governor_.setGrade(0, 0);
    governor_.setGrade(0, 8); // changed mind before transition lands
    engine_.runFor(Time::ms(1.0));
    EXPECT_NEAR(machine_.core(0).frequency().ghz(), 2.0, 1e-9);
}

TEST_F(CpuFreqTest, RedundantRequestIsNoop)
{
    governor_.setGrade(0, 8);
    EXPECT_EQ(engine_.events().size(), 0u);
}

TEST_F(CpuFreqTest, SetAllMax)
{
    governor_.setGrade(0, 0);
    governor_.setGrade(3, 2);
    engine_.runFor(Time::ms(1.0));
    governor_.setAllMax();
    engine_.runFor(Time::ms(1.0));
    for (unsigned c = 0; c < machine_.numCores(); ++c)
        EXPECT_NEAR(machine_.core(c).frequency().ghz(), 2.0, 1e-9);
}

TEST_F(CpuFreqTest, EquispacedFiveOfNine)
{
    // Dirigent uses 5 equi-spaced of the 9 grades: 1.2, 1.4, 1.6,
    // 1.8, 2.0 GHz — indices 0, 2, 4, 6, 8.
    auto grades = governor_.equispacedGrades(5);
    EXPECT_EQ(grades, (std::vector<unsigned>{0, 2, 4, 6, 8}));
}

TEST_F(CpuFreqTest, EquispacedEndpoints)
{
    auto two = governor_.equispacedGrades(2);
    EXPECT_EQ(two, (std::vector<unsigned>{0, 8}));
    auto all = governor_.equispacedGrades(9);
    EXPECT_EQ(all.front(), 0u);
    EXPECT_EQ(all.back(), 8u);
    EXPECT_EQ(all.size(), 9u);
}

TEST_F(CpuFreqTest, GradeBoundsChecked)
{
    EXPECT_DEATH(governor_.setGrade(0, 99), "grade");
    EXPECT_DEATH(governor_.setGrade(99, 0), "core");
    EXPECT_DEATH(governor_.gradeFreq(99), "grade");
}

} // namespace
} // namespace dirigent::machine
