/**
 * @file
 * Reentrancy and ordering tests for the machine's completion-listener
 * machinery: listeners that mutate the listener list, switch programs,
 * or pause processes from inside a completion callback — the patterns
 * the rotate driver, arrival driver, and Dirigent runtime rely on.
 */

#include <gtest/gtest.h>

#include "machine/machine.h"
#include "sim/engine.h"
#include "workload/benchmarks.h"

namespace dirigent::machine {
namespace {

MachineConfig
quietConfig()
{
    MachineConfig cfg;
    cfg.noiseEventsPerSec = 0.0;
    cfg.seed = 21;
    return cfg;
}

workload::PhaseProgram
shortProgram(const char *name, double instructions)
{
    workload::PhaseProgram prog;
    prog.name = name;
    workload::Phase p;
    p.name = "p";
    p.instructions = instructions;
    p.cpiBase = 1.0;
    p.llcApki = 0.0;
    p.cpiJitterSigma = 0.0;
    p.instrJitterSigma = 0.0;
    prog.phases = {p};
    return prog;
}

Pid
spawn(Machine &m, const workload::PhaseProgram &prog, unsigned core,
      bool fg)
{
    ProcessSpec s;
    s.name = prog.name;
    s.program = &prog;
    s.core = core;
    s.foreground = fg;
    return m.spawnProcess(s);
}

TEST(ListenerReentrancyTest, ListenerMayRemoveItself)
{
    Machine m(quietConfig());
    auto prog = shortProgram("fg", 2e6); // 1 ms per execution
    spawn(m, prog, 0, true);
    sim::Engine engine(m, Time::us(100.0));

    int calls = 0;
    size_t handle = 0;
    handle = m.addCompletionListener(
        [&](const CompletionRecord &) {
            ++calls;
            m.removeCompletionListener(handle);
        });
    engine.runUntil(Time::ms(5.0));
    EXPECT_EQ(calls, 1);
}

TEST(ListenerReentrancyTest, ListenerMayAddListener)
{
    Machine m(quietConfig());
    auto prog = shortProgram("fg", 2e6);
    spawn(m, prog, 0, true);
    sim::Engine engine(m, Time::us(100.0));

    int primary = 0, secondary = 0;
    m.addCompletionListener([&](const CompletionRecord &) {
        if (++primary == 1) {
            m.addCompletionListener(
                [&](const CompletionRecord &) { ++secondary; });
        }
    });
    engine.runUntil(Time::ms(3.5)); // ~3 completions
    EXPECT_EQ(primary, 3);
    EXPECT_EQ(secondary, 2); // attached after the first completion
}

TEST(ListenerReentrancyTest, ListenerMaySwitchOtherProcessProgram)
{
    // The rotate-driver pattern: an FG completion switches BG programs
    // mid-run, including on cores that already advanced this quantum.
    Machine m(quietConfig());
    auto fgProg = shortProgram("fg", 2e6);
    auto bgA = shortProgram("bgA", 1e15);
    bgA.loop = true;
    auto bgB = shortProgram("bgB", 1e15);
    bgB.loop = true;
    spawn(m, fgProg, 2, true); // FG on a *later* core than one BG
    Pid bg0 = spawn(m, bgA, 0, false);
    Pid bg1 = spawn(m, bgA, 4, false);
    sim::Engine engine(m, Time::us(100.0));

    int switches = 0;
    m.addCompletionListener([&](const CompletionRecord &rec) {
        if (!rec.foreground)
            return;
        ++switches;
        m.switchProgram(bg0, switches % 2 ? &bgB : &bgA);
        m.switchProgram(bg1, switches % 2 ? &bgB : &bgA);
    });
    engine.runUntil(Time::ms(10.0));
    EXPECT_GE(switches, 9);
    EXPECT_EQ(m.os().process(bg0).program->name,
              switches % 2 ? "bgB" : "bgA");
    // BG processes kept running throughout (their counters advanced).
    EXPECT_GT(m.readCounters(0).instructions, 0.0);
    EXPECT_GT(m.readCounters(4).instructions, 0.0);
}

TEST(ListenerReentrancyTest, ListenerMayPauseCompletingProcess)
{
    // The arrival-driver pattern: pause the process whose task just
    // completed, from inside the completion callback.
    Machine m(quietConfig());
    auto prog = shortProgram("fg", 2e6);
    Pid pid = spawn(m, prog, 0, true);
    sim::Engine engine(m, Time::us(100.0));

    int completions = 0;
    m.addCompletionListener([&](const CompletionRecord &) {
        ++completions;
        m.os().pause(pid);
    });
    engine.runUntil(Time::ms(10.0));
    EXPECT_EQ(completions, 1); // paused after the first completion
    double instrAtPause = m.readCounters(0).instructions;
    engine.runUntil(Time::ms(20.0));
    EXPECT_DOUBLE_EQ(m.readCounters(0).instructions, instrAtPause);

    // Resuming continues the already-restarted next task.
    m.os().resume(pid);
    engine.runUntil(Time::ms(25.0));
    EXPECT_EQ(completions, 2);
}

TEST(ListenerReentrancyTest, MultipleListenersSeeSameRecord)
{
    Machine m(quietConfig());
    auto prog = shortProgram("fg", 2e6);
    spawn(m, prog, 0, true);
    sim::Engine engine(m, Time::us(100.0));

    std::vector<double> seenA, seenB;
    m.addCompletionListener([&](const CompletionRecord &rec) {
        seenA.push_back(rec.finished.sec());
    });
    m.addCompletionListener([&](const CompletionRecord &rec) {
        seenB.push_back(rec.finished.sec());
    });
    engine.runUntil(Time::ms(4.5));
    ASSERT_EQ(seenA.size(), seenB.size());
    EXPECT_EQ(seenA, seenB);
    EXPECT_GE(seenA.size(), 4u);
}

} // namespace
} // namespace dirigent::machine
