/**
 * @file
 * Integration tests of bandwidth regulation on the assembled machine:
 * budgeted cores stall when their miss-bandwidth budget is exhausted.
 */

#include <gtest/gtest.h>

#include "machine/machine.h"
#include "sim/engine.h"
#include "workload/benchmarks.h"

namespace dirigent::machine {
namespace {

MachineConfig
quietConfig()
{
    MachineConfig cfg;
    cfg.noiseEventsPerSec = 0.0;
    cfg.seed = 3;
    return cfg;
}

Pid
spawnLbm(Machine &m, unsigned core)
{
    const auto &lib = workload::BenchmarkLibrary::instance();
    ProcessSpec s;
    s.name = "lbm";
    s.program = &lib.get("lbm").program;
    s.core = core;
    s.foreground = false;
    return m.spawnProcess(s);
}

TEST(BwGuardIntegrationTest, BudgetThrottlesThroughput)
{
    Machine m(quietConfig());
    spawnLbm(m, 0);
    spawnLbm(m, 1);
    // Core 1 capped at a fraction of lbm's natural miss bandwidth.
    m.bwGuard().setBudget(1, 0.3e9);
    sim::Engine engine(m, Time::us(100.0));
    engine.runUntil(Time::ms(200.0));

    double freeInstr = m.readCounters(0).instructions;
    double cappedInstr = m.readCounters(1).instructions;
    EXPECT_LT(cappedInstr, freeInstr * 0.75);
    EXPECT_GT(m.bwGuard().exhaustions(1), 50u);
    EXPECT_EQ(m.bwGuard().exhaustions(0), 0u);
}

TEST(BwGuardIntegrationTest, BandwidthHeldNearBudget)
{
    Machine m(quietConfig());
    spawnLbm(m, 0);
    const double budget = 0.5e9;
    m.bwGuard().setBudget(0, budget);
    sim::Engine engine(m, Time::us(100.0));
    Time span = Time::ms(500.0);
    engine.runUntil(span);

    double bytes = m.readCounters(0).llcMisses * 64.0;
    double achieved = bytes / span.sec();
    // Achieved miss bandwidth stays at/under the budget (within the
    // one-quantum overshoot granularity).
    EXPECT_LT(achieved, budget * 1.15);
    EXPECT_GT(achieved, budget * 0.5);
}

TEST(BwGuardIntegrationTest, RemovingBudgetRestoresThroughput)
{
    Machine m(quietConfig());
    spawnLbm(m, 0);
    m.bwGuard().setBudget(0, 0.2e9);
    sim::Engine engine(m, Time::us(100.0));
    engine.runUntil(Time::ms(100.0));
    double throttledRate = m.readCounters(0).instructions / 0.1;

    m.bwGuard().setBudget(0, 0.0);
    double before = m.readCounters(0).instructions;
    engine.runUntil(Time::ms(200.0));
    double freeRate = (m.readCounters(0).instructions - before) / 0.1;
    EXPECT_GT(freeRate, throttledRate * 1.5);
}

TEST(BwGuardIntegrationTest, UnregulatedMachineUnaffected)
{
    // Default budgets are zero: identical behaviour with the guard
    // present (regression guard for the wiring).
    Machine a(quietConfig());
    Machine b(quietConfig());
    spawnLbm(a, 0);
    spawnLbm(b, 0);
    b.bwGuard().setBudget(0, 1e18); // absurdly high = never exhausted
    sim::Engine ea(a, Time::us(100.0));
    sim::Engine eb(b, Time::us(100.0));
    ea.runUntil(Time::ms(100.0));
    eb.runUntil(Time::ms(100.0));
    EXPECT_DOUBLE_EQ(a.readCounters(0).instructions,
                     b.readCounters(0).instructions);
}

} // namespace
} // namespace dirigent::machine
