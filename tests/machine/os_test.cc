/**
 * @file
 * Tests of the OS model: spawning, pinning, pause/resume, program
 * switching, and task restart.
 */

#include <gtest/gtest.h>

#include "machine/os.h"
#include "workload/benchmarks.h"

namespace dirigent::machine {
namespace {

const workload::PhaseProgram &
fgProgram()
{
    return workload::BenchmarkLibrary::instance().get("ferret").program;
}

const workload::PhaseProgram &
bgProgram()
{
    return workload::BenchmarkLibrary::instance().get("lbm").program;
}

ProcessSpec
spec(const std::string &name, unsigned core, bool fg)
{
    ProcessSpec s;
    s.name = name;
    s.program = fg ? &fgProgram() : &bgProgram();
    s.core = core;
    s.foreground = fg;
    return s;
}

TEST(OsTest, SpawnAssignsDensePids)
{
    Os os(4, Rng(1));
    EXPECT_EQ(os.spawn(spec("a", 0, true)), 0u);
    EXPECT_EQ(os.spawn(spec("b", 1, false)), 1u);
    EXPECT_EQ(os.processCount(), 2u);
}

TEST(OsTest, ProcessLookup)
{
    Os os(4, Rng(1));
    Pid pid = os.spawn(spec("a", 2, true));
    const Process &proc = os.process(pid);
    EXPECT_EQ(proc.name, "a");
    EXPECT_EQ(proc.core, 2u);
    EXPECT_TRUE(proc.foreground);
    EXPECT_TRUE(proc.runnable());
    EXPECT_NE(proc.task, nullptr);
}

TEST(OsTest, CoreMap)
{
    Os os(4, Rng(1));
    Pid pid = os.spawn(spec("a", 3, false));
    EXPECT_EQ(os.processOnCore(3)->pid, pid);
    EXPECT_EQ(os.processOnCore(0), nullptr);
}

TEST(OsDeathTest, DoubleOccupancyIsFatal)
{
    Os os(4, Rng(1));
    os.spawn(spec("a", 0, true));
    EXPECT_EXIT(os.spawn(spec("b", 0, false)),
                testing::ExitedWithCode(1), "already runs");
}

TEST(OsDeathTest, BadCoreIsFatal)
{
    Os os(2, Rng(1));
    EXPECT_EXIT(os.spawn(spec("a", 7, true)), testing::ExitedWithCode(1),
                "cannot pin");
}

TEST(OsTest, PauseAndResume)
{
    Os os(4, Rng(1));
    Pid pid = os.spawn(spec("a", 0, false));
    os.pause(pid);
    EXPECT_FALSE(os.process(pid).runnable());
    EXPECT_EQ(os.process(pid).state, ProcState::Paused);
    os.pause(pid); // idempotent
    os.resume(pid);
    EXPECT_TRUE(os.process(pid).runnable());
    os.resume(pid); // idempotent
    EXPECT_TRUE(os.process(pid).runnable());
}

TEST(OsTest, RestartCreatesFreshTask)
{
    Os os(4, Rng(1));
    Pid pid = os.spawn(spec("a", 0, true));
    Process &proc = os.process(pid);
    proc.task->retire(1000.0);
    const workload::Task *old = proc.task.get();
    os.restartTask(pid, Time::sec(5.0));
    EXPECT_NE(proc.task.get(), old);
    EXPECT_DOUBLE_EQ(proc.task->retired(), 0.0);
    EXPECT_DOUBLE_EQ(proc.taskStart.sec(), 5.0);
}

TEST(OsTest, NextProgramAppliesAtRestart)
{
    Os os(4, Rng(1));
    Pid pid = os.spawn(spec("a", 0, false));
    os.setNextProgram(pid, &fgProgram());
    // Still the old program until restart.
    EXPECT_EQ(os.process(pid).program, &bgProgram());
    os.restartTask(pid, Time::sec(1.0));
    EXPECT_EQ(os.process(pid).program, &fgProgram());
    EXPECT_EQ(os.process(pid).nextProgram, nullptr);
    EXPECT_EQ(&os.process(pid).task->program(), &fgProgram());
}

TEST(OsTest, FgBgPidPartition)
{
    Os os(6, Rng(1));
    os.spawn(spec("fg0", 0, true));
    os.spawn(spec("bg0", 1, false));
    os.spawn(spec("fg1", 2, true));
    os.spawn(spec("bg1", 3, false));
    EXPECT_EQ(os.foregroundPids(), (std::vector<Pid>{0, 2}));
    EXPECT_EQ(os.backgroundPids(), (std::vector<Pid>{1, 3}));
    EXPECT_EQ(os.pids().size(), 4u);
}

TEST(OsTest, TaskStreamsDifferAcrossRestarts)
{
    // Per-instance jitter means consecutive tasks differ (their phase
    // targets are drawn from fresh streams).
    Os os(4, Rng(1));
    Pid pid = os.spawn(spec("a", 0, true));
    double first = os.process(pid).task->remainingInPhase();
    os.restartTask(pid, Time::sec(1.0));
    double second = os.process(pid).task->remainingInPhase();
    EXPECT_NE(first, second);
}

} // namespace
} // namespace dirigent::machine
