/**
 * @file
 * Tests of CAT mask-write failures: a failed reconfiguration leaves the
 * previous partition fully in force and is reported to the caller.
 */

#include <gtest/gtest.h>

#include "fault/injector.h"
#include "machine/cat.h"
#include "workload/benchmarks.h"

namespace dirigent::machine {
namespace {

MachineConfig
config()
{
    MachineConfig cfg;
    cfg.noiseEventsPerSec = 0.0;
    return cfg;
}

void
spawnMix(Machine &m, unsigned fgCount)
{
    const auto &lib = workload::BenchmarkLibrary::instance();
    for (unsigned c = 0; c < m.numCores(); ++c) {
        ProcessSpec s;
        bool fg = c < fgCount;
        s.name = fg ? "fg" : "bg";
        s.program = fg ? &lib.get("ferret").program
                       : &lib.get("lbm").program;
        s.core = c;
        s.foreground = fg;
        m.spawnProcess(s);
    }
}

TEST(CatFaultTest, FailedWriteLeavesPartitionUntouched)
{
    Machine m(config());
    spawnMix(m, 1);
    CatController cat(m);
    ASSERT_TRUE(cat.setFgWays(5));

    fault::FaultPlan plan;
    plan.cat.failProb = 1.0;
    fault::FaultInjector faults(plan, 1);
    cat.setFaultInjector(&faults);

    EXPECT_FALSE(cat.setFgWays(8));
    EXPECT_EQ(cat.fgWays(), 5u); // previous partition in force
    EXPECT_EQ(m.cache().wayMask(0), mem::wayRange(0, 5));
    EXPECT_FALSE(cat.setShared());
    EXPECT_TRUE(cat.partitioned());
    EXPECT_EQ(cat.failedReconfigs(), 2u);
    EXPECT_EQ(faults.stats().catFailures, 2u);
}

TEST(CatFaultTest, RecoveredWriteApplies)
{
    Machine m(config());
    spawnMix(m, 1);
    CatController cat(m);

    fault::FaultPlan plan;
    plan.cat.failProb = 1.0;
    fault::FaultInjector faults(plan, 2);
    cat.setFaultInjector(&faults);
    EXPECT_FALSE(cat.setFgWays(5));

    cat.setFaultInjector(nullptr); // fault clears
    EXPECT_TRUE(cat.setFgWays(5));
    EXPECT_EQ(cat.fgWays(), 5u);
    EXPECT_EQ(m.cache().wayMask(0), mem::wayRange(0, 5));
}

TEST(CatFaultTest, EmptyPlanInjectorNeverFails)
{
    Machine m(config());
    spawnMix(m, 2);
    CatController cat(m);
    fault::FaultInjector faults(fault::FaultPlan{}, 3);
    cat.setFaultInjector(&faults);
    for (unsigned w = 1; w < cat.numWays(); ++w)
        EXPECT_TRUE(cat.setFgWays(w));
    EXPECT_TRUE(cat.setShared());
    EXPECT_EQ(cat.failedReconfigs(), 0u);
    EXPECT_EQ(faults.stats().total(), 0u);
}

} // namespace
} // namespace dirigent::machine
