/**
 * @file
 * Tests of the CAT way-partition controller.
 */

#include <gtest/gtest.h>

#include "machine/cat.h"
#include "workload/benchmarks.h"

namespace dirigent::machine {
namespace {

MachineConfig
config()
{
    MachineConfig cfg;
    cfg.noiseEventsPerSec = 0.0;
    return cfg;
}

void
spawnMix(Machine &m, unsigned fgCount)
{
    const auto &lib = workload::BenchmarkLibrary::instance();
    for (unsigned c = 0; c < m.numCores(); ++c) {
        ProcessSpec s;
        bool fg = c < fgCount;
        s.name = fg ? "fg" : "bg";
        s.program = fg ? &lib.get("ferret").program
                       : &lib.get("lbm").program;
        s.core = c;
        s.foreground = fg;
        m.spawnProcess(s);
    }
}

TEST(CatTest, StartsShared)
{
    Machine m(config());
    CatController cat(m);
    EXPECT_FALSE(cat.partitioned());
    EXPECT_EQ(cat.fgWays(), 0u);
    EXPECT_EQ(cat.numWays(), 20u);
}

TEST(CatTest, PartitionSplitsMasks)
{
    Machine m(config());
    spawnMix(m, 2);
    CatController cat(m);
    cat.setFgWays(5);
    EXPECT_TRUE(cat.partitioned());
    EXPECT_EQ(cat.fgWays(), 5u);
    // FG cores 0–1 get ways [0,5); BG cores 2–5 get ways [5,20).
    EXPECT_EQ(m.cache().wayMask(0), mem::wayRange(0, 5));
    EXPECT_EQ(m.cache().wayMask(1), mem::wayRange(0, 5));
    for (unsigned c = 2; c < 6; ++c)
        EXPECT_EQ(m.cache().wayMask(c), mem::wayRange(5, 20));
}

TEST(CatTest, SharedRestoresFullMasks)
{
    Machine m(config());
    spawnMix(m, 1);
    CatController cat(m);
    cat.setFgWays(4);
    cat.setShared();
    EXPECT_FALSE(cat.partitioned());
    for (unsigned c = 0; c < 6; ++c)
        EXPECT_EQ(m.cache().wayMask(c), mem::wayRange(0, 20));
}

TEST(CatTest, ClampsToValidRange)
{
    Machine m(config());
    spawnMix(m, 1);
    CatController cat(m);
    cat.setFgWays(0);
    EXPECT_EQ(cat.fgWays(), 1u); // clamped up
    cat.setFgWays(100);
    EXPECT_EQ(cat.fgWays(), 19u); // clamped below numWays
}

TEST(CatTest, GrowAndShrinkAreIncremental)
{
    Machine m(config());
    spawnMix(m, 1);
    CatController cat(m);
    cat.setFgWays(2);
    cat.setFgWays(cat.fgWays() + 1);
    EXPECT_EQ(cat.fgWays(), 3u);
    cat.setFgWays(cat.fgWays() - 1);
    EXPECT_EQ(cat.fgWays(), 2u);
}

TEST(CatTest, AppliesOnlyToSpawnedProcesses)
{
    Machine m(config());
    CatController cat(m);
    cat.setFgWays(5); // no processes yet: nothing to apply, no crash
    spawnMix(m, 1);
    // New processes still have the default full mask until re-applied.
    EXPECT_EQ(m.cache().wayMask(0), mem::wayRange(0, 20));
    cat.setFgWays(5);
    EXPECT_EQ(m.cache().wayMask(0), mem::wayRange(0, 5));
}

} // namespace
} // namespace dirigent::machine
