/**
 * @file
 * Regression tests for sampler overrun handling — a wake landing one or
 * more whole periods late consumes the intervening tick indices so
 * Tick::index/Tick::scheduled stay consistent with the nominal cadence
 * — plus fault-injected stalls, missed wake-ups, and callback overruns.
 */

#include <gtest/gtest.h>

#include <vector>

#include "fault/injector.h"
#include "machine/sampler.h"
#include "sim/engine.h"

namespace dirigent::machine {
namespace {

class NullComponent : public sim::Component
{
  public:
    void advance(Time, Time) override {}
};

class SamplerFaultTest : public testing::Test
{
  protected:
    SamplerFaultTest() : engine_(root_, Time::us(100.0)) {}

    /** index/scheduled bookkeeping every tick stream must satisfy. */
    void checkConsistency(Time period) const
    {
        for (size_t i = 0; i < ticks_.size(); ++i) {
            const auto &t = ticks_[i];
            // The wake never lands a whole period past its nominal time
            // — that period would have been consumed as a skipped tick.
            EXPECT_GE(t.actual.sec(), t.scheduled.sec());
            EXPECT_LT((t.actual - t.scheduled).sec(), period.sec());
            if (i == 0)
                continue;
            const auto &p = ticks_[i - 1];
            EXPECT_GT(t.index, p.index);
            // Skipped ticks consume exactly their indices.
            EXPECT_GE(t.index - p.index, t.skipped + 1);
        }
    }

    NullComponent root_;
    sim::Engine engine_;
    std::vector<PeriodicSampler::Tick> ticks_;
};

TEST_F(SamplerFaultTest, OverrunPastPeriodSkipsTickIndices)
{
    // 12 ms overshoot on a 5 ms period: every wake lands two whole
    // periods late, so each delivered tick consumes two skipped ones.
    // (Regression: index used to advance by one while scheduled drifted
    // a full overshoot behind actual.)
    PeriodicSampler sampler(
        engine_, Time::ms(5.0), Time::ms(12.0), Time(), Rng(1),
        [&](const PeriodicSampler::Tick &t) { ticks_.push_back(t); });
    sampler.start();
    engine_.runUntil(Time::ms(120.0));
    ASSERT_GE(ticks_.size(), 5u);
    checkConsistency(Time::ms(5.0));
    for (const auto &t : ticks_)
        EXPECT_EQ(t.skipped, 2u);
    // First wake at 17 ms: nominal 15 ms (indices 0 and 1 skipped).
    EXPECT_EQ(ticks_[0].index, 2u);
    EXPECT_NEAR(ticks_[0].scheduled.ms(), 15.0, 1e-9);
    EXPECT_NEAR(ticks_[0].actual.ms(), 17.0, 1e-9);
    EXPECT_EQ(ticks_[1].index, 5u);
}

TEST_F(SamplerFaultTest, FaultFreeTicksHaveNoSkips)
{
    PeriodicSampler sampler(
        engine_, Time::ms(5.0), Time::us(50.0), Time::us(20.0), Rng(2),
        [&](const PeriodicSampler::Tick &t) { ticks_.push_back(t); });
    sampler.start();
    engine_.runUntil(Time::ms(60.0));
    ASSERT_GE(ticks_.size(), 10u);
    checkConsistency(Time::ms(5.0));
    for (size_t i = 0; i < ticks_.size(); ++i) {
        EXPECT_EQ(ticks_[i].index, i);
        EXPECT_EQ(ticks_[i].skipped, 0u);
    }
}

TEST_F(SamplerFaultTest, InjectedStallsKeepIndicesConsistent)
{
    fault::FaultPlan plan;
    plan.sampler.stallProb = 0.5;
    plan.sampler.stallMean = Time::ms(15.0); // stalls usually skip ticks
    fault::FaultInjector faults(plan, 77);
    PeriodicSampler sampler(
        engine_, Time::ms(5.0), Time(), Time(), Rng(3),
        [&](const PeriodicSampler::Tick &t) { ticks_.push_back(t); });
    sampler.setFaultInjector(&faults);
    sampler.start();
    engine_.runUntil(Time::sec(1.0));
    ASSERT_GE(ticks_.size(), 20u);
    checkConsistency(Time::ms(5.0));
    EXPECT_GT(faults.stats().samplerStalls, 0u);
    // At least one stall actually skipped ticks.
    uint64_t skippedTotal = 0;
    for (const auto &t : ticks_)
        skippedTotal += t.skipped;
    EXPECT_GT(skippedTotal, 0u);
}

TEST_F(SamplerFaultTest, MissedWakesSkipCallbacksNotTheClock)
{
    fault::FaultPlan plan;
    plan.sampler.missProb = 0.5;
    fault::FaultInjector faults(plan, 78);
    PeriodicSampler sampler(
        engine_, Time::ms(5.0), Time(), Time(), Rng(4),
        [&](const PeriodicSampler::Tick &t) { ticks_.push_back(t); });
    sampler.setFaultInjector(&faults);
    sampler.start();
    engine_.runUntil(Time::sec(1.0));
    // ~200 nominal ticks; about half the callbacks are suppressed, but
    // the sampler keeps ticking and indices stay strictly increasing.
    EXPECT_GT(ticks_.size(), 50u);
    EXPECT_LT(ticks_.size(), 150u);
    EXPECT_GT(faults.stats().samplerMisses, 0u);
    checkConsistency(Time::ms(5.0));
    // A missed wake consumes its index: gaps appear in the stream.
    EXPECT_GT(ticks_.back().index + 1, ticks_.size());
}

TEST_F(SamplerFaultTest, CallbackOverrunsDelayTheNextWake)
{
    fault::FaultPlan plan;
    plan.sampler.overrunProb = 1.0;
    plan.sampler.overrunMean = Time::ms(2.0);
    fault::FaultInjector faults(plan, 79);
    PeriodicSampler sampler(
        engine_, Time::ms(5.0), Time(), Time(), Rng(5),
        [&](const PeriodicSampler::Tick &t) { ticks_.push_back(t); });
    sampler.setFaultInjector(&faults);
    sampler.start();
    engine_.runUntil(Time::ms(500.0));
    ASSERT_GE(ticks_.size(), 10u);
    checkConsistency(Time::ms(5.0));
    EXPECT_GT(faults.stats().samplerOverruns, 0u);
    // Every gap includes the overrun on top of the 5 ms period.
    for (size_t i = 1; i < ticks_.size(); ++i) {
        EXPECT_GT((ticks_[i].actual - ticks_[i - 1].actual).ms(), 5.0);
    }
}

TEST_F(SamplerFaultTest, NullInjectorIsBitIdentical)
{
    auto run = [&](bool attach) {
        std::vector<PeriodicSampler::Tick> out;
        NullComponent root;
        sim::Engine engine(root, Time::us(100.0));
        fault::FaultInjector faults(fault::FaultPlan{}, 123);
        PeriodicSampler sampler(
            engine, Time::ms(5.0), Time::us(50.0), Time::us(20.0),
            Rng(42),
            [&](const PeriodicSampler::Tick &t) { out.push_back(t); });
        if (attach)
            sampler.setFaultInjector(&faults);
        sampler.start();
        engine.runUntil(Time::ms(100.0));
        return out;
    };
    auto plain = run(false);
    auto withEmpty = run(true);
    ASSERT_EQ(plain.size(), withEmpty.size());
    for (size_t i = 0; i < plain.size(); ++i) {
        EXPECT_EQ(plain[i].index, withEmpty[i].index);
        EXPECT_EQ(plain[i].scheduled.sec(), withEmpty[i].scheduled.sec());
        EXPECT_EQ(plain[i].actual.sec(), withEmpty[i].actual.sec());
        EXPECT_EQ(plain[i].skipped, withEmpty[i].skipped);
    }
}

} // namespace
} // namespace dirigent::machine
