/**
 * @file
 * Unit and statistical tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "common/stats.h"

namespace dirigent {
namespace {

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++equal;
    EXPECT_LT(equal, 3);
}

TEST(RngTest, ForkIsDeterministicAndIndependent)
{
    Rng parent1(7), parent2(7);
    Rng c1 = parent1.fork(11);
    Rng c2 = parent2.fork(11);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(c1.next(), c2.next());

    // Different keys give different streams.
    Rng d1 = parent1.fork(12);
    EXPECT_NE(c1.next(), d1.next());
}

TEST(RngTest, ForkDoesNotPerturbParent)
{
    Rng a(42), b(42);
    (void)a.fork(5);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, UniformInRange)
{
    Rng rng(5);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformBoundedRange)
{
    Rng rng(6);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform(2.0, 5.0);
        EXPECT_GE(u, 2.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(RngTest, UniformMeanIsHalf)
{
    Rng rng(7);
    OnlineStats stats;
    for (int i = 0; i < 100000; ++i)
        stats.add(rng.uniform());
    EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(RngTest, BelowStaysInRange)
{
    Rng rng(8);
    std::vector<int> counts(7, 0);
    for (int i = 0; i < 7000; ++i)
        counts[rng.below(7)]++;
    for (int c : counts)
        EXPECT_GT(c, 700); // roughly uniform: expect ~1000 each
}

TEST(RngDeathTest, BelowZeroPanics)
{
    Rng rng(9);
    EXPECT_DEATH(rng.below(0), "n > 0");
}

TEST(RngTest, NormalMoments)
{
    Rng rng(10);
    OnlineStats stats;
    for (int i = 0; i < 100000; ++i)
        stats.add(rng.normal(3.0, 2.0));
    EXPECT_NEAR(stats.mean(), 3.0, 0.05);
    EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(RngTest, LognormalMeanMatchesRequest)
{
    Rng rng(11);
    OnlineStats stats;
    for (int i = 0; i < 200000; ++i)
        stats.add(rng.lognormalMean(1.0, 0.2));
    EXPECT_NEAR(stats.mean(), 1.0, 0.01);
}

TEST(RngTest, LognormalIsPositive)
{
    Rng rng(12);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GT(rng.lognormalMean(0.5, 0.5), 0.0);
}

TEST(RngTest, ExponentialMean)
{
    Rng rng(13);
    OnlineStats stats;
    for (int i = 0; i < 100000; ++i)
        stats.add(rng.exponential(2.5));
    EXPECT_NEAR(stats.mean(), 2.5, 0.05);
}

TEST(RngTest, ChanceFrequency)
{
    Rng rng(14);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        if (rng.chance(0.3))
            ++hits;
    EXPECT_NEAR(double(hits) / 100000.0, 0.3, 0.01);
}

TEST(RngTest, ChanceExtremes)
{
    Rng rng(15);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(SplitmixTest, AdvancesState)
{
    uint64_t s = 0;
    uint64_t a = splitmix64(s);
    uint64_t b = splitmix64(s);
    EXPECT_NE(a, b);
    EXPECT_NE(s, 0u);
}

} // namespace
} // namespace dirigent
