/**
 * @file
 * Unit tests for logging levels and the panic/assert machinery.
 */

#include <gtest/gtest.h>

#include "common/log.h"

namespace dirigent {
namespace {

class LogLevelGuard
{
  public:
    LogLevelGuard() : saved_(logLevel()) {}
    ~LogLevelGuard() { setLogLevel(saved_); }

  private:
    LogLevel saved_;
};

TEST(LogTest, LevelRoundTrips)
{
    LogLevelGuard guard;
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(LogLevel::Verbose);
    EXPECT_EQ(logLevel(), LogLevel::Verbose);
    setLogLevel(LogLevel::Normal);
    EXPECT_EQ(logLevel(), LogLevel::Normal);
}

TEST(LogTest, InformAndWarnDoNotTerminate)
{
    LogLevelGuard guard;
    setLogLevel(LogLevel::Quiet);
    inform("suppressed message");
    verbose("suppressed debug");
    warn("warning goes to stderr");
    SUCCEED();
}

TEST(LogDeathTest, PanicAborts)
{
    EXPECT_DEATH(DIRIGENT_PANIC("boom %d", 42), "boom 42");
}

TEST(LogDeathTest, FatalExits)
{
    EXPECT_EXIT(fatal("bad config"), testing::ExitedWithCode(1),
                "bad config");
}

TEST(LogDeathTest, AssertFiresOnFalse)
{
    EXPECT_DEATH(DIRIGENT_ASSERT(1 == 2, "math broke: %d", 7),
                 "assertion failed");
}

TEST(LogTest, AssertPassesOnTrue)
{
    DIRIGENT_ASSERT(1 + 1 == 2, "unused");
    SUCCEED();
}

} // namespace
} // namespace dirigent
