/**
 * @file
 * Unit tests for logging levels and the panic/assert machinery.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/log.h"

namespace dirigent {
namespace {

class LogLevelGuard
{
  public:
    LogLevelGuard() : saved_(logLevel()) {}
    ~LogLevelGuard() { setLogLevel(saved_); }

  private:
    LogLevel saved_;
};

TEST(LogTest, LevelRoundTrips)
{
    LogLevelGuard guard;
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(LogLevel::Verbose);
    EXPECT_EQ(logLevel(), LogLevel::Verbose);
    setLogLevel(LogLevel::Normal);
    EXPECT_EQ(logLevel(), LogLevel::Normal);
}

TEST(LogTest, InformAndWarnDoNotTerminate)
{
    LogLevelGuard guard;
    setLogLevel(LogLevel::Quiet);
    inform("suppressed message");
    verbose("suppressed debug");
    warn("warning goes to stderr");
    SUCCEED();
}

TEST(LogDeathTest, PanicAborts)
{
    EXPECT_DEATH(DIRIGENT_PANIC("boom %d", 42), "boom 42");
}

TEST(LogDeathTest, FatalExits)
{
    EXPECT_EXIT(fatal("bad config"), testing::ExitedWithCode(1),
                "bad config");
}

TEST(LogDeathTest, AssertFiresOnFalse)
{
    EXPECT_DEATH(DIRIGENT_ASSERT(1 == 2, "math broke: %d", 7),
                 "assertion failed");
}

TEST(LogTest, AssertPassesOnTrue)
{
    DIRIGENT_ASSERT(1 + 1 == 2, "unused");
    SUCCEED();
}

TEST(LogTest, ThreadTagRoundTripsAndClears)
{
    EXPECT_EQ(logThreadTag(), "");
    setLogThreadTag("job-1");
    EXPECT_EQ(logThreadTag(), "job-1");
    setLogThreadTag("");
    EXPECT_EQ(logThreadTag(), "");
}

TEST(LogTest, TagScopeRestoresPreviousTag)
{
    setLogThreadTag("outer");
    {
        LogTagScope scope("inner");
        EXPECT_EQ(logThreadTag(), "inner");
        {
            LogTagScope nested("deepest");
            EXPECT_EQ(logThreadTag(), "deepest");
        }
        EXPECT_EQ(logThreadTag(), "inner");
    }
    EXPECT_EQ(logThreadTag(), "outer");
    setLogThreadTag("");
}

TEST(LogTest, TagIsPerThread)
{
    setLogThreadTag("main-tag");
    std::thread other([] {
        EXPECT_EQ(logThreadTag(), ""); // fresh thread: no tag
        setLogThreadTag("worker-tag");
        EXPECT_EQ(logThreadTag(), "worker-tag");
    });
    other.join();
    EXPECT_EQ(logThreadTag(), "main-tag");
    setLogThreadTag("");
}

TEST(LogTest, ConcurrentTaggedLinesNeverInterleave)
{
    // Hammer the serialized writer from several tagged threads; every
    // emitted line must be whole — "info: [job-N] tick" — with no
    // mid-line tearing. Also a data-race check under TSan.
    LogLevelGuard guard;
    setLogLevel(LogLevel::Normal);
    testing::internal::CaptureStdout();
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([t] {
            LogTagScope scope("job-" + std::to_string(t));
            for (int i = 0; i < 200; ++i)
                inform("tick");
        });
    }
    for (auto &t : threads)
        t.join();
    std::string out = testing::internal::GetCapturedStdout();

    size_t lines = 0;
    size_t pos = 0;
    while (pos < out.size()) {
        size_t eol = out.find('\n', pos);
        ASSERT_NE(eol, std::string::npos);
        std::string line = out.substr(pos, eol - pos);
        EXPECT_EQ(line.rfind("info: [job-", 0), 0u) << line;
        EXPECT_EQ(line.substr(line.size() - 5), " tick") << line;
        ++lines;
        pos = eol + 1;
    }
    EXPECT_EQ(lines, 4u * 200u);
}

} // namespace
} // namespace dirigent
