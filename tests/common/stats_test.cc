/**
 * @file
 * Unit tests for the statistics primitives: online stats, EMA, sliding
 * windows, correlation, percentiles, histograms.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/stats.h"

namespace dirigent {
namespace {

TEST(OnlineStatsTest, EmptyDefaults)
{
    OnlineStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(OnlineStatsTest, KnownValues)
{
    OnlineStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0); // classic population-σ example
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStatsTest, SingleValue)
{
    OnlineStats s;
    s.add(3.5);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStatsTest, ResetClears)
{
    OnlineStats s;
    s.add(1.0);
    s.add(2.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(EmaTest, FirstSampleInitializes)
{
    Ema e(0.2);
    EXPECT_FALSE(e.valid());
    e.add(10.0);
    EXPECT_TRUE(e.valid());
    EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(EmaTest, PaperWeightFormula)
{
    // The paper's smoothing: P = 0.2·new + 0.8·old.
    Ema e(0.2);
    e.add(10.0);
    e.add(20.0);
    EXPECT_DOUBLE_EQ(e.value(), 0.2 * 20.0 + 0.8 * 10.0);
}

TEST(EmaTest, ConvergesToConstant)
{
    Ema e(0.2);
    for (int i = 0; i < 200; ++i)
        e.add(7.0);
    EXPECT_NEAR(e.value(), 7.0, 1e-9);
}

TEST(EmaTest, ResetForgets)
{
    Ema e(0.5);
    e.add(1.0);
    e.reset();
    EXPECT_FALSE(e.valid());
    e.add(2.0);
    EXPECT_DOUBLE_EQ(e.value(), 2.0);
}

TEST(EmaDeathTest, RejectsBadWeight)
{
    EXPECT_DEATH(Ema(0.0), "weight");
    EXPECT_DEATH(Ema(1.5), "weight");
}

TEST(SlidingWindowTest, EvictsOldest)
{
    SlidingWindow w(3);
    w.add(1.0);
    w.add(2.0);
    w.add(3.0);
    EXPECT_TRUE(w.full());
    w.add(4.0);
    EXPECT_EQ(w.size(), 3u);
    EXPECT_DOUBLE_EQ(w.values().front(), 2.0);
    EXPECT_DOUBLE_EQ(w.values().back(), 4.0);
    EXPECT_DOUBLE_EQ(w.mean(), 3.0);
}

TEST(SlidingWindowTest, StddevOfWindow)
{
    SlidingWindow w(10);
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        w.add(x);
    EXPECT_DOUBLE_EQ(w.stddev(), 2.0);
}

TEST(SlidingWindowTest, EmptyWindow)
{
    SlidingWindow w(4);
    EXPECT_DOUBLE_EQ(w.mean(), 0.0);
    EXPECT_DOUBLE_EQ(w.stddev(), 0.0);
    EXPECT_FALSE(w.full());
}

TEST(PearsonTest, PerfectPositive)
{
    std::vector<double> x = {1, 2, 3, 4, 5};
    std::vector<double> y = {2, 4, 6, 8, 10};
    EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(PearsonTest, PerfectNegative)
{
    std::vector<double> x = {1, 2, 3, 4};
    std::vector<double> y = {8, 6, 4, 2};
    EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(PearsonTest, DegenerateSeriesGiveZero)
{
    std::vector<double> flat = {3, 3, 3, 3};
    std::vector<double> x = {1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(pearson(flat, x), 0.0);
    EXPECT_DOUBLE_EQ(pearson(x, flat), 0.0);
    EXPECT_DOUBLE_EQ(pearson(std::vector<double>{1.0},
                             std::vector<double>{2.0}),
                     0.0);
}

TEST(PearsonTest, WindowOverloadAlignsRecent)
{
    SlidingWindow a(5), b(5);
    for (double v : {1.0, 2.0, 3.0, 4.0, 5.0})
        a.add(v);
    for (double v : {10.0, 20.0, 30.0, 40.0, 50.0})
        b.add(v);
    EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
}

TEST(PercentileTest, MedianAndExtremes)
{
    std::vector<double> v = {5, 1, 3, 2, 4};
    EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
}

TEST(PercentileTest, Interpolates)
{
    std::vector<double> v = {0.0, 10.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
    EXPECT_DOUBLE_EQ(percentile(v, 0.95), 9.5);
}

TEST(PercentileTest, EmptyAndSingle)
{
    EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(percentile({7.0}, 0.9), 7.0);
}

TEST(MeansTest, Arithmetic)
{
    EXPECT_DOUBLE_EQ(arithmeticMean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(arithmeticMean({}), 0.0);
}

TEST(MeansTest, Harmonic)
{
    EXPECT_DOUBLE_EQ(harmonicMean({1.0, 1.0}), 1.0);
    EXPECT_NEAR(harmonicMean({1.0, 2.0, 4.0}), 3.0 / 1.75, 1e-12);
    EXPECT_DOUBLE_EQ(harmonicMean({}), 0.0);
}

TEST(MeansTest, HarmonicBelowArithmetic)
{
    std::vector<double> v = {0.5, 0.9, 1.3, 2.0};
    EXPECT_LT(harmonicMean(v), arithmeticMean(v));
}

TEST(HistogramTest, BinPlacement)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(5.5);
    h.add(9.99);
    EXPECT_DOUBLE_EQ(h.count(0), 1.0);
    EXPECT_DOUBLE_EQ(h.count(5), 1.0);
    EXPECT_DOUBLE_EQ(h.count(9), 1.0);
    EXPECT_DOUBLE_EQ(h.total(), 3.0);
}

TEST(HistogramTest, OutOfRangeClampsToEdges)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-5.0);
    h.add(99.0);
    EXPECT_DOUBLE_EQ(h.count(0), 1.0);
    EXPECT_DOUBLE_EQ(h.count(3), 1.0);
}

TEST(HistogramTest, DensityIntegratesToOne)
{
    Histogram h(0.0, 2.0, 8);
    for (int i = 0; i < 100; ++i)
        h.add(0.25 * (i % 8) + 0.1);
    double integral = 0.0;
    double width = 2.0 / 8.0;
    for (size_t i = 0; i < h.bins(); ++i)
        integral += h.density(i) * width;
    EXPECT_NEAR(integral, 1.0, 1e-12);
}

TEST(HistogramTest, FractionsSumToOne)
{
    Histogram h(0.0, 1.0, 5);
    h.add(0.1, 2.0);
    h.add(0.9, 3.0);
    double sum = 0.0;
    for (size_t i = 0; i < h.bins(); ++i)
        sum += h.fraction(i);
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(HistogramTest, BinCenters)
{
    Histogram h(0.0, 10.0, 10);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 0.5);
    EXPECT_DOUBLE_EQ(h.binCenter(9), 9.5);
}

TEST(HistogramTest, EmptyDensityIsZero)
{
    Histogram h(0.0, 1.0, 2);
    EXPECT_DOUBLE_EQ(h.density(0), 0.0);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.0);
}

} // namespace
} // namespace dirigent
