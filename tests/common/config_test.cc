/**
 * @file
 * Unit tests for INI-style configuration parsing and typed lookup.
 */

#include <gtest/gtest.h>

#include "common/config.h"

namespace dirigent {
namespace {

TEST(ConfigTest, ParsesKeysAndSections)
{
    Config cfg = Config::parse("a = 1\n"
                               "[machine]\n"
                               "cores = 6\n"
                               "freq = 2GHz\n"
                               "[harness]\n"
                               "executions = 40\n");
    EXPECT_TRUE(cfg.has("a"));
    EXPECT_TRUE(cfg.has("machine.cores"));
    EXPECT_TRUE(cfg.has("harness.executions"));
    EXPECT_EQ(cfg.size(), 4u);
}

TEST(ConfigTest, CommentsAndBlanksIgnored)
{
    Config cfg = Config::parse("# comment\n"
                               "\n"
                               "a = 1  # trailing comment\n"
                               "; another comment\n"
                               "b = 2\n");
    EXPECT_EQ(cfg.getInt("a", 0), 1);
    EXPECT_EQ(cfg.getInt("b", 0), 2);
    EXPECT_EQ(cfg.size(), 2u);
}

TEST(ConfigTest, WhitespaceTrimmed)
{
    Config cfg = Config::parse("  key   =   some value  \n");
    EXPECT_EQ(cfg.getString("key", ""), "some value");
}

TEST(ConfigTest, LaterKeysOverwrite)
{
    Config cfg = Config::parse("a = 1\na = 2\n");
    EXPECT_EQ(cfg.getInt("a", 0), 2);
    EXPECT_EQ(cfg.size(), 1u);
}

TEST(ConfigTest, MergeOverrides)
{
    Config base = Config::parse("a = 1\nb = 2\n");
    Config over = Config::parse("b = 3\nc = 4\n");
    base.merge(over);
    EXPECT_EQ(base.getInt("a", 0), 1);
    EXPECT_EQ(base.getInt("b", 0), 3);
    EXPECT_EQ(base.getInt("c", 0), 4);
}

TEST(ConfigTest, TypedAccessorsAndFallbacks)
{
    Config cfg = Config::parse("d = 2.5\ni = -7\nu = 42\nflag = true\n");
    EXPECT_DOUBLE_EQ(cfg.getDouble("d", 0.0), 2.5);
    EXPECT_EQ(cfg.getInt("i", 0), -7);
    EXPECT_EQ(cfg.getUint("u", 0), 42u);
    EXPECT_TRUE(cfg.getBool("flag", false));
    EXPECT_DOUBLE_EQ(cfg.getDouble("missing", 9.5), 9.5);
    EXPECT_EQ(cfg.getString("missing", "x"), "x");
}

TEST(ConfigTest, BoolSpellings)
{
    Config cfg = Config::parse(
        "a = yes\nb = off\nc = 1\nd = FALSE\ne = On\n");
    EXPECT_TRUE(cfg.getBool("a", false));
    EXPECT_FALSE(cfg.getBool("b", true));
    EXPECT_TRUE(cfg.getBool("c", false));
    EXPECT_FALSE(cfg.getBool("d", true));
    EXPECT_TRUE(cfg.getBool("e", false));
}

TEST(ConfigTest, UnitParsers)
{
    Config cfg = Config::parse("t1 = 5ms\nt2 = 80ns\nt3 = 1.5\n"
                               "f1 = 2GHz\nf2 = 1200MHz\n"
                               "b1 = 15MiB\nb2 = 64KiB\nb3 = 100\n");
    EXPECT_DOUBLE_EQ(cfg.getTime("t1", Time()).ms(), 5.0);
    EXPECT_DOUBLE_EQ(cfg.getTime("t2", Time()).ns(), 80.0);
    EXPECT_DOUBLE_EQ(cfg.getTime("t3", Time()).sec(), 1.5);
    EXPECT_NEAR(cfg.getFreq("f1", Freq()).ghz(), 2.0, 1e-12);
    EXPECT_NEAR(cfg.getFreq("f2", Freq()).ghz(), 1.2, 1e-12);
    EXPECT_DOUBLE_EQ(cfg.getBytes("b1", 0.0), 15.0 * 1024 * 1024);
    EXPECT_DOUBLE_EQ(cfg.getBytes("b2", 0.0), 64.0 * 1024);
    EXPECT_DOUBLE_EQ(cfg.getBytes("b3", 0.0), 100.0);
}

TEST(ConfigTest, KeysPreserveOrder)
{
    Config cfg = Config::parse("z = 1\na = 2\nm = 3\n");
    EXPECT_EQ(cfg.keys(),
              (std::vector<std::string>{"z", "a", "m"}));
}

TEST(ConfigDeathTest, MalformedInputIsFatal)
{
    EXPECT_EXIT(Config::parse("no equals sign\n"),
                testing::ExitedWithCode(1), "key = value");
    EXPECT_EXIT(Config::parse("[unterminated\n"),
                testing::ExitedWithCode(1), "section");
    EXPECT_EXIT(Config::parse("= value\n"), testing::ExitedWithCode(1),
                "empty key");
}

TEST(ConfigDeathTest, BadTypedValuesAreFatal)
{
    Config cfg = Config::parse("x = hello\n");
    EXPECT_EXIT(cfg.getDouble("x", 0.0), testing::ExitedWithCode(1),
                "not a number");
    EXPECT_EXIT(cfg.getBool("x", false), testing::ExitedWithCode(1),
                "not a boolean");
    EXPECT_EXIT(cfg.getTime("x", Time()), testing::ExitedWithCode(1),
                "not a duration");
}

TEST(ConfigDeathTest, MissingFileIsFatal)
{
    EXPECT_EXIT(Config::load("/nonexistent/path.ini"),
                testing::ExitedWithCode(1), "cannot open");
}

TEST(ParseHelpersTest, RejectGarbage)
{
    EXPECT_FALSE(parseTime("fast").has_value());
    EXPECT_FALSE(parseTime("5 parsecs").has_value());
    EXPECT_FALSE(parseFreq("2 GHzz").has_value());
    EXPECT_FALSE(parseBytes("12 MB ").has_value()); // only MiB etc.
}

} // namespace
} // namespace dirigent
