/**
 * @file
 * Unit tests for printf-style string formatting.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/strfmt.h"

namespace dirigent {
namespace {

TEST(StrfmtTest, PlainString)
{
    EXPECT_EQ(strfmt("hello"), "hello");
}

TEST(StrfmtTest, Integers)
{
    EXPECT_EQ(strfmt("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
    EXPECT_EQ(strfmt("%u", 42u), "42");
    EXPECT_EQ(strfmt("%zu", size_t(7)), "7");
}

TEST(StrfmtTest, Floats)
{
    EXPECT_EQ(strfmt("%.2f", 3.14159), "3.14");
    EXPECT_EQ(strfmt("%.3g", 1234.5), "1.23e+03");
}

TEST(StrfmtTest, Strings)
{
    EXPECT_EQ(strfmt("[%s]", "abc"), "[abc]");
}

TEST(StrfmtTest, LongOutputIsNotTruncated)
{
    std::string big(5000, 'x');
    std::string out = strfmt("%s", big.c_str());
    EXPECT_EQ(out.size(), big.size());
    EXPECT_EQ(out, big);
}

TEST(StrfmtTest, EmptyResult)
{
    EXPECT_EQ(strfmt("%s", ""), "");
}

TEST(StrfmtTest, PercentEscape)
{
    EXPECT_EQ(strfmt("100%%"), "100%");
}

} // namespace
} // namespace dirigent
