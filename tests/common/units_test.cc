/**
 * @file
 * Unit tests for the strong unit types (Time, Freq, Bytes).
 */

#include <gtest/gtest.h>

#include "common/units.h"

namespace dirigent {
namespace {

TEST(TimeTest, DefaultIsZero)
{
    Time t;
    EXPECT_DOUBLE_EQ(t.sec(), 0.0);
}

TEST(TimeTest, NamedConstructorsAgree)
{
    EXPECT_DOUBLE_EQ(Time::sec(1.5).sec(), 1.5);
    EXPECT_DOUBLE_EQ(Time::ms(1500.0).sec(), 1.5);
    EXPECT_DOUBLE_EQ(Time::us(1.5e6).sec(), 1.5);
    EXPECT_DOUBLE_EQ(Time::ns(1.5e9).sec(), 1.5);
}

TEST(TimeTest, AccessorsConvert)
{
    Time t = Time::ms(5.0);
    EXPECT_DOUBLE_EQ(t.ms(), 5.0);
    EXPECT_DOUBLE_EQ(t.us(), 5000.0);
    EXPECT_DOUBLE_EQ(t.ns(), 5e6);
}

TEST(TimeTest, Arithmetic)
{
    Time a = Time::ms(3.0);
    Time b = Time::ms(2.0);
    EXPECT_DOUBLE_EQ((a + b).ms(), 5.0);
    EXPECT_DOUBLE_EQ((a - b).ms(), 1.0);
    EXPECT_DOUBLE_EQ((a * 2.0).ms(), 6.0);
    EXPECT_DOUBLE_EQ((a / 2.0).ms(), 1.5);
    EXPECT_DOUBLE_EQ(a / b, 1.5);
    EXPECT_DOUBLE_EQ((2.0 * a).ms(), 6.0);
}

TEST(TimeTest, CompoundAssignment)
{
    Time t = Time::ms(1.0);
    t += Time::ms(2.0);
    EXPECT_DOUBLE_EQ(t.ms(), 3.0);
    t -= Time::ms(0.5);
    EXPECT_DOUBLE_EQ(t.ms(), 2.5);
}

TEST(TimeTest, Comparison)
{
    EXPECT_LT(Time::ms(1.0), Time::ms(2.0));
    EXPECT_GT(Time::sec(1.0), Time::ms(999.0));
    EXPECT_EQ(Time::ms(1000.0), Time::sec(1.0));
}

TEST(TimeTest, NeverIsLargest)
{
    EXPECT_TRUE(Time::never().isNever());
    EXPECT_FALSE(Time::sec(1e20).isNever());
    EXPECT_LT(Time::sec(1e20), Time::never());
}

TEST(FreqTest, NamedConstructorsAgree)
{
    EXPECT_DOUBLE_EQ(Freq::ghz(2.0).hz(), 2e9);
    EXPECT_DOUBLE_EQ(Freq::mhz(500.0).hz(), 5e8);
    EXPECT_DOUBLE_EQ(Freq::hz(42.0).hz(), 42.0);
}

TEST(FreqTest, Accessors)
{
    Freq f = Freq::ghz(1.2);
    EXPECT_DOUBLE_EQ(f.ghz(), 1.2);
    EXPECT_NEAR(f.mhz(), 1200.0, 1e-9);
}

TEST(FreqTest, CycleConversionRoundTrips)
{
    Freq f = Freq::ghz(2.0);
    double cycles = 1e9;
    Time t = f.cyclesToTime(cycles);
    EXPECT_DOUBLE_EQ(t.sec(), 0.5);
    EXPECT_DOUBLE_EQ(f.timeToCycles(t), cycles);
}

TEST(FreqTest, Comparison)
{
    EXPECT_LT(Freq::ghz(1.2), Freq::ghz(2.0));
    EXPECT_EQ(Freq::mhz(2000.0), Freq::ghz(2.0));
}

TEST(BytesTest, Literals)
{
    EXPECT_DOUBLE_EQ(1_KiB, 1024.0);
    EXPECT_DOUBLE_EQ(1_MiB, 1024.0 * 1024.0);
    EXPECT_DOUBLE_EQ(1_GiB, 1024.0 * 1024.0 * 1024.0);
    EXPECT_DOUBLE_EQ(1.5_MiB, 1.5 * 1024.0 * 1024.0);
}

} // namespace
} // namespace dirigent
