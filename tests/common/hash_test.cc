/**
 * @file
 * Tests of the FNV-1a hashing utility.
 */

#include <gtest/gtest.h>

#include "common/hash.h"

namespace dirigent {
namespace {

TEST(HashTest, MatchesKnownFnv1aVectors)
{
    // Published FNV-1a 64-bit test vectors, fed the standard offset
    // basis explicitly: the repo's default basis is the historical
    // seed-derivation constant (see hash.h), not the standard one.
    constexpr uint64_t kStandardBasis = 0xcbf29ce484222325ULL;
    EXPECT_EQ(fnv1a64("", kStandardBasis), kStandardBasis);
    EXPECT_EQ(fnv1a64("a", kStandardBasis), 0xaf63dc4c8601ec8cULL);
    EXPECT_EQ(fnv1a64("foobar", kStandardBasis), 0x85944171f73967e8ULL);
}

TEST(HashTest, EmptyStringHashesToDefaultBasis)
{
    EXPECT_EQ(fnv1a64(""), kFnv1aBasis);
}

TEST(HashTest, ChainingHashesConcatenation)
{
    uint64_t whole = fnv1a64("ferret rs");
    uint64_t chained = fnv1a64(" rs", fnv1a64("ferret"));
    EXPECT_EQ(chained, whole);
}

TEST(HashTest, DistinctInputsDistinctHashes)
{
    EXPECT_NE(fnv1a64("ferret"), fnv1a64("ferrets"));
    EXPECT_NE(fnv1a64("ab"), fnv1a64("ba"));
    EXPECT_NE(fnv1a64(std::string(1, '\0')), fnv1a64(""));
}

} // namespace
} // namespace dirigent
