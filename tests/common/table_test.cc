/**
 * @file
 * Unit tests for the text-table and CSV report formatters.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/table.h"

namespace dirigent {
namespace {

TEST(TextTableTest, AlignsColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer-name", "2"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("---"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTableDeathTest, RowArityChecked)
{
    TextTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "cells");
}

TEST(TextTableTest, NumFormatsPrecision)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(1.0, 0), "1");
}

TEST(TextTableTest, PctFormats)
{
    EXPECT_EQ(TextTable::pct(0.153, 1), "15.3%");
    EXPECT_EQ(TextTable::pct(1.0, 0), "100%");
}

TEST(CsvWriterTest, PlainRow)
{
    std::ostringstream os;
    CsvWriter csv(os);
    csv.row({"a", "b", "c"});
    EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(CsvWriterTest, QuotesSpecialCells)
{
    std::ostringstream os;
    CsvWriter csv(os);
    csv.row({"a,b", "say \"hi\"", "plain"});
    EXPECT_EQ(os.str(), "\"a,b\",\"say \"\"hi\"\"\",plain\n");
}

TEST(CsvWriterTest, NumericRow)
{
    std::ostringstream os;
    CsvWriter csv(os);
    csv.numericRow({1.0, 2.5}, 3);
    EXPECT_EQ(os.str(), "1,2.5\n");
}

TEST(BannerTest, ContainsTitle)
{
    std::ostringstream os;
    printBanner(os, "hello");
    EXPECT_NE(os.str().find("=== hello ="), std::string::npos);
}

} // namespace
} // namespace dirigent
