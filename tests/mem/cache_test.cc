/**
 * @file
 * Tests of the shared LLC model: way masks, occupancy flow, eviction
 * proportionality, working-set caps, and — critically for Dirigent —
 * cache inertia under repartitioning.
 */

#include <gtest/gtest.h>

#include "mem/cache.h"

namespace dirigent::mem {
namespace {

workload::Phase
phaseWithWs(Bytes ws, double maxHit = 0.9)
{
    workload::Phase p;
    p.name = "t";
    p.instructions = 1e9;
    p.llcApki = 10.0;
    p.workingSet = ws;
    p.locality = 3.0;
    p.maxHitRatio = maxHit;
    return p;
}

CacheConfig
smallCache()
{
    CacheConfig cfg;
    cfg.numWays = 4;
    cfg.bytesPerWay = 1024.0; // 4 KiB cache for fast unit tests
    cfg.lineSize = 64.0;
    return cfg;
}

TEST(WayMaskTest, RangeAndCount)
{
    EXPECT_EQ(wayRange(0, 4), 0xFu);
    EXPECT_EQ(wayRange(2, 5), 0x1Cu);
    EXPECT_EQ(wayCount(0xFu), 4u);
    EXPECT_EQ(wayCount(0x1u), 1u);
}

TEST(WayMaskDeathTest, BadRange)
{
    EXPECT_DEATH(wayRange(3, 3), "bad way range");
    EXPECT_DEATH(wayRange(0, 33), "bad way range");
}

TEST(SharedCacheTest, StartsEmptyAndShared)
{
    SharedCache cache(smallCache(), 2);
    EXPECT_DOUBLE_EQ(cache.occupancy(0), 0.0);
    EXPECT_EQ(cache.wayMask(0), wayRange(0, 4));
    EXPECT_EQ(cache.clients(), 2u);
}

TEST(SharedCacheTest, MissesAllWhenEmpty)
{
    SharedCache cache(smallCache(), 1);
    auto phase = phaseWithWs(2048.0);
    double misses = cache.access(0, phase, 100.0);
    EXPECT_DOUBLE_EQ(misses, 100.0); // hit ratio 0 at zero occupancy
}

TEST(SharedCacheTest, FillGrowsOccupancy)
{
    SharedCache cache(smallCache(), 1);
    auto phase = phaseWithWs(2048.0);
    cache.access(0, phase, 10.0); // 10 misses × 64 B queued
    cache.commit({2048.0});
    EXPECT_DOUBLE_EQ(cache.occupancy(0), 640.0);
}

TEST(SharedCacheTest, HitRatioRisesWithResidency)
{
    SharedCache cache(smallCache(), 1);
    auto phase = phaseWithWs(2048.0);
    double prevHit = -1.0;
    for (int round = 0; round < 10; ++round) {
        double hit = cache.hitRatio(0, phase);
        EXPECT_GE(hit, prevHit);
        prevHit = hit;
        cache.access(0, phase, 20.0);
        cache.commit({2048.0});
    }
    EXPECT_GT(prevHit, 0.3);
}

TEST(SharedCacheTest, WorkingSetCapsOccupancy)
{
    SharedCache cache(smallCache(), 1);
    auto phase = phaseWithWs(512.0);
    for (int round = 0; round < 50; ++round) {
        cache.access(0, phase, 100.0);
        cache.commit({512.0});
    }
    EXPECT_LE(cache.occupancy(0), 512.0 + 1e-9);
}

TEST(SharedCacheTest, WayCapacityEnforced)
{
    SharedCache cache(smallCache(), 2);
    auto phase = phaseWithWs(100.0_KiB);
    for (int round = 0; round < 100; ++round) {
        cache.access(0, phase, 200.0);
        cache.access(1, phase, 200.0);
        cache.commit({100.0 * 1024, 100.0 * 1024});
    }
    for (unsigned w = 0; w < 4; ++w)
        EXPECT_LE(cache.wayOccupancy(w), 1024.0 + 1e-9);
}

TEST(SharedCacheTest, HeavierFillerWinsShare)
{
    SharedCache cache(smallCache(), 2);
    auto phase = phaseWithWs(100.0_KiB, 0.5);
    for (int round = 0; round < 200; ++round) {
        cache.access(0, phase, 300.0); // heavy
        cache.access(1, phase, 100.0); // light
        cache.commit({100.0 * 1024, 100.0 * 1024});
    }
    EXPECT_GT(cache.occupancy(0), cache.occupancy(1) * 1.5);
}

TEST(SharedCacheTest, PartitionIsolatesFill)
{
    SharedCache cache(smallCache(), 2);
    cache.setWayMask(0, wayRange(0, 2));
    cache.setWayMask(1, wayRange(2, 4));
    auto phase = phaseWithWs(100.0_KiB);
    for (int round = 0; round < 50; ++round) {
        cache.access(0, phase, 100.0);
        cache.access(1, phase, 100.0);
        cache.commit({100.0 * 1024, 100.0 * 1024});
    }
    // Client 0 only resides in ways 0–1, client 1 only in ways 2–3.
    EXPECT_GT(cache.occupancyInWay(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(cache.occupancyInWay(0, 2), 0.0);
    EXPECT_DOUBLE_EQ(cache.occupancyInWay(1, 1), 0.0);
    EXPECT_GT(cache.occupancyInWay(1, 3), 0.0);
}

TEST(SharedCacheTest, RepartitionShowsInertia)
{
    // The defining behaviour for Dirigent's coarse controller: after a
    // repartition, the old owner's data in lost ways decays gradually
    // under the new owner's fill, not instantly.
    SharedCache cache(smallCache(), 2);
    auto phase = phaseWithWs(100.0_KiB);
    // Client 0 fills the whole cache first.
    for (int round = 0; round < 100; ++round) {
        cache.access(0, phase, 500.0);
        cache.commit({100.0 * 1024, 100.0 * 1024});
    }
    double before = cache.occupancy(0);
    EXPECT_GT(before, 3000.0);

    // Repartition: client 0 keeps ways 0–1; client 1 gets ways 2–3.
    cache.setWayMask(0, wayRange(0, 2));
    cache.setWayMask(1, wayRange(2, 4));

    // Immediately after the mask change nothing has moved.
    EXPECT_DOUBLE_EQ(cache.occupancy(0), before);

    // Client 1 fills; client 0's residency in ways 2–3 erodes over
    // many rounds rather than at once.
    double lost = 0.0;
    int roundsToHalf = -1;
    double initialInLostWays =
        cache.occupancyInWay(0, 2) + cache.occupancyInWay(0, 3);
    for (int round = 0; round < 300; ++round) {
        cache.access(1, phase, 3.0);
        cache.commit({100.0 * 1024, 100.0 * 1024});
        lost = initialInLostWays - cache.occupancyInWay(0, 2) -
               cache.occupancyInWay(0, 3);
        if (roundsToHalf < 0 && lost > initialInLostWays / 2)
            roundsToHalf = round;
    }
    // It took multiple rounds (inertia), but erosion did happen.
    EXPECT_GT(roundsToHalf, 1);
    EXPECT_GT(lost, initialInLostWays * 0.8);
}

TEST(SharedCacheTest, FlushDropsResidency)
{
    SharedCache cache(smallCache(), 2);
    auto phase = phaseWithWs(2048.0);
    cache.access(0, phase, 100.0);
    cache.commit({2048.0, 0.0});
    EXPECT_GT(cache.occupancy(0), 0.0);
    cache.flush(0);
    EXPECT_DOUBLE_EQ(cache.occupancy(0), 0.0);
}

TEST(SharedCacheTest, FlushDropsPendingFill)
{
    SharedCache cache(smallCache(), 1);
    auto phase = phaseWithWs(2048.0);
    cache.access(0, phase, 100.0);
    cache.flush(0);
    cache.commit({2048.0});
    EXPECT_DOUBLE_EQ(cache.occupancy(0), 0.0);
}

TEST(SharedCacheDeathTest, BadSlotPanics)
{
    SharedCache cache(smallCache(), 1);
    EXPECT_DEATH(cache.occupancy(5), "bad client slot");
    EXPECT_DEATH(cache.setWayMask(5, 0x1), "bad client slot");
}

TEST(SharedCacheDeathTest, EmptyMaskPanics)
{
    SharedCache cache(smallCache(), 1);
    EXPECT_DEATH(cache.setWayMask(0, 0), "at least one way");
}

TEST(SharedCacheDeathTest, MaskBeyondWaysPanics)
{
    SharedCache cache(smallCache(), 1);
    EXPECT_DEATH(cache.setWayMask(0, 0x100), "exceeds");
}

TEST(SharedCacheDeathTest, CommitVectorSizeChecked)
{
    SharedCache cache(smallCache(), 2);
    EXPECT_DEATH(cache.commit({1.0}), "cap vector");
}

TEST(CacheConfigTest, CapacityProduct)
{
    CacheConfig cfg;
    cfg.numWays = 20;
    cfg.bytesPerWay = 0.75_MiB;
    EXPECT_DOUBLE_EQ(cfg.capacity(), 15.0_MiB);
}

} // namespace
} // namespace dirigent::mem
