/**
 * @file
 * Tests of the DRAM contention model: queueing latency growth,
 * saturation capping, and smoothing.
 */

#include <gtest/gtest.h>

#include "mem/dram.h"

namespace dirigent::mem {
namespace {

DramConfig
testConfig()
{
    DramConfig cfg;
    cfg.peakBandwidth = 10e9;
    cfg.baseLatency = Time::ns(80.0);
    cfg.queueFactor = 1.0;
    cfg.maxUtilization = 0.95;
    cfg.smoothing = 1.0; // no smoothing: deterministic single-step tests
    return cfg;
}

TEST(DramModelTest, UnloadedLatencyIsBase)
{
    DramModel dram(testConfig());
    EXPECT_DOUBLE_EQ(dram.latency().ns(), 80.0);
    dram.update(Time::us(100.0));
    EXPECT_DOUBLE_EQ(dram.latency().ns(), 80.0);
    EXPECT_DOUBLE_EQ(dram.utilization(), 0.0);
}

TEST(DramModelTest, LatencyGrowsWithDemand)
{
    DramModel dram(testConfig());
    // 50% utilization: 10 GB/s × 100 µs × 0.5 = 500 KB.
    dram.recordDemand(500e3);
    dram.update(Time::us(100.0));
    EXPECT_NEAR(dram.utilization(), 0.5, 1e-9);
    // latency = 80 × (1 + 1.0·0.5/0.5) = 160 ns.
    EXPECT_NEAR(dram.latency().ns(), 160.0, 1e-9);
}

TEST(DramModelTest, UtilizationCapped)
{
    DramModel dram(testConfig());
    dram.recordDemand(100e6); // far beyond peak×dt
    dram.update(Time::us(100.0));
    EXPECT_DOUBLE_EQ(dram.utilization(), 0.95);
    // Raw queueing would give 80 × (1 + 0.95/0.05) = 1600 ns, but the
    // latency factor is capped at 8× (finite buffering): 640 ns.
    EXPECT_NEAR(dram.latency().ns(), 640.0, 1e-6);
}

TEST(DramModelTest, LatencyFactorCapConfigurable)
{
    DramConfig cfg = testConfig();
    cfg.maxLatencyFactor = 3.0;
    DramModel dram(cfg);
    dram.recordDemand(100e6);
    dram.update(Time::us(100.0));
    EXPECT_NEAR(dram.latency().ns(), 240.0, 1e-6);
}

TEST(DramModelTest, DemandResetsEachQuantum)
{
    DramModel dram(testConfig());
    dram.recordDemand(500e3);
    dram.update(Time::us(100.0));
    dram.update(Time::us(100.0)); // no demand this quantum
    EXPECT_DOUBLE_EQ(dram.utilization(), 0.0);
    EXPECT_DOUBLE_EQ(dram.latency().ns(), 80.0);
}

TEST(DramModelTest, SmoothingDampsSteps)
{
    DramConfig cfg = testConfig();
    cfg.smoothing = 0.5;
    DramModel dram(cfg);
    dram.recordDemand(500e3); // instantaneous ρ = 0.5
    dram.update(Time::us(100.0));
    EXPECT_NEAR(dram.utilization(), 0.25, 1e-9); // half-step
    dram.recordDemand(500e3);
    dram.update(Time::us(100.0));
    EXPECT_NEAR(dram.utilization(), 0.375, 1e-9);
}

TEST(DramModelTest, TotalBytesAccumulates)
{
    DramModel dram(testConfig());
    dram.recordDemand(100.0);
    dram.update(Time::us(100.0));
    dram.recordDemand(200.0);
    dram.update(Time::us(100.0));
    EXPECT_DOUBLE_EQ(dram.totalBytes(), 300.0);
}

TEST(DramModelTest, LatencyMonotonicInUtilization)
{
    DramModel dram(testConfig());
    double prev = 0.0;
    for (double frac = 0.1; frac <= 0.9; frac += 0.1) {
        DramModel fresh(testConfig());
        fresh.recordDemand(1e6 * frac);
        fresh.update(Time::us(100.0));
        EXPECT_GT(fresh.latency().ns(), prev);
        prev = fresh.latency().ns();
    }
}

TEST(DramModelDeathTest, RejectsBadConfig)
{
    DramConfig cfg = testConfig();
    cfg.peakBandwidth = 0.0;
    EXPECT_DEATH(DramModel{cfg}, "bandwidth");

    cfg = testConfig();
    cfg.maxUtilization = 1.0;
    EXPECT_DEATH(DramModel{cfg}, "utilization");

    cfg = testConfig();
    cfg.smoothing = 0.0;
    EXPECT_DEATH(DramModel{cfg}, "smoothing");
}

TEST(DramModelDeathTest, RejectsNegativeDemand)
{
    DramModel dram(testConfig());
    EXPECT_DEATH(dram.recordDemand(-1.0), "negative");
}

} // namespace
} // namespace dirigent::mem
