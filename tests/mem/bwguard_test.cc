/**
 * @file
 * Unit tests for the MemGuard-style per-core bandwidth regulator.
 */

#include <gtest/gtest.h>

#include "mem/bwguard.h"

namespace dirigent::mem {
namespace {

TEST(BwGuardTest, UnregulatedByDefault)
{
    BwGuard guard(4);
    for (unsigned c = 0; c < 4; ++c) {
        EXPECT_DOUBLE_EQ(guard.budget(c), 0.0);
        EXPECT_TRUE(guard.allow(c));
    }
    guard.charge(0, 1e12); // unlimited: no exhaustion
    EXPECT_TRUE(guard.allow(0));
    EXPECT_EQ(guard.exhaustions(0), 0u);
}

TEST(BwGuardTest, BudgetExhaustsWithinWindow)
{
    BwGuard guard(2, Time::ms(1.0));
    guard.setBudget(0, 1e9); // 1 GB/s → 1 MB per 1 ms window
    guard.charge(0, 0.6e6);
    EXPECT_TRUE(guard.allow(0));
    guard.charge(0, 0.5e6); // total 1.1 MB > 1 MB
    EXPECT_FALSE(guard.allow(0));
    EXPECT_EQ(guard.exhaustions(0), 1u);
    // Core 1 unaffected.
    EXPECT_TRUE(guard.allow(1));
}

TEST(BwGuardTest, WindowRollRefills)
{
    BwGuard guard(1, Time::ms(1.0));
    guard.setBudget(0, 1e9);
    guard.charge(0, 2e6);
    EXPECT_FALSE(guard.allow(0));
    guard.tick(Time::ms(0.5)); // mid-window: still exhausted
    EXPECT_FALSE(guard.allow(0));
    guard.tick(Time::ms(1.0)); // boundary: refilled
    EXPECT_TRUE(guard.allow(0));
}

TEST(BwGuardTest, TickRollsMultipleWindows)
{
    BwGuard guard(1, Time::ms(1.0));
    guard.setBudget(0, 1e9);
    guard.charge(0, 2e6);
    guard.tick(Time::ms(5.5));
    EXPECT_TRUE(guard.allow(0));
    // Next window starts at 5 ms; charging exhausts again.
    guard.charge(0, 2e6);
    EXPECT_FALSE(guard.allow(0));
    guard.tick(Time::ms(6.0));
    EXPECT_TRUE(guard.allow(0));
}

TEST(BwGuardTest, ClearBudgetsUnregulates)
{
    BwGuard guard(2, Time::ms(1.0));
    guard.setBudget(0, 1e9);
    guard.charge(0, 2e6);
    EXPECT_FALSE(guard.allow(0));
    guard.clearBudgets();
    EXPECT_TRUE(guard.allow(0));
    EXPECT_DOUBLE_EQ(guard.budget(0), 0.0);
}

TEST(BwGuardTest, DisablingSingleBudgetReleases)
{
    BwGuard guard(1, Time::ms(1.0));
    guard.setBudget(0, 1e9);
    guard.charge(0, 2e6);
    EXPECT_FALSE(guard.allow(0));
    guard.setBudget(0, 0.0);
    EXPECT_TRUE(guard.allow(0));
}

TEST(BwGuardTest, BudgetChangeStartsFreshWindow)
{
    BwGuard guard(1, Time::ms(1.0));
    guard.setBudget(0, 1e9); // 1 MB window budget
    guard.charge(0, 0.9e6);
    // Shrinking the budget must not count old-budget bytes against the
    // new, smaller window (0.9 MB used would exceed 0.5 MB).
    guard.setBudget(0, 0.5e9);
    EXPECT_DOUBLE_EQ(guard.usedInWindow(0), 0.0);
    EXPECT_TRUE(guard.allow(0));
    guard.charge(0, 0.6e6);
    EXPECT_FALSE(guard.allow(0));
    // Re-setting the same budget is a no-op and keeps the accounting.
    guard.setBudget(0, 0.5e9);
    EXPECT_DOUBLE_EQ(guard.usedInWindow(0), 0.6e6);
    EXPECT_FALSE(guard.allow(0));
}

TEST(BwGuardTest, ExhaustionCountAccumulates)
{
    BwGuard guard(1, Time::ms(1.0));
    guard.setBudget(0, 1e9);
    for (int w = 1; w <= 3; ++w) {
        guard.charge(0, 2e6);
        EXPECT_FALSE(guard.allow(0));
        guard.tick(Time::ms(double(w)));
    }
    EXPECT_EQ(guard.exhaustions(0), 3u);
}

TEST(BwGuardDeathTest, BoundsChecked)
{
    BwGuard guard(2);
    EXPECT_DEATH(guard.allow(5), "bad core");
    EXPECT_DEATH(guard.setBudget(5, 1.0), "bad core");
    EXPECT_DEATH(guard.charge(0, -1.0), "negative");
    EXPECT_DEATH(guard.setBudget(0, -1.0), "non-negative");
}

} // namespace
} // namespace dirigent::mem
