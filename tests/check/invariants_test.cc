/**
 * @file
 * Tests of the runtime invariant checker: clean runs stay violation
 * free, planted defects are detected with the right rule names, custom
 * checks fire, and abort mode panics.
 */

#include <gtest/gtest.h>

#include <optional>

#include "check/invariants.h"
#include "machine/cpufreq.h"
#include "machine/machine.h"
#include "sim/engine.h"
#include "workload/benchmarks.h"

namespace dirigent::check {
namespace {

CheckerConfig
collectMode()
{
    CheckerConfig cfg;
    cfg.abortOnViolation = false;
    return cfg;
}

/** A machine with one FG and one BG process, ready to run. */
struct Rig
{
    machine::Machine machine;
    sim::Engine engine;

    explicit Rig(uint64_t seed = 7)
        : machine([seed] {
              machine::MachineConfig cfg;
              cfg.numCores = 4;
              cfg.seed = seed;
              return cfg;
          }()),
          engine(machine, machine.config().maxQuantum)
    {
        const auto &lib = workload::BenchmarkLibrary::instance();
        machine::ProcessSpec fg;
        fg.name = "fg";
        fg.program = &lib.get("ferret").program;
        fg.core = 0;
        fg.foreground = true;
        machine.spawnProcess(fg);
        machine::ProcessSpec bg;
        bg.name = "bg";
        bg.program = &lib.get("rs").program;
        bg.core = 1;
        machine.spawnProcess(bg);
    }
};

TEST(InvariantCheckerTest, CleanRunHasNoViolations)
{
    Rig rig;
    InvariantChecker checker(rig.machine, &rig.engine, collectMode());
    rig.engine.addObserver(&checker);
    rig.engine.runFor(Time::ms(50.0));
    EXPECT_GT(checker.quantaChecked(), 100u);
    EXPECT_TRUE(checker.violations().empty())
        << checker.violations().front().rule << ": "
        << checker.violations().front().detail;
}

TEST(InvariantCheckerTest, CleanRunWithGovernorAndBwGuard)
{
    Rig rig;
    machine::CpuFreqGovernor governor(rig.machine, rig.engine);
    governor.setGrade(1, 0); // throttle the BG core to the minimum
    rig.machine.bwGuard().setBudget(1, 0.5e9);
    InvariantChecker checker(rig.machine, &rig.engine, collectMode());
    checker.attachGovernor(&governor);
    rig.engine.addObserver(&checker);
    rig.engine.runFor(Time::ms(50.0));
    EXPECT_TRUE(checker.violations().empty())
        << checker.violations().front().rule << ": "
        << checker.violations().front().detail;
}

TEST(InvariantCheckerTest, PausedProcessMakesNoProgress)
{
    Rig rig;
    InvariantChecker checker(rig.machine, &rig.engine, collectMode());
    rig.engine.addObserver(&checker);
    rig.engine.runFor(Time::ms(5.0));
    rig.machine.os().pause(1);
    double instrAtPause = rig.machine.readCounters(1).instructions;
    rig.engine.runFor(Time::ms(20.0));
    EXPECT_TRUE(checker.violations().empty());
    EXPECT_DOUBLE_EQ(rig.machine.readCounters(1).instructions,
                     instrAtPause);
    rig.machine.os().resume(1);
    rig.engine.runFor(Time::ms(5.0));
    EXPECT_TRUE(checker.violations().empty());
    EXPECT_GT(rig.machine.readCounters(1).instructions, instrAtPause);
}

TEST(InvariantCheckerTest, DetectsCounterDecrease)
{
    Rig rig;
    InvariantChecker checker(rig.machine, &rig.engine, collectMode());
    rig.engine.addObserver(&checker);
    rig.engine.runFor(Time::ms(5.0));
    ASSERT_TRUE(checker.violations().empty());
    // Plant the defect: zero a core's cumulative counters mid-quantum.
    bool reset = false;
    rig.engine.after(Time::us(50.0), [&] {
        rig.machine.core(0).counters().reset();
        reset = true;
    });
    rig.engine.runFor(Time::ms(1.0));
    ASSERT_TRUE(reset);
    ASSERT_FALSE(checker.violations().empty());
    EXPECT_EQ(checker.violations().front().rule, "counters-monotonic");
}

TEST(InvariantCheckerTest, DetectsOutOfRangeFrequency)
{
    Rig rig;
    InvariantChecker checker(rig.machine, &rig.engine, collectMode());
    rig.engine.addObserver(&checker);
    rig.machine.core(0).setFrequency(Freq::ghz(3.0)); // above max
    rig.engine.runFor(Time::ms(1.0));
    ASSERT_FALSE(checker.violations().empty());
    EXPECT_EQ(checker.violations().front().rule, "dvfs-legal");
}

TEST(InvariantCheckerTest, DetectsOffGradeFrequencyWithGovernor)
{
    Rig rig;
    machine::CpuFreqGovernor governor(rig.machine, rig.engine);
    InvariantChecker checker(rig.machine, &rig.engine, collectMode());
    checker.attachGovernor(&governor);
    rig.engine.addObserver(&checker);
    // 1.93 GHz is inside [1.2, 2.0] but is not one of the 9 grades.
    rig.machine.core(0).setFrequency(Freq::ghz(1.93));
    rig.engine.runFor(Time::ms(1.0));
    ASSERT_FALSE(checker.violations().empty());
    EXPECT_EQ(checker.violations().front().rule, "dvfs-legal");
}

TEST(InvariantCheckerTest, CustomCheckFires)
{
    Rig rig;
    CheckerConfig cfg = collectMode();
    cfg.maxViolations = 3;
    InvariantChecker checker(rig.machine, &rig.engine, cfg);
    checker.addCheck("always-broken",
                     []() -> std::optional<std::string> {
                         return "synthetic failure";
                     });
    rig.engine.addObserver(&checker);
    rig.engine.runFor(Time::ms(5.0));
    // Collected once per quantum, capped at maxViolations.
    ASSERT_EQ(checker.violations().size(), 3u);
    EXPECT_EQ(checker.violations().front().rule, "always-broken");
    EXPECT_EQ(checker.violations().front().detail, "synthetic failure");
}

TEST(InvariantCheckerTest, HealthyCustomCheckStaysQuiet)
{
    Rig rig;
    InvariantChecker checker(rig.machine, &rig.engine, collectMode());
    checker.addCheck("always-fine",
                     []() -> std::optional<std::string> {
                         return std::nullopt;
                     });
    rig.engine.addObserver(&checker);
    rig.engine.runFor(Time::ms(5.0));
    EXPECT_TRUE(checker.violations().empty());
}

TEST(InvariantCheckerTest, RemovedObserverStopsChecking)
{
    Rig rig;
    InvariantChecker checker(rig.machine, &rig.engine, collectMode());
    rig.engine.addObserver(&checker);
    rig.engine.runFor(Time::ms(1.0));
    uint64_t checked = checker.quantaChecked();
    EXPECT_GT(checked, 0u);
    rig.engine.removeObserver(&checker);
    rig.engine.runFor(Time::ms(1.0));
    EXPECT_EQ(checker.quantaChecked(), checked);
}

TEST(InvariantCheckerDeathTest, AbortModePanicsOnViolation)
{
    Rig rig;
    CheckerConfig cfg; // abortOnViolation = true
    InvariantChecker checker(rig.machine, &rig.engine, cfg);
    checker.addCheck("synthetic",
                     []() -> std::optional<std::string> {
                         return "planted";
                     });
    rig.engine.addObserver(&checker);
    EXPECT_DEATH(rig.engine.runFor(Time::ms(1.0)),
                 "invariant 'synthetic' violated");
}

} // namespace
} // namespace dirigent::check
