/**
 * @file
 * Tests of the invariant-checking enable switch: explicit override >
 * DIRIGENT_CHECK environment variable > compiled default.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "check/check.h"

namespace dirigent::check {
namespace {

class CheckFlagTest : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        clearOverride();
        unsetenv("DIRIGENT_CHECK");
    }

    void
    TearDown() override
    {
        clearOverride();
        unsetenv("DIRIGENT_CHECK");
    }
};

TEST_F(CheckFlagTest, DefaultsToCompiledSetting)
{
    EXPECT_EQ(enabled(), compiledDefault());
}

TEST_F(CheckFlagTest, EnvironmentOverridesDefault)
{
    setenv("DIRIGENT_CHECK", "1", 1);
    EXPECT_TRUE(enabled());
    setenv("DIRIGENT_CHECK", "0", 1);
    EXPECT_FALSE(enabled());
    setenv("DIRIGENT_CHECK", "on", 1);
    EXPECT_TRUE(enabled());
    setenv("DIRIGENT_CHECK", "off", 1);
    EXPECT_FALSE(enabled());
    setenv("DIRIGENT_CHECK", "true", 1);
    EXPECT_TRUE(enabled());
    setenv("DIRIGENT_CHECK", "no", 1);
    EXPECT_FALSE(enabled());
}

TEST_F(CheckFlagTest, UnparsableEnvFallsBackToDefault)
{
    setenv("DIRIGENT_CHECK", "maybe", 1);
    EXPECT_EQ(enabled(), compiledDefault());
}

TEST_F(CheckFlagTest, ExplicitOverrideBeatsEnvironment)
{
    setenv("DIRIGENT_CHECK", "0", 1);
    setEnabled(true);
    EXPECT_TRUE(enabled());
    setEnabled(false);
    setenv("DIRIGENT_CHECK", "1", 1);
    EXPECT_FALSE(enabled());
}

TEST_F(CheckFlagTest, ClearingOverrideRestoresEnvResolution)
{
    setEnabled(true);
    setenv("DIRIGENT_CHECK", "0", 1);
    EXPECT_TRUE(enabled());
    clearOverride();
    EXPECT_FALSE(enabled());
}

} // namespace
} // namespace dirigent::check
