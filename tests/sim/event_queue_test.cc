/**
 * @file
 * Unit tests for the deterministic event queue.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"

namespace dirigent::sim {
namespace {

TEST(EventQueueTest, EmptyQueue)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_TRUE(q.nextTime().isNever());
    EXPECT_EQ(q.runDue(Time::sec(100.0)), 0u);
}

TEST(EventQueueTest, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(Time::ms(3.0), [&] { order.push_back(3); });
    q.schedule(Time::ms(1.0), [&] { order.push_back(1); });
    q.schedule(Time::ms(2.0), [&] { order.push_back(2); });
    EXPECT_EQ(q.runDue(Time::ms(5.0)), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesFireInInsertionOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(Time::ms(1.0), [&order, i] { order.push_back(i); });
    q.runDue(Time::ms(1.0));
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, OnlyDueEventsFire)
{
    EventQueue q;
    int fired = 0;
    q.schedule(Time::ms(1.0), [&] { ++fired; });
    q.schedule(Time::ms(10.0), [&] { ++fired; });
    EXPECT_EQ(q.runDue(Time::ms(5.0)), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.size(), 1u);
    EXPECT_DOUBLE_EQ(q.nextTime().ms(), 10.0);
}

TEST(EventQueueTest, EventAtExactDeadlineFires)
{
    EventQueue q;
    bool fired = false;
    q.schedule(Time::ms(2.0), [&] { fired = true; });
    q.runDue(Time::ms(2.0));
    EXPECT_TRUE(fired);
}

TEST(EventQueueTest, CancelPreventsFiring)
{
    EventQueue q;
    bool fired = false;
    EventId id = q.schedule(Time::ms(1.0), [&] { fired = true; });
    EXPECT_TRUE(q.cancel(id));
    q.runDue(Time::ms(5.0));
    EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelAfterFireIsNoop)
{
    EventQueue q;
    EventId id = q.schedule(Time::ms(1.0), [] {});
    q.runDue(Time::ms(1.0));
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, CancelInvalidIdIsNoop)
{
    EventQueue q;
    EXPECT_FALSE(q.cancel(EventId{999}));
}

TEST(EventQueueTest, CallbackMayScheduleAtSameTime)
{
    EventQueue q;
    int count = 0;
    q.schedule(Time::ms(1.0), [&] {
        ++count;
        q.schedule(Time::ms(1.0), [&] { ++count; });
    });
    EXPECT_EQ(q.runDue(Time::ms(1.0)), 2u);
    EXPECT_EQ(count, 2);
}

TEST(EventQueueTest, CallbackMayScheduleLater)
{
    EventQueue q;
    int count = 0;
    q.schedule(Time::ms(1.0), [&] {
        ++count;
        q.schedule(Time::ms(2.0), [&] { ++count; });
    });
    q.runDue(Time::ms(1.5));
    EXPECT_EQ(count, 1);
    q.runDue(Time::ms(2.0));
    EXPECT_EQ(count, 2);
}

TEST(EventQueueDeathTest, NullCallbackPanics)
{
    EventQueue q;
    EXPECT_DEATH(q.schedule(Time::ms(1.0), nullptr), "null");
}

TEST(EventQueueTest, IdsAreUnique)
{
    EventQueue q;
    EventId a = q.schedule(Time::ms(1.0), [] {});
    EventId b = q.schedule(Time::ms(1.0), [] {});
    EXPECT_NE(a, b);
    EXPECT_TRUE(a.valid());
    EXPECT_FALSE(EventId{}.valid());
}

} // namespace
} // namespace dirigent::sim
