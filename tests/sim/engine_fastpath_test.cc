/**
 * @file
 * Unit tests for the skip-ahead stepping machinery itself: mode
 * selection from the environment, span-merge accounting in StepStats,
 * the automatic fallback to reference stepping while observers are
 * attached, and the process-wide span-quantum counter the equivalence
 * suites use to prove engagement.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "sim/engine.h"

namespace dirigent::sim {
namespace {

class RecordingComponent : public Component
{
  public:
    void
    advance(Time start, Time dt) override
    {
        spans.emplace_back(start.us(), dt.us());
    }

    std::vector<std::pair<double, double>> spans;
};

class NullObserver : public Observer
{
  public:
    void beforeQuantum(Time, Time) override { ++calls; }
    void afterQuantum(Time, Time) override { ++calls; }
    uint64_t calls = 0;
};

/** Scoped DIRIGENT_FAST_PATH override (restores the prior value). */
class ScopedEnv
{
  public:
    explicit ScopedEnv(const char *value)
    {
        const char *prev = std::getenv("DIRIGENT_FAST_PATH");
        had_ = prev != nullptr;
        if (had_)
            prev_ = prev;
        if (value != nullptr)
            ::setenv("DIRIGENT_FAST_PATH", value, 1);
        else
            ::unsetenv("DIRIGENT_FAST_PATH");
    }

    ~ScopedEnv()
    {
        if (had_)
            ::setenv("DIRIGENT_FAST_PATH", prev_.c_str(), 1);
        else
            ::unsetenv("DIRIGENT_FAST_PATH");
    }

  private:
    bool had_ = false;
    std::string prev_;
};

TEST(StepModeEnvTest, UnsetMeansSkipAhead)
{
    ScopedEnv env(nullptr);
    EXPECT_EQ(stepModeFromEnv(), StepMode::SkipAhead);
}

TEST(StepModeEnvTest, DisablingSpellings)
{
    for (const char *off : {"0", "off", "false", "no"}) {
        ScopedEnv env(off);
        EXPECT_EQ(stepModeFromEnv(), StepMode::Reference) << off;
    }
    for (const char *on : {"1", "on", "yes", "anything"}) {
        ScopedEnv env(on);
        EXPECT_EQ(stepModeFromEnv(), StepMode::SkipAhead) << on;
    }
}

TEST(StepModeEnvTest, EngineConstructsInEnvMode)
{
    RecordingComponent comp;
    {
        ScopedEnv env("0");
        Engine engine(comp, Time::us(100.0));
        EXPECT_EQ(engine.stepMode(), StepMode::Reference);
    }
    {
        ScopedEnv env("1");
        Engine engine(comp, Time::us(100.0));
        EXPECT_EQ(engine.stepMode(), StepMode::SkipAhead);
    }
}

TEST(FastPathTest, SkipAheadMergesEventFreeQuanta)
{
    RecordingComponent comp;
    Engine engine(comp, Time::us(100.0));
    engine.setStepMode(StepMode::SkipAhead);
    engine.runUntil(Time::ms(1.0));
    const StepStats &stats = engine.stepStats();
    EXPECT_EQ(stats.quanta, 10u);
    EXPECT_EQ(stats.spans, 1u);
    EXPECT_EQ(stats.spanQuanta, 10u);
    // Merged or not, the component sees the same quantum grid (up to
    // the accumulated Time-arithmetic dust reference stepping shares).
    ASSERT_EQ(comp.spans.size(), 10u);
    for (const auto &[start, dt] : comp.spans)
        EXPECT_NEAR(dt, 100.0, 1e-9);
}

TEST(FastPathTest, ReferenceModeNeverMergesSpans)
{
    RecordingComponent comp;
    Engine engine(comp, Time::us(100.0));
    engine.setStepMode(StepMode::Reference);
    engine.runUntil(Time::ms(1.0));
    EXPECT_EQ(engine.stepStats().quanta, 10u);
    EXPECT_EQ(engine.stepStats().spans, 0u);
    EXPECT_EQ(engine.stepStats().spanQuanta, 0u);
}

TEST(FastPathTest, EventsBreakSpansButNotEquivalence)
{
    RecordingComponent ref, fast;
    Engine refEngine(ref, Time::us(100.0));
    refEngine.setStepMode(StepMode::Reference);
    Engine fastEngine(fast, Time::us(100.0));
    fastEngine.setStepMode(StepMode::SkipAhead);
    for (Engine *engine : {&refEngine, &fastEngine}) {
        engine->at(Time::us(250.0), [] {});
        engine->at(Time::us(730.0), [] {});
        engine->runUntil(Time::ms(1.0));
    }
    EXPECT_EQ(fast.spans, ref.spans);
    EXPECT_EQ(fastEngine.stepStats().quanta,
              refEngine.stepStats().quanta);
    EXPECT_GT(fastEngine.stepStats().spans, 0u);
}

TEST(FastPathTest, AttachedObserverForcesReferenceStepping)
{
    RecordingComponent comp;
    NullObserver observer;
    Engine engine(comp, Time::us(100.0));
    engine.setStepMode(StepMode::SkipAhead);
    engine.addObserver(&observer);
    engine.runUntil(Time::ms(1.0));
    EXPECT_EQ(engine.stepStats().spans, 0u);
    EXPECT_EQ(observer.calls, 2u * 10u); // before + after, every quantum
}

TEST(FastPathTest, DetachingObserverReenablesSkipAhead)
{
    RecordingComponent comp;
    NullObserver observer;
    Engine engine(comp, Time::us(100.0));
    engine.setStepMode(StepMode::SkipAhead);
    engine.addObserver(&observer);
    engine.at(Time::us(500.0), [&] { engine.removeObserver(&observer); });
    engine.runUntil(Time::ms(1.0));
    // First half observed quantum-by-quantum, second half merged.
    EXPECT_EQ(observer.calls, 2u * 5u);
    EXPECT_GT(engine.stepStats().spans, 0u);
    EXPECT_EQ(engine.stepStats().quanta, 10u);
}

TEST(FastPathTest, SpanQuantaFlushToProcessCounter)
{
    RecordingComponent comp;
    Engine engine(comp, Time::us(100.0));
    engine.setStepMode(StepMode::SkipAhead);
    uint64_t quantaBefore = totalQuantaAdvanced();
    uint64_t spanBefore = totalSpanQuantaAdvanced();
    engine.runUntil(Time::ms(1.0));
    EXPECT_EQ(totalQuantaAdvanced() - quantaBefore, 10u);
    EXPECT_EQ(totalSpanQuantaAdvanced() - spanBefore, 10u);
    // A second run must not double-flush the already-published stats.
    engine.runUntil(Time::ms(2.0));
    EXPECT_EQ(totalQuantaAdvanced() - quantaBefore, 20u);
    EXPECT_EQ(totalSpanQuantaAdvanced() - spanBefore, 20u);
}

} // namespace
} // namespace dirigent::sim
