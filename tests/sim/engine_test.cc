/**
 * @file
 * Unit tests for the variable-quantum co-simulation engine.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.h"

namespace dirigent::sim {
namespace {

/** Records every advance span it receives. */
class RecordingComponent : public Component
{
  public:
    void
    advance(Time start, Time dt) override
    {
        spans.emplace_back(start.sec(), dt.sec());
        total += dt;
    }

    std::vector<std::pair<double, double>> spans;
    Time total;
};

TEST(EngineTest, AdvancesToEnd)
{
    RecordingComponent comp;
    Engine engine(comp, Time::us(100.0));
    engine.runUntil(Time::ms(1.0));
    EXPECT_DOUBLE_EQ(engine.now().ms(), 1.0);
    EXPECT_NEAR(comp.total.ms(), 1.0, 1e-12);
    // 1 ms at 100 µs quanta = 10 spans.
    EXPECT_EQ(comp.spans.size(), 10u);
}

TEST(EngineTest, QuantaNeverExceedMax)
{
    RecordingComponent comp;
    Engine engine(comp, Time::us(100.0));
    engine.after(Time::us(250.0), [] {});
    engine.runUntil(Time::ms(1.0));
    for (const auto &[start, dt] : comp.spans)
        EXPECT_LE(dt, 100e-6 + 1e-15);
}

TEST(EngineTest, EventSplitsQuantumExactly)
{
    RecordingComponent comp;
    Engine engine(comp, Time::us(100.0));
    double fireTime = -1.0;
    engine.after(Time::us(250.0), [&] { fireTime = engine.now().us(); });
    engine.runUntil(Time::us(400.0));
    EXPECT_DOUBLE_EQ(fireTime, 250.0);
    // Spans: 100, 100, 50 (event), 100, 50.
    ASSERT_GE(comp.spans.size(), 3u);
    EXPECT_NEAR(comp.spans[2].second, 50e-6, 1e-12);
}

TEST(EngineTest, EventAtEndFires)
{
    RecordingComponent comp;
    Engine engine(comp, Time::us(100.0));
    bool fired = false;
    engine.at(Time::ms(1.0), [&] { fired = true; });
    engine.runUntil(Time::ms(1.0));
    EXPECT_TRUE(fired);
}

TEST(EngineTest, ZeroDelayEventFiresBeforeAdvance)
{
    RecordingComponent comp;
    Engine engine(comp, Time::us(100.0));
    size_t spansAtFire = 99;
    engine.after(Time(), [&] { spansAtFire = comp.spans.size(); });
    engine.runUntil(Time::us(100.0));
    EXPECT_EQ(spansAtFire, 0u);
}

TEST(EngineTest, RunForAccumulates)
{
    RecordingComponent comp;
    Engine engine(comp, Time::us(100.0));
    engine.runFor(Time::ms(1.0));
    engine.runFor(Time::ms(2.0));
    EXPECT_DOUBLE_EQ(engine.now().ms(), 3.0);
}

TEST(EngineTest, EventsChainAcrossRun)
{
    RecordingComponent comp;
    Engine engine(comp, Time::us(50.0));
    int ticks = 0;
    std::function<void()> tick = [&] {
        ++ticks;
        if (ticks < 5)
            engine.after(Time::us(200.0), tick);
    };
    engine.after(Time::us(200.0), tick);
    engine.runUntil(Time::ms(2.0));
    EXPECT_EQ(ticks, 5);
}

TEST(EngineTest, PastEventFiresImmediately)
{
    RecordingComponent comp;
    Engine engine(comp, Time::us(100.0));
    engine.runUntil(Time::ms(1.0));
    bool fired = false;
    // at() clamps to now when the requested time is in the past.
    engine.at(Time::us(1.0), [&] { fired = true; });
    engine.runUntil(Time::ms(1.0) + Time::us(1.0));
    EXPECT_TRUE(fired);
}

TEST(EngineDeathTest, RejectsBadQuantum)
{
    RecordingComponent comp;
    EXPECT_DEATH(Engine(comp, Time()), "quantum");
}

TEST(EngineDeathTest, RejectsNegativeDelay)
{
    RecordingComponent comp;
    Engine engine(comp, Time::us(100.0));
    EXPECT_DEATH(engine.after(Time::sec(-1.0), [] {}), "delay");
}

} // namespace
} // namespace dirigent::sim
