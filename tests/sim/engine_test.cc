/**
 * @file
 * Unit tests for the variable-quantum co-simulation engine.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.h"

namespace dirigent::sim {
namespace {

/** Records every advance span it receives. */
class RecordingComponent : public Component
{
  public:
    void
    advance(Time start, Time dt) override
    {
        spans.emplace_back(start.sec(), dt.sec());
        total += dt;
    }

    std::vector<std::pair<double, double>> spans;
    Time total;
};

TEST(EngineTest, AdvancesToEnd)
{
    RecordingComponent comp;
    Engine engine(comp, Time::us(100.0));
    engine.runUntil(Time::ms(1.0));
    EXPECT_DOUBLE_EQ(engine.now().ms(), 1.0);
    EXPECT_NEAR(comp.total.ms(), 1.0, 1e-12);
    // 1 ms at 100 µs quanta = 10 spans.
    EXPECT_EQ(comp.spans.size(), 10u);
}

TEST(EngineTest, QuantaNeverExceedMax)
{
    RecordingComponent comp;
    Engine engine(comp, Time::us(100.0));
    engine.after(Time::us(250.0), [] {});
    engine.runUntil(Time::ms(1.0));
    for (const auto &[start, dt] : comp.spans)
        EXPECT_LE(dt, 100e-6 + 1e-15);
}

TEST(EngineTest, EventSplitsQuantumExactly)
{
    RecordingComponent comp;
    Engine engine(comp, Time::us(100.0));
    double fireTime = -1.0;
    engine.after(Time::us(250.0), [&] { fireTime = engine.now().us(); });
    engine.runUntil(Time::us(400.0));
    EXPECT_DOUBLE_EQ(fireTime, 250.0);
    // Spans: 100, 100, 50 (event), 100, 50.
    ASSERT_GE(comp.spans.size(), 3u);
    EXPECT_NEAR(comp.spans[2].second, 50e-6, 1e-12);
}

TEST(EngineTest, EventAtEndFires)
{
    RecordingComponent comp;
    Engine engine(comp, Time::us(100.0));
    bool fired = false;
    engine.at(Time::ms(1.0), [&] { fired = true; });
    engine.runUntil(Time::ms(1.0));
    EXPECT_TRUE(fired);
}

TEST(EngineTest, ZeroDelayEventFiresBeforeAdvance)
{
    RecordingComponent comp;
    Engine engine(comp, Time::us(100.0));
    size_t spansAtFire = 99;
    engine.after(Time(), [&] { spansAtFire = comp.spans.size(); });
    engine.runUntil(Time::us(100.0));
    EXPECT_EQ(spansAtFire, 0u);
}

TEST(EngineTest, RunForAccumulates)
{
    RecordingComponent comp;
    Engine engine(comp, Time::us(100.0));
    engine.runFor(Time::ms(1.0));
    engine.runFor(Time::ms(2.0));
    EXPECT_DOUBLE_EQ(engine.now().ms(), 3.0);
}

TEST(EngineTest, EventsChainAcrossRun)
{
    RecordingComponent comp;
    Engine engine(comp, Time::us(50.0));
    int ticks = 0;
    std::function<void()> tick = [&] {
        ++ticks;
        if (ticks < 5)
            engine.after(Time::us(200.0), tick);
    };
    engine.after(Time::us(200.0), tick);
    engine.runUntil(Time::ms(2.0));
    EXPECT_EQ(ticks, 5);
}

TEST(EngineTest, PastEventFiresImmediately)
{
    RecordingComponent comp;
    Engine engine(comp, Time::us(100.0));
    engine.runUntil(Time::ms(1.0));
    bool fired = false;
    // at() clamps to now when the requested time is in the past.
    engine.at(Time::us(1.0), [&] { fired = true; });
    engine.runUntil(Time::ms(1.0) + Time::us(1.0));
    EXPECT_TRUE(fired);
}

/** Records the spans reported through the Observer interface. */
class RecordingObserver : public Observer
{
  public:
    void
    beforeQuantum(Time start, Time dt) override
    {
        before.emplace_back(start.sec(), dt.sec());
    }

    void
    afterQuantum(Time start, Time dt) override
    {
        after.emplace_back(start.sec(), dt.sec());
    }

    std::vector<std::pair<double, double>> before;
    std::vector<std::pair<double, double>> after;
};

TEST(EngineObserverTest, SeesEveryQuantum)
{
    RecordingComponent comp;
    Engine engine(comp, Time::us(100.0));
    RecordingObserver obs;
    engine.addObserver(&obs);
    engine.after(Time::us(250.0), [] {});
    engine.runUntil(Time::ms(1.0));
    // The observer sees exactly the spans the component advanced.
    EXPECT_EQ(obs.before, comp.spans);
    EXPECT_EQ(obs.after, comp.spans);
}

TEST(EngineObserverTest, BeforeFiresBeforeAdvance)
{
    RecordingComponent comp;
    Engine engine(comp, Time::us(100.0));

    /** Observer that checks ordering against the component's record. */
    class OrderObserver : public Observer
    {
      public:
        explicit OrderObserver(RecordingComponent &c) : comp_(c) {}

        void
        beforeQuantum(Time, Time) override
        {
            spansAtBefore_.push_back(comp_.spans.size());
        }

        void
        afterQuantum(Time, Time) override
        {
            spansAtAfter_.push_back(comp_.spans.size());
        }

        void
        verify() const
        {
            ASSERT_EQ(spansAtBefore_.size(), spansAtAfter_.size());
            for (size_t i = 0; i < spansAtBefore_.size(); ++i) {
                EXPECT_EQ(spansAtBefore_[i], i);
                EXPECT_EQ(spansAtAfter_[i], i + 1);
            }
        }

      private:
        RecordingComponent &comp_;
        std::vector<size_t> spansAtBefore_;
        std::vector<size_t> spansAtAfter_;
    };

    OrderObserver obs(comp);
    engine.addObserver(&obs);
    engine.runUntil(Time::ms(1.0));
    obs.verify();
}

TEST(EngineObserverTest, RemoveStopsNotifications)
{
    RecordingComponent comp;
    Engine engine(comp, Time::us(100.0));
    RecordingObserver obs;
    engine.addObserver(&obs);
    engine.runUntil(Time::us(300.0));
    size_t seen = obs.after.size();
    EXPECT_EQ(seen, 3u);
    engine.removeObserver(&obs);
    engine.runUntil(Time::us(600.0));
    EXPECT_EQ(obs.after.size(), seen);
}

TEST(EngineObserverTest, MultipleObserversAllNotified)
{
    RecordingComponent comp;
    Engine engine(comp, Time::us(100.0));
    RecordingObserver a, b;
    engine.addObserver(&a);
    engine.addObserver(&b);
    engine.runUntil(Time::us(500.0));
    EXPECT_EQ(a.after.size(), 5u);
    EXPECT_EQ(b.after, a.after);
}

TEST(EngineDeathTest, RejectsBadQuantum)
{
    RecordingComponent comp;
    EXPECT_DEATH(Engine(comp, Time()), "quantum");
}

TEST(EngineDeathTest, RejectsNegativeDelay)
{
    RecordingComponent comp;
    Engine engine(comp, Time::us(100.0));
    EXPECT_DEATH(engine.after(Time::sec(-1.0), [] {}), "delay");
}

} // namespace
} // namespace dirigent::sim
