/**
 * @file
 * Event-queue and engine edge cases the fast path leans on: stability
 * of same-timestamp ordering, events landing exactly on quantum
 * boundaries, and events enqueued from within a firing event. Each
 * engine-level case runs under both stepping modes and asserts the
 * identical observable sequence, since these are exactly the corners
 * where span merging could drift from reference stepping.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/engine.h"
#include "sim/event_queue.h"

namespace dirigent::sim {
namespace {

/** Records every advance span it receives. */
class RecordingComponent : public Component
{
  public:
    void
    advance(Time start, Time dt) override
    {
        spans.emplace_back(start.us(), dt.us());
    }

    std::vector<std::pair<double, double>> spans;
};

const StepMode kModes[] = {StepMode::Reference, StepMode::SkipAhead};

std::string
modeName(StepMode mode)
{
    return mode == StepMode::Reference ? "reference" : "skip-ahead";
}

// ---------------------------------------------------------------------
// Queue-level edges.
// ---------------------------------------------------------------------

TEST(EventQueueEdgeTest, CallbackMayCancelLaterSameTimeEvent)
{
    EventQueue queue;
    std::vector<int> fired;
    EventId second;
    queue.schedule(Time::us(10.0), [&] {
        fired.push_back(1);
        EXPECT_TRUE(queue.cancel(second));
    });
    second = queue.schedule(Time::us(10.0), [&] { fired.push_back(2); });
    queue.schedule(Time::us(10.0), [&] { fired.push_back(3); });
    queue.runDue(Time::us(10.0));
    EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueueEdgeTest, CancelKeepsInsertionOrderOfSurvivors)
{
    EventQueue queue;
    std::vector<int> fired;
    queue.schedule(Time::us(5.0), [&] { fired.push_back(1); });
    EventId b = queue.schedule(Time::us(5.0), [&] { fired.push_back(2); });
    queue.schedule(Time::us(5.0), [&] { fired.push_back(3); });
    EXPECT_TRUE(queue.cancel(b));
    queue.runDue(Time::us(5.0));
    EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueueEdgeTest, NextTimeTracksPartialDrain)
{
    EventQueue queue;
    queue.schedule(Time::us(10.0), [] {});
    queue.schedule(Time::us(30.0), [] {});
    EXPECT_DOUBLE_EQ(queue.nextTime().us(), 10.0);
    queue.runDue(Time::us(20.0));
    EXPECT_DOUBLE_EQ(queue.nextTime().us(), 30.0);
    queue.runDue(Time::us(30.0));
    EXPECT_EQ(queue.nextTime(), Time::never());
}

// ---------------------------------------------------------------------
// Engine-level edges, both stepping modes.
// ---------------------------------------------------------------------

TEST(EngineEdgeTest, EventExactlyAtQuantumBoundaryDoesNotSplitSpans)
{
    for (StepMode mode : kModes) {
        SCOPED_TRACE(modeName(mode));
        RecordingComponent comp;
        Engine engine(comp, Time::us(100.0));
        engine.setStepMode(mode);
        double fireUs = -1.0;
        size_t spansAtFire = 0;
        engine.at(Time::us(200.0), [&] {
            fireUs = engine.now().us();
            spansAtFire = comp.spans.size();
        });
        engine.runUntil(Time::us(500.0));
        // The event lands on the natural 100 µs grid: every span stays
        // a full quantum and the event fires after exactly two.
        ASSERT_EQ(comp.spans.size(), 5u);
        for (const auto &[start, dt] : comp.spans)
            EXPECT_DOUBLE_EQ(dt, 100.0);
        EXPECT_DOUBLE_EQ(fireUs, 200.0);
        EXPECT_EQ(spansAtFire, 2u);
    }
}

TEST(EngineEdgeTest, EventJustPastBoundarySplitsFollowingQuantum)
{
    for (StepMode mode : kModes) {
        SCOPED_TRACE(modeName(mode));
        RecordingComponent comp;
        Engine engine(comp, Time::us(100.0));
        engine.setStepMode(mode);
        engine.at(Time::us(250.0), [] {});
        engine.runUntil(Time::us(400.0));
        std::vector<double> expected = {100.0, 100.0, 50.0, 100.0, 50.0};
        ASSERT_EQ(comp.spans.size(), expected.size());
        for (size_t i = 0; i < expected.size(); ++i)
            EXPECT_DOUBLE_EQ(comp.spans[i].second, expected[i]) << i;
    }
}

TEST(EngineEdgeTest, SameTimestampEventsFireInScheduleOrder)
{
    for (StepMode mode : kModes) {
        SCOPED_TRACE(modeName(mode));
        RecordingComponent comp;
        Engine engine(comp, Time::us(100.0));
        engine.setStepMode(mode);
        std::vector<int> fired;
        engine.at(Time::us(150.0), [&] { fired.push_back(1); });
        engine.at(Time::us(150.0), [&] { fired.push_back(2); });
        engine.at(Time::us(150.0), [&] { fired.push_back(3); });
        engine.runUntil(Time::us(300.0));
        EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
    }
}

TEST(EngineEdgeTest, EventEnqueuedFromFiringEventShapesLaterSpans)
{
    for (StepMode mode : kModes) {
        SCOPED_TRACE(modeName(mode));
        RecordingComponent comp;
        Engine engine(comp, Time::us(100.0));
        engine.setStepMode(mode);
        double chainedFireUs = -1.0;
        engine.at(Time::us(150.0), [&] {
            // Enqueued from within a firing event, inside what the
            // fast path would otherwise treat as one event-free span.
            engine.after(Time::us(80.0), [&] {
                chainedFireUs = engine.now().us();
            });
        });
        engine.runUntil(Time::us(400.0));
        EXPECT_DOUBLE_EQ(chainedFireUs, 230.0);
        std::vector<double> expected = {100.0, 50.0, 80.0, 100.0, 70.0};
        ASSERT_EQ(comp.spans.size(), expected.size());
        for (size_t i = 0; i < expected.size(); ++i)
            EXPECT_DOUBLE_EQ(comp.spans[i].second, expected[i]) << i;
    }
}

TEST(EngineEdgeTest, EventEnqueuedAtCurrentTimeFiresBeforeNextSpan)
{
    for (StepMode mode : kModes) {
        SCOPED_TRACE(modeName(mode));
        RecordingComponent comp;
        Engine engine(comp, Time::us(100.0));
        engine.setStepMode(mode);
        std::vector<int> fired;
        engine.at(Time::us(150.0), [&] {
            fired.push_back(1);
            // Same-time enqueue from a firing event: fires in the same
            // drain, before the model advances again.
            engine.after(Time(), [&] {
                fired.push_back(2);
                EXPECT_DOUBLE_EQ(engine.now().us(), 150.0);
            });
        });
        engine.runUntil(Time::us(300.0));
        EXPECT_EQ(fired, (std::vector<int>{1, 2}));
    }
}

} // namespace
} // namespace dirigent::sim
