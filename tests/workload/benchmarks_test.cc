/**
 * @file
 * Tests of the benchmark library: Table 1 inventory, category
 * structure, and the calibration invariants the evaluation relies on.
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/benchmarks.h"
#include "workload/rotate.h"

namespace dirigent::workload {
namespace {

TEST(BenchmarkLibraryTest, Table1Inventory)
{
    const auto &lib = BenchmarkLibrary::instance();
    EXPECT_GE(lib.all().size(), 12u); // 12 built-ins (+ any customs)
    EXPECT_GE(lib.foregroundNames().size(), 5u);
    EXPECT_GE(lib.singleBgNames().size(), 3u);
    EXPECT_EQ(lib.rotatePairs().size(), 4u);
}

TEST(BenchmarkLibraryTest, PaperBenchmarksPresent)
{
    const auto &lib = BenchmarkLibrary::instance();
    for (const char *name :
         {"bodytrack", "ferret", "fluidanimate", "raytrace",
          "streamcluster", "bwaves", "pca", "rs", "namd", "soplex",
          "libquantum", "lbm"})
        EXPECT_TRUE(lib.has(name)) << name;
    EXPECT_FALSE(lib.has("nonexistent"));
}

TEST(BenchmarkLibraryTest, CategoriesMatchTable1)
{
    const auto &lib = BenchmarkLibrary::instance();
    EXPECT_EQ(lib.get("ferret").category, Category::Foreground);
    EXPECT_EQ(lib.get("bwaves").category, Category::SingleBg);
    EXPECT_EQ(lib.get("lbm").category, Category::RotateBg);
}

TEST(BenchmarkLibraryTest, ForegroundProgramsAreOneShot)
{
    const auto &lib = BenchmarkLibrary::instance();
    for (const auto &name : lib.foregroundNames())
        EXPECT_FALSE(lib.get(name).program.loop) << name;
}

TEST(BenchmarkLibraryTest, RegisterCustomBenchmark)
{
    PhaseProgram prog;
    prog.name = "custom-app";
    Phase ph;
    ph.name = "only";
    ph.instructions = 1e9;
    prog.phases = {ph};

    const Benchmark &bench = BenchmarkLibrary::registerCustom(
        "custom-app", "a user-defined app", prog);
    EXPECT_EQ(bench.category, Category::Foreground);
    const auto &lib = BenchmarkLibrary::instance();
    EXPECT_TRUE(lib.has("custom-app"));
    EXPECT_EQ(&lib.get("custom-app"), &bench);

    // Looping programs register as background.
    PhaseProgram bg = prog;
    bg.name = "custom-bg";
    bg.loop = true;
    const Benchmark &bgBench =
        BenchmarkLibrary::registerCustom("custom-bg", "bg", bg);
    EXPECT_EQ(bgBench.category, Category::SingleBg);

    // Name collisions are fatal.
    EXPECT_EXIT(BenchmarkLibrary::registerCustom("custom-app", "dup",
                                                 prog),
                testing::ExitedWithCode(1), "already exists");
}

TEST(BenchmarkLibraryTest, BackgroundProgramsLoop)
{
    const auto &lib = BenchmarkLibrary::instance();
    for (const auto &name : lib.singleBgNames())
        EXPECT_TRUE(lib.get(name).program.loop) << name;
    for (const auto &[a, b] : lib.rotatePairs()) {
        EXPECT_TRUE(lib.get(a).program.loop) << a;
        EXPECT_TRUE(lib.get(b).program.loop) << b;
    }
}

TEST(BenchmarkLibraryTest, AllProgramsValid)
{
    for (const auto &b : BenchmarkLibrary::instance().all())
        EXPECT_TRUE(b.program.valid()) << b.name;
}

TEST(BenchmarkLibraryTest, NamesUniqueAndDescribed)
{
    std::set<std::string> names;
    for (const auto &b : BenchmarkLibrary::instance().all()) {
        EXPECT_TRUE(names.insert(b.name).second) << b.name;
        EXPECT_FALSE(b.description.empty()) << b.name;
    }
}

TEST(BenchmarkLibraryTest, FgNominalTimesSpanPaperRange)
{
    // Fig. 4: standalone completion times roughly 0.5–1.6 s at 2 GHz.
    // Nominal time ≈ Σ instructions · cpi / 2 GHz (ignoring misses).
    const auto &lib = BenchmarkLibrary::instance();
    const std::vector<std::string> builtins = {
        "bodytrack", "ferret", "fluidanimate", "raytrace",
        "streamcluster"};
    double shortest = 1e9, longest = 0.0;
    for (const auto &name : builtins) {
        double t = 0.0;
        for (const auto &ph : lib.get(name).program.phases)
            t += ph.instructions * ph.cpiBase / 2e9;
        shortest = std::min(shortest, t);
        longest = std::max(longest, t);
    }
    EXPECT_GT(shortest, 0.3);
    EXPECT_LT(shortest, 0.7);
    EXPECT_GT(longest, 1.0);
    EXPECT_LT(longest, 2.0);
}

TEST(BenchmarkLibraryTest, StreamclusterIsMostMemoryIntensiveFg)
{
    // The calibration the evaluation depends on: streamcluster has the
    // highest average APKI of the FG set (it shows the largest
    // contention sensitivity in Fig. 4).
    const auto &lib = BenchmarkLibrary::instance();
    auto avgApki = [&](const std::string &name) {
        const auto &prog = lib.get(name).program;
        double wsum = 0.0, isum = 0.0;
        for (const auto &ph : prog.phases) {
            wsum += ph.llcApki * ph.instructions;
            isum += ph.instructions;
        }
        return wsum / isum;
    };
    double sc = avgApki("streamcluster");
    for (const char *name : {"bodytrack", "ferret", "fluidanimate",
                             "raytrace"})
        EXPECT_GT(sc, avgApki(name)) << name;
}

TEST(BenchmarkLibraryTest, PhaseHeavyBgHaveContrastingPhases)
{
    // bwaves/PCA/RS were chosen for strong phase behaviour: their two
    // phases must differ markedly in memory intensity. Iterate the
    // built-in trio by name — singleBgNames() also reports custom
    // benchmarks registered by other tests.
    const auto &lib = BenchmarkLibrary::instance();
    for (const std::string name : {"bwaves", "pca", "rs"}) {
        const auto &phases = lib.get(name).program.phases;
        ASSERT_GE(phases.size(), 2u) << name;
        double hi = 0.0, lo = 1e18;
        for (const auto &ph : phases) {
            hi = std::max(hi, ph.llcApki);
            lo = std::min(lo, ph.llcApki);
        }
        EXPECT_GT(hi / lo, 2.0) << name;
    }
}

TEST(BenchmarkLibraryDeathTest, UnknownBenchmarkIsFatal)
{
    EXPECT_EXIT(BenchmarkLibrary::instance().get("bogus"),
                testing::ExitedWithCode(1), "unknown benchmark");
}

TEST(CategoryTest, Names)
{
    EXPECT_STREQ(categoryName(Category::Foreground), "FG");
    EXPECT_STREQ(categoryName(Category::SingleBg), "Single BG");
    EXPECT_STREQ(categoryName(Category::RotateBg), "Rotate BG");
}

TEST(RotatePairTest, PaperPairs)
{
    const auto &lib = BenchmarkLibrary::instance();
    auto pairs = lib.rotatePairs();
    std::set<std::string> labels;
    for (const auto &[a, b] : pairs)
        labels.insert(a + "+" + b);
    EXPECT_TRUE(labels.count("lbm+namd"));
    EXPECT_TRUE(labels.count("libquantum+namd"));
    EXPECT_TRUE(labels.count("lbm+soplex"));
    EXPECT_TRUE(labels.count("libquantum+soplex"));
}

TEST(RotatePairTest, PickIsRoughlyBalanced)
{
    const auto &lib = BenchmarkLibrary::instance();
    RotatePair pair(&lib.get("lbm"), &lib.get("namd"));
    Rng rng(77);
    int first = 0;
    for (int i = 0; i < 10000; ++i)
        if (&pair.pick(rng) == &pair.first())
            ++first;
    EXPECT_NEAR(double(first) / 10000.0, 0.5, 0.03);
}

TEST(RotatePairTest, Name)
{
    const auto &lib = BenchmarkLibrary::instance();
    RotatePair pair(&lib.get("libquantum"), &lib.get("soplex"));
    EXPECT_EQ(pair.name(), "libquantum+soplex");
}

TEST(RotatePairDeathTest, RejectsNonLoopingMembers)
{
    const auto &lib = BenchmarkLibrary::instance();
    EXPECT_DEATH(RotatePair(&lib.get("ferret"), &lib.get("lbm")),
                 "looping");
}

} // namespace
} // namespace dirigent::workload
