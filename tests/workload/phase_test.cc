/**
 * @file
 * Unit tests for the phase model and its cache-capacity hit curve.
 */

#include <gtest/gtest.h>

#include "workload/phase.h"

namespace dirigent::workload {
namespace {

Phase
samplePhase()
{
    Phase p;
    p.name = "test";
    p.instructions = 1e9;
    p.cpiBase = 1.0;
    p.llcApki = 10.0;
    p.workingSet = 3_MiB;
    p.locality = 3.0;
    p.maxHitRatio = 0.9;
    return p;
}

TEST(PhaseTest, HitRatioZeroAtZeroOccupancy)
{
    Phase p = samplePhase();
    EXPECT_DOUBLE_EQ(p.hitRatio(0.0), 0.0);
}

TEST(PhaseTest, HitRatioMonotonicInOccupancy)
{
    Phase p = samplePhase();
    double prev = -1.0;
    for (double occ = 0.0; occ <= 4.0 * 1024 * 1024; occ += 256 * 1024) {
        double h = p.hitRatio(occ);
        EXPECT_GT(h, prev);
        prev = h;
    }
}

TEST(PhaseTest, HitRatioBoundedByMax)
{
    Phase p = samplePhase();
    EXPECT_LT(p.hitRatio(100.0_MiB), p.maxHitRatio + 1e-12);
    // Near-full residency approaches (1 − e⁻³)·max ≈ 0.95·max.
    EXPECT_NEAR(p.hitRatio(p.workingSet), 0.9 * (1.0 - std::exp(-3.0)),
                1e-9);
}

TEST(PhaseTest, WsCharScalesWithLocality)
{
    Phase p = samplePhase();
    EXPECT_DOUBLE_EQ(p.wsChar(), p.workingSet / 3.0);
    p.locality = 6.0;
    EXPECT_DOUBLE_EQ(p.wsChar(), p.workingSet / 6.0);
    // Higher locality = steeper curve: more hits at small occupancy.
    Phase steep = samplePhase();
    steep.locality = 6.0;
    EXPECT_GT(steep.hitRatio(0.5_MiB), samplePhase().hitRatio(0.5_MiB));
}

TEST(PhaseProgramTest, TotalInstructions)
{
    PhaseProgram prog;
    prog.name = "p";
    prog.phases = {samplePhase(), samplePhase()};
    EXPECT_DOUBLE_EQ(prog.totalInstructions(), 2e9);
}

TEST(PhaseProgramTest, ValidityChecks)
{
    PhaseProgram prog;
    prog.name = "p";
    EXPECT_FALSE(prog.valid()); // no phases

    prog.phases = {samplePhase()};
    EXPECT_TRUE(prog.valid());

    prog.phases[0].instructions = 0.0;
    EXPECT_FALSE(prog.valid());

    prog.phases[0].instructions = 1e9;
    prog.phases[0].cpiBase = 0.0;
    EXPECT_FALSE(prog.valid());
}

} // namespace
} // namespace dirigent::workload
