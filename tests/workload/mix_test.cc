/**
 * @file
 * Tests of the workload-mix catalogue against the paper's evaluated
 * mixes: 15 single-BG, 20 rotate-BG, 15 multi-FG.
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/mix.h"

namespace dirigent::workload {
namespace {

TEST(BgSpecTest, Labels)
{
    EXPECT_EQ(BgSpec::single("bwaves").label(), "bwaves");
    EXPECT_EQ(BgSpec::rotate("lbm", "namd").label(), "lbm+namd");
}

TEST(MakeMixTest, SingleFgName)
{
    auto mix = makeMix({"ferret"}, BgSpec::single("rs"));
    EXPECT_EQ(mix.name, "ferret rs");
    EXPECT_EQ(mix.fgCount(), 1u);
}

TEST(MakeMixTest, MultiFgName)
{
    auto mix = makeMix({"ferret", "ferret"}, BgSpec::single("bwaves"));
    EXPECT_EQ(mix.name, "ferret x2 bwaves");
    EXPECT_EQ(mix.fgCount(), 2u);
}

TEST(MakeMixDeathTest, RejectsNonForeground)
{
    EXPECT_DEATH(makeMix({"lbm"}, BgSpec::single("bwaves")),
                 "not a foreground");
}

TEST(MakeMixDeathTest, RejectsEmptyFg)
{
    EXPECT_DEATH(makeMix({}, BgSpec::single("bwaves")), "at least one");
}

TEST(MixCatalogueTest, SingleBgCount)
{
    auto mixes = singleBgMixes();
    EXPECT_EQ(mixes.size(), 15u); // 5 FG × 3 single BG
    for (const auto &mix : mixes) {
        EXPECT_EQ(mix.fgCount(), 1u);
        EXPECT_EQ(mix.bg.kind, BgSpec::Kind::Single);
    }
}

TEST(MixCatalogueTest, RotateBgCount)
{
    auto mixes = rotateBgMixes();
    EXPECT_EQ(mixes.size(), 20u); // 5 FG × 4 pairs
    for (const auto &mix : mixes) {
        EXPECT_EQ(mix.fgCount(), 1u);
        EXPECT_EQ(mix.bg.kind, BgSpec::Kind::Rotate);
    }
}

TEST(MixCatalogueTest, AllSingleFgIs35)
{
    EXPECT_EQ(allSingleFgMixes().size(), 35u);
}

TEST(MixCatalogueTest, MixNamesUnique)
{
    std::set<std::string> names;
    for (const auto &mix : allSingleFgMixes())
        EXPECT_TRUE(names.insert(mix.name).second) << mix.name;
    for (const auto &mix : multiFgMixes())
        EXPECT_TRUE(names.insert(mix.name).second) << mix.name;
}

TEST(MixCatalogueTest, MultiFgStructure)
{
    auto mixes = multiFgMixes();
    EXPECT_EQ(mixes.size(), 15u); // 5 combos × {1,2,3} FG
    // Within each combo, FG count ascends 1, 2, 3 (paper Fig. 9c).
    for (size_t i = 0; i < mixes.size(); i += 3) {
        EXPECT_EQ(mixes[i].fgCount(), 1u);
        EXPECT_EQ(mixes[i + 1].fgCount(), 2u);
        EXPECT_EQ(mixes[i + 2].fgCount(), 3u);
        // Same FG benchmark and BG spec across the triple.
        EXPECT_EQ(mixes[i].fg[0], mixes[i + 1].fg[0]);
        EXPECT_EQ(mixes[i].bg.label(), mixes[i + 2].bg.label());
    }
}

TEST(MixCatalogueTest, MultiFgHomogeneous)
{
    for (const auto &mix : multiFgMixes())
        for (const auto &fg : mix.fg)
            EXPECT_EQ(fg, mix.fg.front());
}

TEST(MixCatalogueTest, EveryFgBenchmarkCoveredInMultiFg)
{
    std::set<std::string> fgs;
    for (const auto &mix : multiFgMixes())
        fgs.insert(mix.fg.front());
    EXPECT_EQ(fgs.size(), 5u);
}

} // namespace
} // namespace dirigent::workload
