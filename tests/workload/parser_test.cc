/**
 * @file
 * Tests of the textual workload-definition parser.
 */

#include <gtest/gtest.h>

#include "common/random.h"
#include "workload/parser.h"
#include "workload/task.h"

namespace dirigent::workload {
namespace {

const char *kSample = R"(
[program]
name = mybench
loop = false

[phase.0]
name = stage-a
instructions = 1.2e9
cpi = 0.9
apki = 8
working_set = 2MiB
max_hit = 0.92
mlp = 2.0

[phase.1]
instructions = 5e8
)";

TEST(ParserTest, ParsesSample)
{
    PhaseProgram prog = parsePhaseProgram(std::string(kSample));
    EXPECT_EQ(prog.name, "mybench");
    EXPECT_FALSE(prog.loop);
    ASSERT_EQ(prog.phases.size(), 2u);
    EXPECT_EQ(prog.phases[0].name, "stage-a");
    EXPECT_DOUBLE_EQ(prog.phases[0].instructions, 1.2e9);
    EXPECT_DOUBLE_EQ(prog.phases[0].cpiBase, 0.9);
    EXPECT_DOUBLE_EQ(prog.phases[0].llcApki, 8.0);
    EXPECT_DOUBLE_EQ(prog.phases[0].workingSet, 2.0 * 1024 * 1024);
    EXPECT_DOUBLE_EQ(prog.phases[0].maxHitRatio, 0.92);
    EXPECT_DOUBLE_EQ(prog.phases[0].mlp, 2.0);
    // Defaults applied to the sparse second phase.
    EXPECT_EQ(prog.phases[1].name, "phase-1");
    EXPECT_DOUBLE_EQ(prog.phases[1].cpiBase, 1.0);
    EXPECT_DOUBLE_EQ(prog.phases[1].mlp, 4.0);
    EXPECT_TRUE(prog.valid());
}

TEST(ParserTest, ParsedProgramIsExecutable)
{
    PhaseProgram prog = parsePhaseProgram(std::string(kSample));
    Task task(&prog, Rng(1));
    task.retire(task.remainingInPhase());
    EXPECT_EQ(task.phaseIndex(), 1u);
    task.retire(task.remainingInPhase());
    EXPECT_TRUE(task.finished());
}

TEST(ParserTest, LoopingProgram)
{
    PhaseProgram prog = parsePhaseProgram(
        "[program]\nname = bg\nloop = yes\n"
        "[phase.0]\ninstructions = 1e9\n");
    EXPECT_TRUE(prog.loop);
}

TEST(ParserTest, RoundTripsThroughFormat)
{
    PhaseProgram prog = parsePhaseProgram(std::string(kSample));
    std::string text = formatPhaseProgram(prog);
    PhaseProgram again = parsePhaseProgram(text);
    EXPECT_EQ(again.name, prog.name);
    ASSERT_EQ(again.phases.size(), prog.phases.size());
    for (size_t i = 0; i < prog.phases.size(); ++i) {
        EXPECT_EQ(again.phases[i].name, prog.phases[i].name);
        EXPECT_DOUBLE_EQ(again.phases[i].instructions,
                         prog.phases[i].instructions);
        EXPECT_DOUBLE_EQ(again.phases[i].workingSet,
                         prog.phases[i].workingSet);
        EXPECT_DOUBLE_EQ(again.phases[i].mlp, prog.phases[i].mlp);
    }
}

TEST(ParserDeathTest, MissingNameIsFatal)
{
    EXPECT_EXIT(parsePhaseProgram(
                    std::string("[phase.0]\ninstructions = 1e9\n")),
                testing::ExitedWithCode(1), "name");
}

TEST(ParserDeathTest, NoPhasesIsFatal)
{
    EXPECT_EXIT(parsePhaseProgram(std::string("[program]\nname = x\n")),
                testing::ExitedWithCode(1), "no phases");
}

TEST(ParserDeathTest, PhaseGapIsFatal)
{
    EXPECT_EXIT(parsePhaseProgram(std::string(
                    "[program]\nname = x\n"
                    "[phase.0]\ninstructions = 1e9\n"
                    "[phase.2]\ninstructions = 1e9\n")),
                testing::ExitedWithCode(1), "missing");
}

TEST(ParserDeathTest, BadValuesAreFatal)
{
    EXPECT_EXIT(parsePhaseProgram(std::string(
                    "[program]\nname = x\n"
                    "[phase.0]\ninstructions = -5\n")),
                testing::ExitedWithCode(1), "positive");
    EXPECT_EXIT(parsePhaseProgram(std::string(
                    "[program]\nname = x\n"
                    "[phase.0]\ninstructions = 1e9\nmax_hit = 1.5\n")),
                testing::ExitedWithCode(1), "max_hit");
}

} // namespace
} // namespace dirigent::workload
