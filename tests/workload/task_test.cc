/**
 * @file
 * Unit tests for Task execution state: phase walking, completion,
 * looping, and per-instance randomness.
 */

#include <gtest/gtest.h>

#include "common/random.h"
#include "workload/task.h"

namespace dirigent::workload {
namespace {

PhaseProgram
twoPhaseProgram(bool loop = false, double jitter = 0.0)
{
    PhaseProgram prog;
    prog.name = "two-phase";
    prog.loop = loop;
    Phase a;
    a.name = "a";
    a.instructions = 100.0;
    a.instrJitterSigma = jitter;
    Phase b;
    b.name = "b";
    b.instructions = 50.0;
    b.instrJitterSigma = jitter;
    prog.phases = {a, b};
    return prog;
}

TEST(TaskTest, StartsAtFirstPhase)
{
    auto prog = twoPhaseProgram();
    Task task(&prog, Rng(1));
    EXPECT_EQ(task.phaseIndex(), 0u);
    EXPECT_FALSE(task.finished());
    EXPECT_DOUBLE_EQ(task.remainingInPhase(), 100.0);
    EXPECT_DOUBLE_EQ(task.retired(), 0.0);
}

TEST(TaskTest, RetireWithinPhase)
{
    auto prog = twoPhaseProgram();
    Task task(&prog, Rng(1));
    task.retire(30.0);
    EXPECT_EQ(task.phaseIndex(), 0u);
    EXPECT_DOUBLE_EQ(task.remainingInPhase(), 70.0);
    EXPECT_DOUBLE_EQ(task.retired(), 30.0);
}

TEST(TaskTest, PhaseBoundaryAdvances)
{
    auto prog = twoPhaseProgram();
    Task task(&prog, Rng(1));
    task.retire(100.0);
    EXPECT_EQ(task.phaseIndex(), 1u);
    EXPECT_DOUBLE_EQ(task.remainingInPhase(), 50.0);
}

TEST(TaskTest, CompletionLatches)
{
    auto prog = twoPhaseProgram();
    Task task(&prog, Rng(1));
    task.retire(100.0);
    task.retire(50.0);
    EXPECT_TRUE(task.finished());
    EXPECT_DOUBLE_EQ(task.retired(), 150.0);
    EXPECT_DOUBLE_EQ(task.remainingInPhase(), 0.0);
}

TEST(TaskTest, LoopingProgramNeverFinishes)
{
    auto prog = twoPhaseProgram(/*loop=*/true);
    Task task(&prog, Rng(1));
    for (int i = 0; i < 4; ++i) {
        task.retire(task.remainingInPhase());
        EXPECT_FALSE(task.finished());
    }
    EXPECT_EQ(task.loopsCompleted(), 2u);
    EXPECT_EQ(task.phaseIndex(), 0u);
}

TEST(TaskDeathTest, RetirePastBoundaryPanics)
{
    auto prog = twoPhaseProgram();
    Task task(&prog, Rng(1));
    EXPECT_DEATH(task.retire(150.0), "boundary");
}

TEST(TaskDeathTest, RetireIntoFinishedPanics)
{
    auto prog = twoPhaseProgram();
    Task task(&prog, Rng(1));
    task.retire(100.0);
    task.retire(50.0);
    EXPECT_DEATH(task.retire(1.0), "finished");
}

TEST(TaskDeathTest, CurrentPhaseOfFinishedPanics)
{
    auto prog = twoPhaseProgram();
    Task task(&prog, Rng(1));
    task.retire(100.0);
    task.retire(50.0);
    EXPECT_DEATH(task.currentPhase(), "finished");
}

TEST(TaskTest, InstructionJitterVariesPerInstance)
{
    auto prog = twoPhaseProgram(false, 0.1);
    Task t1(&prog, Rng(1));
    Task t2(&prog, Rng(2));
    // Jittered targets almost surely differ between instances.
    EXPECT_NE(t1.remainingInPhase(), t2.remainingInPhase());
    // And stay within a plausible range of the nominal count.
    EXPECT_GT(t1.remainingInPhase(), 50.0);
    EXPECT_LT(t1.remainingInPhase(), 200.0);
}

TEST(TaskTest, SameSeedSameJitter)
{
    auto prog = twoPhaseProgram(false, 0.1);
    Task t1(&prog, Rng(7));
    Task t2(&prog, Rng(7));
    EXPECT_DOUBLE_EQ(t1.remainingInPhase(), t2.remainingInPhase());
}

TEST(TaskTest, CpiJitterIsPositiveAndNearOne)
{
    auto prog = twoPhaseProgram();
    prog.phases[0].cpiJitterSigma = 0.05;
    Task task(&prog, Rng(3));
    for (int i = 0; i < 100; ++i) {
        double j = task.sampleCpiJitter();
        EXPECT_GT(j, 0.5);
        EXPECT_LT(j, 2.0);
    }
}

TEST(TaskTest, NoCpiJitterWhenSigmaZero)
{
    auto prog = twoPhaseProgram();
    prog.phases[0].cpiJitterSigma = 0.0;
    Task task(&prog, Rng(3));
    EXPECT_DOUBLE_EQ(task.sampleCpiJitter(), 1.0);
}

TEST(TaskDeathTest, NullProgramPanics)
{
    EXPECT_DEATH(Task(nullptr, Rng(1)), "program");
}

} // namespace
} // namespace dirigent::workload
