/**
 * @file
 * Robustness tests for the workload parser: malformed INI input must
 * produce a clean fatal() (exit code 1 with a diagnostic), never a
 * crash, hang, or silently bogus program. The last section runs a
 * seeded mutation fuzzer over a known-good definition.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <string>
#include <sys/wait.h>

#include "common/random.h"
#include "workload/parser.h"

namespace dirigent::workload {
namespace {

const char *kGood = R"(
[program]
name = mybench
loop = false

[phase.0]
name = stage-a
instructions = 1.2e9
cpi = 0.9
apki = 8
working_set = 2MiB
locality = 3
max_hit = 0.92
cpi_jitter = 0.02
instr_jitter = 0.01
mlp = 2.0

[phase.1]
instructions = 5e8
)";

TEST(ParserFuzzDeathTest, UnterminatedSectionIsFatal)
{
    EXPECT_EXIT(parsePhaseProgram(std::string(
                    "[program\nname = x\n[phase.0]\ninstructions = 1\n")),
                testing::ExitedWithCode(1), "unterminated section");
}

TEST(ParserFuzzDeathTest, MissingEqualsIsFatal)
{
    EXPECT_EXIT(parsePhaseProgram(std::string(
                    "[program]\nname x\n[phase.0]\ninstructions = 1\n")),
                testing::ExitedWithCode(1), "expected 'key = value'");
}

TEST(ParserFuzzDeathTest, EmptyKeyIsFatal)
{
    EXPECT_EXIT(parsePhaseProgram(std::string(
                    "[program]\n= x\n[phase.0]\ninstructions = 1\n")),
                testing::ExitedWithCode(1), "empty key");
}

TEST(ParserFuzzDeathTest, NonNumericInstructionsIsFatal)
{
    EXPECT_EXIT(parsePhaseProgram(std::string(
                    "[program]\nname = x\n"
                    "[phase.0]\ninstructions = lots\n")),
                testing::ExitedWithCode(1), "not a number");
}

TEST(ParserFuzzDeathTest, BadWorkingSetUnitIsFatal)
{
    EXPECT_EXIT(parsePhaseProgram(std::string(
                    "[program]\nname = x\n"
                    "[phase.0]\ninstructions = 1e9\n"
                    "working_set = 2floppies\n")),
                testing::ExitedWithCode(1), "byte quantity");
}

TEST(ParserFuzzDeathTest, BadBoolIsFatal)
{
    EXPECT_EXIT(parsePhaseProgram(std::string(
                    "[program]\nname = x\nloop = sometimes\n"
                    "[phase.0]\ninstructions = 1e9\n")),
                testing::ExitedWithCode(1), "not a boolean");
}

// strtod() happily parses "nan" and "inf"; the parser must not let
// them poison the simulation.
TEST(ParserFuzzDeathTest, NanInstructionsIsFatal)
{
    EXPECT_EXIT(parsePhaseProgram(std::string(
                    "[program]\nname = x\n"
                    "[phase.0]\ninstructions = nan\n")),
                testing::ExitedWithCode(1), "finite");
}

TEST(ParserFuzzDeathTest, InfCpiIsFatal)
{
    EXPECT_EXIT(parsePhaseProgram(std::string(
                    "[program]\nname = x\n"
                    "[phase.0]\ninstructions = 1e9\ncpi = inf\n")),
                testing::ExitedWithCode(1), "finite");
}

TEST(ParserFuzzDeathTest, NegativeWorkingSetIsFatal)
{
    EXPECT_EXIT(parsePhaseProgram(std::string(
                    "[program]\nname = x\n"
                    "[phase.0]\ninstructions = 1e9\n"
                    "working_set = -2MiB\n")),
                testing::ExitedWithCode(1), "invalid parameters");
}

TEST(ParserFuzzDeathTest, NegativeJitterIsFatal)
{
    EXPECT_EXIT(parsePhaseProgram(std::string(
                    "[program]\nname = x\n"
                    "[phase.0]\ninstructions = 1e9\n"
                    "cpi_jitter = -0.5\n")),
                testing::ExitedWithCode(1), "invalid parameters");
}

TEST(ParserFuzzTest, DuplicateKeysLastValueWins)
{
    PhaseProgram prog = parsePhaseProgram(std::string(
        "[program]\nname = first\nname = second\n"
        "[phase.0]\ninstructions = 1e9\ninstructions = 2e9\n"));
    EXPECT_EQ(prog.name, "second");
    ASSERT_EQ(prog.phases.size(), 1u);
    EXPECT_DOUBLE_EQ(prog.phases[0].instructions, 2e9);
}

TEST(ParserFuzzTest, CommentsAndBlankLinesIgnored)
{
    PhaseProgram prog = parsePhaseProgram(std::string(
        "# leading comment\n\n[program]\nname = x ; trailing\n\n"
        "[phase.0]\ninstructions = 1e9 # why not\n"));
    EXPECT_EQ(prog.name, "x");
    EXPECT_DOUBLE_EQ(prog.phases[0].instructions, 1e9);
}

/** Accepts a clean exit with code 0 (parsed) or 1 (fatal diagnostic). */
struct CleanExit
{
    bool
    operator()(int status) const
    {
        return WIFEXITED(status) && (WEXITSTATUS(status) == 0 ||
                                     WEXITSTATUS(status) == 1);
    }
};

/** Apply @p count random byte-level mutations to @p text. */
std::string
mutate(std::string text, Rng &rng, int count)
{
    static const char pool[] = "[]=.#;\n \t0123456789eE+-abcxyz";
    for (int i = 0; i < count && !text.empty(); ++i) {
        size_t pos = rng.below(text.size());
        switch (rng.below(3)) {
          case 0: // overwrite
            text[pos] = pool[rng.below(sizeof(pool) - 1)];
            break;
          case 1: // insert
            text.insert(pos, 1, pool[rng.below(sizeof(pool) - 1)]);
            break;
          default: // delete
            text.erase(pos, 1);
            break;
        }
    }
    return text;
}

// The parser must terminate cleanly on any mutation of a valid file:
// either a parsed program (exit 0 here) or fatal()'s exit 1 — never a
// signal (SIGSEGV/SIGABRT) or a hang (the death test would time out).
TEST(ParserFuzzDeathTest, MutatedInputsNeverCrash)
{
    Rng rng(0x5eed);
    for (int round = 0; round < 40; ++round) {
        std::string text = mutate(kGood, rng, 1 + int(rng.below(8)));
        EXPECT_EXIT(
            {
                parsePhaseProgram(text);
                std::exit(0);
            },
            CleanExit(), "")
            << "mutated input:\n"
            << text;
    }
}

// Hostile inputs built from scratch, not by mutation.
TEST(ParserFuzzDeathTest, HostileInputsNeverCrash)
{
    const char *hostile[] = {
        "",
        "\n\n\n",
        "[]",
        "[program]",
        "[program]\nname =\n",
        "[phase.0]\n[phase.0]\n",
        "====",
        "[program]\nname = x\n[phase.18446744073709551615]\n"
        "instructions = 1\n",
        "[program]\nname = x\n[phase.-1]\ninstructions = 1\n",
        "[program]\nname = x\n[phase.0]\ninstructions = 1e400\n",
        "[program]\nname = x\n[phase.0]\ninstructions = 0x1p99\n",
    };
    for (const char *text : hostile) {
        EXPECT_EXIT(
            {
                parsePhaseProgram(std::string(text));
                std::exit(0);
            },
            CleanExit(), "")
            << "hostile input:\n"
            << text;
    }
}

} // namespace
} // namespace dirigent::workload
