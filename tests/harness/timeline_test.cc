/**
 * @file
 * Unit tests for the time-series probe recorder.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/timeline.h"

namespace dirigent::harness {
namespace {

class NullComponent : public sim::Component
{
  public:
    void advance(Time, Time) override {}
};

class TimelineTest : public testing::Test
{
  protected:
    TimelineTest() : engine_(root_, Time::us(100.0)) {}

    NullComponent root_;
    sim::Engine engine_;
};

TEST_F(TimelineTest, SamplesAtCadence)
{
    Timeline timeline(engine_, Time::ms(1.0));
    int counter = 0;
    timeline.addSeries("counter", [&] { return double(++counter); });
    timeline.start();
    engine_.runUntil(Time::ms(5.5));
    EXPECT_EQ(timeline.size(), 5u);
    EXPECT_DOUBLE_EQ(timeline.times()[0], 1e-3);
    EXPECT_DOUBLE_EQ(timeline.times()[4], 5e-3);
    EXPECT_DOUBLE_EQ(timeline.samples()[4][0], 5.0);
}

TEST_F(TimelineTest, MultipleSeriesAlign)
{
    Timeline timeline(engine_, Time::ms(1.0));
    timeline.addSeries("a", [] { return 1.0; });
    timeline.addSeries("b", [&] { return engine_.now().ms(); });
    timeline.start();
    engine_.runUntil(Time::ms(3.0));
    ASSERT_EQ(timeline.size(), 3u);
    EXPECT_EQ(timeline.seriesNames(),
              (std::vector<std::string>{"a", "b"}));
    EXPECT_DOUBLE_EQ(timeline.samples()[1][0], 1.0);
    EXPECT_DOUBLE_EQ(timeline.samples()[1][1], 2.0);
}

TEST_F(TimelineTest, StopFreezesData)
{
    Timeline timeline(engine_, Time::ms(1.0));
    timeline.addSeries("x", [] { return 0.0; });
    timeline.start();
    engine_.runUntil(Time::ms(2.5));
    timeline.stop();
    engine_.runUntil(Time::ms(10.0));
    EXPECT_EQ(timeline.size(), 2u);
}

TEST_F(TimelineTest, CsvOutput)
{
    Timeline timeline(engine_, Time::ms(1.0));
    timeline.addSeries("value", [] { return 42.0; });
    timeline.start();
    engine_.runUntil(Time::ms(2.0));
    std::ostringstream os;
    timeline.writeCsv(os);
    std::string out = os.str();
    EXPECT_NE(out.find("time_s,value"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    // Header + 2 rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

TEST_F(TimelineTest, DestructorCancelsCleanly)
{
    {
        Timeline timeline(engine_, Time::ms(1.0));
        timeline.addSeries("x", [] { return 0.0; });
        timeline.start();
    }
    engine_.runUntil(Time::ms(5.0)); // no dangling event fires
    SUCCEED();
}

TEST_F(TimelineTest, StartIsIdempotent)
{
    Timeline timeline(engine_, Time::ms(1.0));
    timeline.addSeries("x", [] { return 0.0; });
    timeline.start();
    timeline.start();
    engine_.runUntil(Time::ms(1.0));
    EXPECT_EQ(timeline.size(), 1u);
}

TEST_F(TimelineTest, RejectsBadUsage)
{
    Timeline timeline(engine_, Time::ms(1.0));
    EXPECT_DEATH(timeline.start(), "no series");
    timeline.addSeries("x", [] { return 0.0; });
    timeline.start();
    EXPECT_DEATH(timeline.addSeries("y", [] { return 0.0; }),
                 "while running");
}

} // namespace
} // namespace dirigent::harness
