/**
 * @file
 * Tests of the reservation-scheduler model (paper Fig. 2): higher task
 * variance ⇒ longer reservations ⇒ lower utilization.
 */

#include <gtest/gtest.h>

#include "harness/reservation.h"

namespace dirigent::harness {
namespace {

TEST(ReservationTest, ZeroVarianceIsFullyUtilized)
{
    ReservationConfig cfg;
    cfg.meanDuration = 1.0;
    cfg.stdDuration = 0.0;
    auto res = simulateReservation(cfg);
    EXPECT_NEAR(res.reservation, 1.0, 1e-12);
    EXPECT_NEAR(res.utilization, 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(res.overrunRate, 0.0);
}

TEST(ReservationTest, HighVarianceWastesCapacity)
{
    // The paper's type A (high variance) vs type B (low variance).
    ReservationConfig typeA;
    typeA.meanDuration = 1.0;
    typeA.stdDuration = 0.4;
    ReservationConfig typeB;
    typeB.meanDuration = 1.0;
    typeB.stdDuration = 0.05;

    auto a = simulateReservation(typeA);
    auto b = simulateReservation(typeB);
    EXPECT_GT(a.reservation, b.reservation);
    EXPECT_LT(a.utilization, b.utilization - 0.2);
    EXPECT_GT(b.utilization, 0.85);
}

TEST(ReservationTest, UtilizationDecreasesMonotonicallyWithVariance)
{
    double prev = 2.0;
    for (double std : {0.05, 0.1, 0.2, 0.3, 0.5}) {
        ReservationConfig cfg;
        cfg.stdDuration = std;
        auto res = simulateReservation(cfg);
        EXPECT_LT(res.utilization, prev) << "std " << std;
        prev = res.utilization;
    }
}

TEST(ReservationTest, OverrunRateNearQuantile)
{
    ReservationConfig cfg;
    cfg.stdDuration = 0.3;
    cfg.reservationQuantile = 0.95;
    cfg.tasks = 20000;
    cfg.calibrationTasks = 20000;
    auto res = simulateReservation(cfg);
    EXPECT_NEAR(res.overrunRate, 0.05, 0.01);
}

TEST(ReservationTest, Deterministic)
{
    ReservationConfig cfg;
    cfg.stdDuration = 0.2;
    auto a = simulateReservation(cfg);
    auto b = simulateReservation(cfg);
    EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
    cfg.seed += 1;
    auto c = simulateReservation(cfg);
    EXPECT_NE(a.utilization, c.utilization);
}

TEST(ReservationOnSamplesTest, TightSamplesPackTightly)
{
    std::vector<double> tight(100, 1.0);
    for (size_t i = 0; i < tight.size(); ++i)
        tight[i] += 0.001 * double(i % 7);
    auto res = simulateReservationOnSamples(tight);
    EXPECT_GT(res.utilization, 0.99);
}

TEST(ReservationOnSamplesTest, SpreadSamplesWaste)
{
    std::vector<double> spread;
    for (int i = 0; i < 200; ++i)
        spread.push_back(1.0 + 0.01 * double(i % 80));
    auto res = simulateReservationOnSamples(spread);
    EXPECT_LT(res.utilization, 0.95);
    EXPECT_GT(res.reservation, 1.5);
}

TEST(ReservationOnSamplesDeathTest, NeedsSamples)
{
    EXPECT_DEATH(simulateReservationOnSamples({1.0, 2.0}), "samples");
}

} // namespace
} // namespace dirigent::harness
