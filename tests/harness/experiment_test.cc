/**
 * @file
 * Tests of the ExperimentRunner API surface: run options (static
 * partitions, bandwidth caps, reactive attachment, execution
 * overrides), custom benchmarks through the harness, heterogeneous
 * mixes, and result bookkeeping.
 */

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "workload/benchmarks.h"
#include "workload/mix.h"
#include "workload/parser.h"

namespace dirigent::harness {
namespace {

HarnessConfig
fastConfig()
{
    HarnessConfig cfg;
    cfg.executions = 12;
    cfg.warmup = 2;
    cfg.seed = 4242;
    return cfg;
}

class ExperimentApiTest : public testing::Test
{
  protected:
    ExperimentApiTest() : runner_(fastConfig()) {}

    ExperimentRunner runner_;
};

TEST_F(ExperimentApiTest, ExecutionOverrideShortensRun)
{
    auto mix = workload::makeMix({"fluidanimate"},
                                 workload::BgSpec::single("pca"));
    RunOptions opts;
    opts.executions = 5;
    auto res = runner_.run(mix, core::Scheme::Baseline, {}, opts);
    EXPECT_EQ(res.total, 5u);
    EXPECT_EQ(res.perFgDurations[0].size(), 5u);
}

TEST_F(ExperimentApiTest, StaticPartitionOptionApplies)
{
    auto mix = workload::makeMix({"streamcluster"},
                                 workload::BgSpec::single("pca"));
    RunOptions few, many;
    few.staticFgWays = 2;
    many.staticFgWays = 10;
    auto a = runner_.run(mix, core::Scheme::StaticBoth, {}, few);
    auto b = runner_.run(mix, core::Scheme::StaticBoth, {}, many);
    EXPECT_EQ(a.finalFgWays, 2u);
    EXPECT_EQ(b.finalFgWays, 10u);
    // More FG ways → faster FG (streamcluster is cache hungry).
    EXPECT_LT(b.fgDurationMean(), a.fgDurationMean());
}

TEST_F(ExperimentApiTest, BandwidthCapThrottlesBg)
{
    auto mix = workload::makeMix({"ferret"},
                                 workload::BgSpec::single("bwaves"));
    auto free = runner_.run(mix, core::Scheme::Baseline, {});
    RunOptions opts;
    opts.bgBandwidthCap = 0.3e9;
    auto capped = runner_.run(mix, core::Scheme::Baseline, {}, opts);
    // Capped BG is slower; the FG benefits.
    EXPECT_LT(bgThroughputRatio(capped, free), 0.8);
    EXPECT_LT(capped.fgDurationMean(), free.fgDurationMean());
}

TEST_F(ExperimentApiTest, ReactiveOptionControls)
{
    auto mix = workload::makeMix({"ferret"},
                                 workload::BgSpec::single("rs"));
    auto baseline = runner_.run(mix, core::Scheme::Baseline, {});
    auto deadlines = runner_.deadlinesFromBaseline(baseline);
    applyDeadlines(baseline, deadlines);
    RunOptions opts;
    opts.attachReactive = true;
    auto reactive =
        runner_.run(mix, core::Scheme::Baseline, deadlines, opts);
    // The reactive ladder does *something*: its outcome differs from
    // free contention (same seed, same workload stream).
    EXPECT_NE(reactive.bgInstructions, baseline.bgInstructions);
}

TEST_F(ExperimentApiTest, HeterogeneousFgMix)
{
    auto mix = workload::makeMix({"ferret", "raytrace"},
                                 workload::BgSpec::single("bwaves"));
    EXPECT_EQ(mix.name, "ferret+raytrace bwaves");
    auto baseline = runner_.run(mix, core::Scheme::Baseline, {});
    auto deadlines = runner_.deadlinesFromBaseline(baseline);
    EXPECT_EQ(deadlines.size(), 2u); // one per benchmark
    auto res = runner_.run(mix, core::Scheme::Dirigent, deadlines);
    EXPECT_GE(res.fgSuccessRatio(), 0.85);
    // The two FG tasks have distinct duration scales.
    EXPECT_GT(res.perFgDurations[0][0],
              res.perFgDurations[1][0] * 1.2);
}

TEST_F(ExperimentApiTest, CustomBenchmarkThroughHarness)
{
    // Register a user-defined FG workload and run the full pipeline.
    if (!workload::BenchmarkLibrary::instance().has("exp-custom")) {
        workload::PhaseProgram prog = workload::parsePhaseProgram(
            std::string("[program]\nname = exp-custom\n"
                        "[phase.0]\ninstructions = 0.6e9\ncpi = 0.9\n"
                        "apki = 6\nworking_set = 2MiB\nmlp = 2\n"
                        "[phase.1]\ninstructions = 0.4e9\ncpi = 1.1\n"
                        "apki = 3\nworking_set = 1MiB\nmlp = 3\n"));
        workload::BenchmarkLibrary::registerCustom(
            "exp-custom", "test workload", prog);
    }
    auto mix = workload::makeMix({"exp-custom"},
                                 workload::BgSpec::single("bwaves"));
    auto baseline = runner_.run(mix, core::Scheme::Baseline, {});
    auto deadlines = runner_.deadlinesFromBaseline(baseline);
    auto res = runner_.run(mix, core::Scheme::Dirigent, deadlines);
    EXPECT_GE(res.fgSuccessRatio(), 0.9);
    EXPECT_GT(res.fgDurationMean(), 0.3);
}

TEST_F(ExperimentApiTest, ResultBookkeepingConsistent)
{
    auto mix = workload::makeMix({"raytrace"},
                                 workload::BgSpec::single("pca"));
    auto res = runner_.run(mix, core::Scheme::Baseline, {});
    EXPECT_EQ(res.mixName, mix.name);
    EXPECT_EQ(res.fgBenchmarks, mix.fg);
    EXPECT_GT(res.span.sec(), 0.0);
    EXPECT_GT(res.bgInstructions, 0.0);
    EXPECT_GT(res.fgInstructions, 0.0);
    EXPECT_GT(res.totalMisses, res.fgMisses);
    // No deadlines supplied: nothing counted on-time.
    EXPECT_EQ(res.onTime, 0u);
    EXPECT_EQ(res.total, 12u);
}

TEST_F(ExperimentApiTest, ObserverDoesNotPerturbBaseline)
{
    auto mix = workload::makeMix({"fluidanimate"},
                                 workload::BgSpec::single("rs"));
    auto plain = runner_.run(mix, core::Scheme::Baseline, {});
    RunOptions opts;
    opts.attachObserver = true;
    auto observed =
        runner_.run(mix, core::Scheme::Baseline, {}, opts);
    // The observer steals runtime overhead from a BG core but takes no
    // control actions: FG behaviour matches closely.
    EXPECT_NEAR(observed.fgDurationMean(), plain.fgDurationMean(),
                0.02 * plain.fgDurationMean());
    EXPECT_FALSE(observed.midpointSamples.empty());
    EXPECT_TRUE(plain.midpointSamples.empty());
}

TEST(ExperimentDeathTest, TooManyFgIsFatal)
{
    ExperimentRunner runner(fastConfig());
    std::vector<std::string> fgs(6, "ferret");
    auto mix = workload::makeMix(fgs, workload::BgSpec::single("pca"));
    EXPECT_EXIT(runner.run(mix, core::Scheme::Baseline, {}),
                testing::ExitedWithCode(1), "FG cores");
}

TEST(ExperimentDeathTest, ConflictingOptionsNameTheOptions)
{
    ExperimentRunner runner(fastConfig());
    auto mix = workload::makeMix({"ferret"},
                                 workload::BgSpec::single("rs"));
    // The reactive ablation replaces the Dirigent runtime, so both
    // conflicts name the options (or scheme) involved.
    RunOptions reactive;
    reactive.attachReactive = true;
    EXPECT_EXIT(runner.run(mix, core::Scheme::Dirigent, {}, reactive),
                testing::ExitedWithCode(1),
                "attachReactive conflicts with scheme Dirigent");
    RunOptions both;
    both.attachReactive = true;
    both.attachCoarseOnly = true;
    EXPECT_EXIT(runner.run(mix, core::Scheme::Baseline, {}, both),
                testing::ExitedWithCode(1),
                "attachReactive conflicts with "
                "RunOptions.attachCoarseOnly");
}

} // namespace
} // namespace dirigent::harness
