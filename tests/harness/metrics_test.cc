/**
 * @file
 * Tests of the evaluation metrics: success ratios, throughput
 * normalization, σ ratios, deadline re-application, and summaries.
 */

#include <gtest/gtest.h>

#include "harness/metrics.h"

namespace dirigent::harness {
namespace {

SchemeRunResult
makeResult(core::Scheme scheme, std::vector<double> durations,
           double bgInstr, double spanSec)
{
    SchemeRunResult r;
    r.mixName = "test";
    r.scheme = scheme;
    r.fgBenchmarks = {"ferret"};
    r.perFgDurations = {std::move(durations)};
    r.bgInstructions = bgInstr;
    r.span = Time::sec(spanSec);
    r.total = r.perFgDurations[0].size();
    return r;
}

TEST(SchemeRunResultTest, SuccessRatio)
{
    SchemeRunResult r = makeResult(core::Scheme::Baseline,
                                   {1.0, 1.0, 1.0, 1.0}, 1e9, 10.0);
    r.onTime = 3;
    EXPECT_DOUBLE_EQ(r.fgSuccessRatio(), 0.75);
}

TEST(SchemeRunResultTest, EmptyResultSucceedsVacuously)
{
    SchemeRunResult r;
    EXPECT_DOUBLE_EQ(r.fgSuccessRatio(), 1.0);
    EXPECT_DOUBLE_EQ(r.fgDurationMean(), 0.0);
    EXPECT_DOUBLE_EQ(r.bgThroughput(), 0.0);
    EXPECT_DOUBLE_EQ(r.predictionError(), 0.0);
}

TEST(SchemeRunResultTest, PooledMoments)
{
    SchemeRunResult r;
    r.fgBenchmarks = {"a", "b"};
    r.perFgDurations = {{2.0, 4.0}, {4.0, 4.0, 5.0, 5.0, 7.0, 9.0}};
    EXPECT_DOUBLE_EQ(r.fgDurationMean(), 5.0);
    EXPECT_DOUBLE_EQ(r.fgDurationStd(), 2.0);
    EXPECT_EQ(r.pooledDurations().size(), 8u);
}

TEST(SchemeRunResultTest, BgThroughputIsRate)
{
    SchemeRunResult r = makeResult(core::Scheme::Baseline, {1.0}, 5e9,
                                   10.0);
    EXPECT_DOUBLE_EQ(r.bgThroughput(), 5e8);
}

TEST(SchemeRunResultTest, Mpki)
{
    SchemeRunResult r;
    r.fgInstructions = 2e9;
    r.fgMisses = 4e6;
    EXPECT_DOUBLE_EQ(r.fgMpki(), 2.0);
}

TEST(SchemeRunResultTest, PredictionErrorIsEq3)
{
    SchemeRunResult r;
    r.midpointSamples = {
        {0, Time::sec(1.1), Time::sec(1.0)},  // +10%
        {1, Time::sec(0.95), Time::sec(1.0)}, // −5%
    };
    EXPECT_NEAR(r.predictionError(), 0.075, 1e-12);
}

TEST(MetricsTest, BgThroughputRatio)
{
    auto baseline =
        makeResult(core::Scheme::Baseline, {1.0}, 10e9, 10.0);
    auto managed =
        makeResult(core::Scheme::Dirigent, {1.0}, 4.5e9, 5.0);
    EXPECT_DOUBLE_EQ(bgThroughputRatio(managed, baseline), 0.9);
}

TEST(MetricsTest, StdRatio)
{
    auto baseline = makeResult(core::Scheme::Baseline,
                               {1.0, 2.0, 3.0}, 1e9, 10.0);
    auto managed = makeResult(core::Scheme::Dirigent,
                              {1.9, 2.0, 2.1}, 1e9, 10.0);
    EXPECT_NEAR(stdRatio(managed, baseline), 0.1, 1e-9);
}

TEST(MetricsTest, ApplyDeadlinesRecounts)
{
    SchemeRunResult r;
    r.fgBenchmarks = {"ferret", "ferret"};
    r.perFgDurations = {{0.9, 1.1}, {1.0, 1.2}};
    std::map<std::string, Time> deadlines = {
        {"ferret", Time::sec(1.05)}};
    applyDeadlines(r, deadlines);
    EXPECT_EQ(r.total, 4u);
    EXPECT_EQ(r.onTime, 2u);
    EXPECT_DOUBLE_EQ(r.deadlines.at("ferret").sec(), 1.05);
}

TEST(MetricsDeathTest, ApplyDeadlinesNeedsBenchmark)
{
    SchemeRunResult r;
    r.fgBenchmarks = {"unknown"};
    r.perFgDurations = {{1.0}};
    std::map<std::string, Time> deadlines = {
        {"ferret", Time::sec(1.0)}};
    EXPECT_DEATH(applyDeadlines(r, deadlines), "no deadline");
}

TEST(SummaryTest, AggregatesAcrossMixes)
{
    // Two mixes × five schemes; only Baseline and Dirigent populated
    // distinctly, others cloned from Baseline.
    std::vector<std::vector<SchemeRunResult>> perMix;
    for (int mix = 0; mix < 2; ++mix) {
        std::vector<SchemeRunResult> results;
        auto baseline = makeResult(core::Scheme::Baseline,
                                   {1.0, 2.0, 3.0}, 10e9, 10.0);
        baseline.onTime = 2;
        for (core::Scheme s : core::allSchemes()) {
            auto r = baseline;
            r.scheme = s;
            if (s == core::Scheme::Dirigent) {
                r.perFgDurations = {{1.9, 2.0, 2.1}};
                r.bgInstructions = 9e9;
                r.onTime = 3;
            }
            results.push_back(std::move(r));
        }
        perMix.push_back(std::move(results));
    }
    auto summaries = summarizeSchemes(perMix);
    ASSERT_EQ(summaries.size(), 5u);
    EXPECT_EQ(summaries[0].scheme, core::Scheme::Baseline);
    EXPECT_NEAR(summaries[0].meanFgSuccess, 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(summaries[0].hmeanBgThroughput, 1.0, 1e-12);
    EXPECT_NEAR(summaries[4].meanFgSuccess, 1.0, 1e-12);
    EXPECT_NEAR(summaries[4].hmeanBgThroughput, 0.9, 1e-12);
    EXPECT_NEAR(summaries[4].meanStdRatio, 0.1, 1e-9);
}

TEST(SummaryDeathTest, RowCountChecked)
{
    std::vector<std::vector<SchemeRunResult>> perMix = {
        {SchemeRunResult{}, SchemeRunResult{}}};
    EXPECT_DEATH(summarizeSchemes(perMix), "scheme result");
}

} // namespace
} // namespace dirigent::harness
