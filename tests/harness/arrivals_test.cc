/**
 * @file
 * Tests of the open-loop arrival driver: queue semantics, idle
 * pausing, response-time accounting, and Little's-law sanity.
 */

#include <gtest/gtest.h>

#include "common/stats.h"
#include "harness/arrivals.h"
#include "workload/benchmarks.h"

namespace dirigent::harness {
namespace {

class ArrivalsTest : public testing::Test
{
  protected:
    ArrivalsTest()
    {
        mcfg_.noiseEventsPerSec = 0.0;
        mcfg_.seed = 13;
        machine_ = std::make_unique<machine::Machine>(mcfg_);
        engine_ =
            std::make_unique<sim::Engine>(*machine_, mcfg_.maxQuantum);
        const auto &lib = workload::BenchmarkLibrary::instance();
        machine::ProcessSpec fg;
        fg.name = "fluidanimate"; // ~0.47 s service time standalone
        fg.program = &lib.get("fluidanimate").program;
        fg.core = 0;
        fg.foreground = true;
        fgPid_ = machine_->spawnProcess(fg);
    }

    machine::MachineConfig mcfg_;
    std::unique_ptr<machine::Machine> machine_;
    std::unique_ptr<sim::Engine> engine_;
    machine::Pid fgPid_ = 0;
};

TEST_F(ArrivalsTest, IdleUntilFirstArrival)
{
    ArrivalDriver driver(*engine_, *machine_, fgPid_, Time::sec(2.0),
                         Rng(1));
    driver.start();
    engine_->runFor(Time::ms(50.0));
    // Before the first arrival (mean 2 s) nothing retires.
    if (driver.arrivals() == 0) {
        EXPECT_DOUBLE_EQ(machine_->readCounters(0).instructions, 0.0);
    }
}

TEST_F(ArrivalsTest, ServesRequestsAndRecordsLatency)
{
    // Light load: ~1 request per 1.5 s, service ~0.47 s.
    ArrivalDriver driver(*engine_, *machine_, fgPid_, Time::sec(1.5),
                         Rng(2));
    driver.start();
    engine_->runUntil(Time::sec(30.0));
    driver.stop();

    ASSERT_GE(driver.completions().size(), 10u);
    for (const auto &c : driver.completions()) {
        EXPECT_GE(c.started.sec(), c.arrived.sec());
        EXPECT_GT(c.finished.sec(), c.started.sec());
        // Service time ≈ standalone duration.
        EXPECT_NEAR(c.serviceTime().sec(), 0.47, 0.15);
    }
    // At light load most requests start immediately: median response
    // ≈ service time.
    auto responses = driver.responseTimes();
    EXPECT_NEAR(percentile(responses, 0.5), 0.47, 0.2);
}

TEST_F(ArrivalsTest, QueueingGrowsResponseTimes)
{
    // Load ρ ≈ 0.9: responses well above the bare service time.
    ArrivalDriver light(*engine_, *machine_, fgPid_, Time::sec(2.0),
                        Rng(3));
    light.start();
    engine_->runUntil(Time::sec(40.0));
    light.stop();
    double lightP95 = percentile(light.responseTimes(), 0.95);

    // Fresh setup at heavy load.
    machine::Machine machine2(mcfg_);
    sim::Engine engine2(machine2, mcfg_.maxQuantum);
    const auto &lib = workload::BenchmarkLibrary::instance();
    machine::ProcessSpec fg;
    fg.name = "fluidanimate";
    fg.program = &lib.get("fluidanimate").program;
    fg.core = 0;
    fg.foreground = true;
    machine::Pid pid2 = machine2.spawnProcess(fg);
    ArrivalDriver heavy(engine2, machine2, pid2, Time::sec(0.52),
                        Rng(3));
    heavy.start();
    engine2.runUntil(Time::sec(40.0));
    heavy.stop();
    double heavyP95 = percentile(heavy.responseTimes(), 0.95);

    EXPECT_GT(heavyP95, lightP95 * 1.3);
    EXPECT_GT(heavy.maxQueueDepth(), 0u);
}

TEST_F(ArrivalsTest, ThroughputMatchesArrivalRateUnderCapacity)
{
    // Under capacity, completions ≈ arrivals (Little's law sanity).
    ArrivalDriver driver(*engine_, *machine_, fgPid_, Time::sec(1.0),
                         Rng(4));
    driver.start();
    engine_->runUntil(Time::sec(60.0));
    driver.stop();
    EXPECT_NEAR(double(driver.completions().size()),
                double(driver.arrivals()), 4.0);
    EXPECT_NEAR(double(driver.arrivals()), 60.0, 20.0);
}

TEST_F(ArrivalsTest, StopCancelsFutureArrivals)
{
    ArrivalDriver driver(*engine_, *machine_, fgPid_, Time::ms(100.0),
                         Rng(5));
    driver.start();
    engine_->runUntil(Time::sec(2.0));
    uint64_t arrivals = driver.arrivals();
    driver.stop();
    engine_->runUntil(Time::sec(4.0));
    EXPECT_EQ(driver.arrivals(), arrivals);
}

TEST_F(ArrivalsTest, Validation)
{
    EXPECT_DEATH(ArrivalDriver(*engine_, *machine_, fgPid_, Time(),
                               Rng(1)),
                 "interarrival");
}

} // namespace
} // namespace dirigent::harness
