/**
 * @file
 * Tests of the report printers and environment overrides.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "harness/report.h"

namespace dirigent::harness {
namespace {

std::vector<std::vector<SchemeRunResult>>
sampleResults()
{
    std::vector<std::vector<SchemeRunResult>> perMix;
    std::vector<SchemeRunResult> row;
    for (core::Scheme s : core::allSchemes()) {
        SchemeRunResult r;
        r.mixName = "ferret rs";
        r.scheme = s;
        r.fgBenchmarks = {"ferret"};
        r.perFgDurations = {{1.0, 1.1, 1.2}};
        r.onTime = 2;
        r.total = 3;
        r.bgInstructions = 1e9;
        r.span = Time::sec(10.0);
        row.push_back(std::move(r));
    }
    perMix.push_back(std::move(row));
    return perMix;
}

TEST(ReportTest, ComparisonTableHasAllSchemes)
{
    std::ostringstream os;
    printSchemeComparison(os, sampleResults());
    std::string out = os.str();
    for (core::Scheme s : core::allSchemes())
        EXPECT_NE(out.find(core::schemeName(s)), std::string::npos);
    EXPECT_NE(out.find("ferret rs"), std::string::npos);
}

TEST(ReportTest, SummaryTablePrints)
{
    auto summaries = summarizeSchemes(sampleResults());
    std::ostringstream os;
    printSchemeSummary(os, summaries);
    EXPECT_NE(os.str().find("Dirigent"), std::string::npos);
    EXPECT_NE(os.str().find("FG success"), std::string::npos);
}

TEST(ReportTest, CsvHasHeaderAndRows)
{
    std::ostringstream os;
    printComparisonCsv(os, sampleResults());
    std::string out = os.str();
    EXPECT_NE(out.find("mix,scheme,fg_success"), std::string::npos);
    // Header + 5 scheme rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 6);
}

TEST(ReportTest, StdComparisonPrints)
{
    std::ostringstream os;
    printStdComparison(os, sampleResults());
    EXPECT_NE(os.str().find("ferret rs"), std::string::npos);
}

TEST(ReportTest, EnvExecutionsFallback)
{
    unsetenv("DIRIGENT_BENCH_EXECS");
    EXPECT_EQ(envExecutions(42), 42u);
    setenv("DIRIGENT_BENCH_EXECS", "17", 1);
    EXPECT_EQ(envExecutions(42), 17u);
    setenv("DIRIGENT_BENCH_EXECS", "junk", 1);
    EXPECT_EQ(envExecutions(42), 42u);
    unsetenv("DIRIGENT_BENCH_EXECS");
}

TEST(ReportTest, EnvSeedFallback)
{
    unsetenv("DIRIGENT_BENCH_SEED");
    EXPECT_EQ(envSeed(7), 7u);
    setenv("DIRIGENT_BENCH_SEED", "123", 1);
    EXPECT_EQ(envSeed(7), 123u);
    unsetenv("DIRIGENT_BENCH_SEED");
}

} // namespace
} // namespace dirigent::harness
