/**
 * @file
 * Determinism half of the chaos suite: a chaos cell replays
 * byte-identically from its (seed, plan) pair — injector streams and
 * all — and an empty fault plan is a provable no-op at the harness
 * level (golden traces bit-identical with and without the injection
 * machinery attached).
 */

#include <gtest/gtest.h>

#include "chaos_util.h"
#include "dirigent/trace.h"
#include "fault/injector.h"

namespace dirigent::chaos {
namespace {

constexpr uint64_t kReplaySeed = 0x5EED5A17;

/**
 * One full traced run. With @p viaConfig the plan travels through
 * HarnessConfig and the harness derives the injector seed itself (the
 * --faults CLI path); otherwise a caller-owned injector is attached.
 */
std::string
tracedRun(const fault::FaultPlan &plan, bool viaConfig,
          unsigned executions = 5)
{
    harness::HarnessConfig cfg = cellConfig(kReplaySeed, executions);
    if (viaConfig)
        cfg.faultPlan = plan;
    harness::ExperimentRunner runner(cfg);
    std::map<std::string, Time> deadlines = {
        {"ferret", Time::sec(2.0)}};

    core::GoldenTraceRecorder recorder;
    harness::RunOptions opts;
    opts.golden = &recorder;

    std::unique_ptr<fault::FaultInjector> faults;
    if (!viaConfig) {
        faults =
            std::make_unique<fault::FaultInjector>(plan, kReplaySeed);
        opts.faults = faults.get();
    }
    runner.run(chaosMix(), core::Scheme::Dirigent, deadlines, opts);
    return recorder.preciseText();
}

TEST(ChaosReplayTest, CellReplaysByteIdentically)
{
    fault::FaultPlan plan = everythingPlan().plan;
    std::string first = tracedRun(plan, false);
    std::string second = tracedRun(plan, false);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

TEST(ChaosReplayTest, HarnessBuiltInjectorReplaysByteIdentically)
{
    // The production path: the plan travels through HarnessConfig and
    // the harness derives the injector seed itself.
    fault::FaultPlan plan = everythingPlan().plan;
    std::string first = tracedRun(plan, true);
    std::string second = tracedRun(plan, true);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

TEST(ChaosReplayTest, SeedSaltSelectsADifferentFaultStream)
{
    fault::FaultPlan plan = everythingPlan().plan;
    std::string base = tracedRun(plan, false);
    plan.seedSalt ^= 0xABCDEF;
    std::string salted = tracedRun(plan, false);
    EXPECT_NE(base, salted);
}

TEST(ChaosReplayTest, FaultsActuallyPerturbTheRun)
{
    // Sanity for the no-op test below: a non-empty plan must change
    // the trace, otherwise "empty plan changes nothing" proves nothing.
    std::string faulty = tracedRun(everythingPlan().plan, false);
    std::string clean = tracedRun(fault::FaultPlan{}, false);
    EXPECT_NE(faulty, clean);
}

TEST(ChaosReplayTest, EmptyPlanIsAHarnessLevelNoOp)
{
    // Three ways to run fault-free: no injection machinery at all, an
    // attached empty-plan injector, and an empty plan through the
    // config. All traces must be byte-identical.
    harness::HarnessConfig cfg = cellConfig(kReplaySeed, 5);
    std::map<std::string, Time> deadlines = {
        {"ferret", Time::sec(2.0)}};

    auto bare = [&] {
        harness::ExperimentRunner runner(cfg);
        core::GoldenTraceRecorder recorder;
        harness::RunOptions opts;
        opts.golden = &recorder;
        runner.run(chaosMix(), core::Scheme::Dirigent, deadlines, opts);
        return recorder.preciseText();
    }();

    fault::FaultInjector empty(fault::FaultPlan{}, kReplaySeed);
    auto attached = [&] {
        harness::ExperimentRunner runner(cfg);
        core::GoldenTraceRecorder recorder;
        harness::RunOptions opts;
        opts.golden = &recorder;
        opts.faults = &empty;
        runner.run(chaosMix(), core::Scheme::Dirigent, deadlines, opts);
        return recorder.preciseText();
    }();

    ASSERT_FALSE(bare.empty());
    EXPECT_EQ(bare, attached);
    EXPECT_EQ(empty.stats().total(), 0u);
    EXPECT_EQ(bare, tracedRun(fault::FaultPlan{}, true));
}

} // namespace
} // namespace dirigent::chaos
