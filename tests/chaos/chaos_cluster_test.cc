/**
 * @file
 * Chaos cell for the cluster layer: inject a fault plan into ONE node
 * of a fleet (via the spec's [node<i>] faults= override) and assert
 * the blast radius is contained — the dispatcher never wedges, the
 * fleet still accounts for every request, every OTHER node's request
 * log is byte-identical to the fault-free run (calibration and
 * dispatch are fault-free by design, so one node's faults cannot
 * perturb its neighbours' traces), and the whole faulted run replays
 * byte-identically from (seed, plan, cluster spec).
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "chaos_util.h"
#include "cluster/spec.h"
#include "exec/executor.h"
#include "fault/plan.h"
#include "serve/driver.h"

namespace dirigent::chaos {
namespace {

constexpr uint64_t kSeed = 0xC1A05;

cluster::ClusterSpec
fleetSpec(const std::string &node1Faults = "")
{
    cluster::ClusterSpec spec;
    spec.name = "chaos-pair";
    spec.nodes = 2;
    spec.policy = cluster::DispatchPolicy::RoundRobin;
    spec.serve.arrivals.rate = 1.5;
    spec.serve.horizonSec = 10.0;
    spec.serve.warmupSec = 2.0;
    spec.serve.slos = {{0.99, 15.0}};
    if (!node1Faults.empty())
        spec.overrides[1].faults = node1Faults;
    return spec;
}

/** Write @p plan to a spec-loadable fault-plan file. */
std::string
writePlanFile(const ChaosPlan &plan)
{
    std::string path =
        testing::TempDir() + "chaos_cluster_" + plan.name + ".cfg";
    std::ofstream out(path, std::ios::trunc);
    out << fault::formatFaultPlan(plan.plan);
    return path;
}

exec::ClusterCellResult
runFleet(const cluster::ClusterSpec &spec, unsigned threads = 2)
{
    exec::ExecutorConfig ecfg;
    ecfg.threads = threads;
    ecfg.progress = false;
    exec::SweepExecutor executor(cellConfig(kSeed, 3), ecfg);
    return executor.runCluster(spec);
}

/** Precise (%.17g) request log of one node across its FG slots. */
std::string
nodeLog(const cluster::NodeResult &node)
{
    std::ostringstream out;
    for (const auto &slot : node.serving.perFgRequests)
        out << serve::formatRequestLog(slot, true);
    return out.str();
}

std::string
fleetLog(const exec::ClusterCellResult &cell)
{
    std::ostringstream out;
    out << formatFleetSummary(cell.fleet) << "\n";
    for (const auto &node : cell.nodes)
        out << "node" << node.index << "\n" << nodeLog(node);
    return out.str();
}

TEST(ChaosClusterTest, FaultedNodeDoesNotWedgeTheFleet)
{
    std::string plan = writePlanFile(everythingPlan());
    exec::ClusterCellResult cell = runFleet(fleetSpec(plan));

    // The run completed and every generated request is accounted for
    // (the accountant fatals on leaks, so reaching here with matching
    // totals IS the no-wedge verdict).
    EXPECT_GT(cell.fleet.generated, 0u);
    EXPECT_EQ(cell.fleet.arrivals, cell.fleet.generated);
    // The fleet verdict degrades gracefully: SLO evaluation still ran
    // over the merged distribution rather than aborting.
    ASSERT_EQ(cell.fleet.verdicts.size(), 1u);
    EXPECT_GT(cell.fleet.completed, 0u);
}

TEST(ChaosClusterTest, BlastRadiusIsConfinedToTheFaultedNode)
{
    exec::ClusterCellResult clean = runFleet(fleetSpec());
    for (const ChaosPlan &plan : allPlans(Intensity::Light)) {
        SCOPED_TRACE(plan.name);
        exec::ClusterCellResult faulted =
            runFleet(fleetSpec(writePlanFile(plan)));

        // Faults on node1 must not change what node1 was SENT —
        // dispatch routes against fault-free calibrated models.
        ASSERT_EQ(faulted.nodes.size(), 2u);
        EXPECT_EQ(faulted.nodes[1].serving.arrivals,
                  clean.nodes[1].serving.arrivals);
        // And node0, which has no faults, must replay byte-identically.
        EXPECT_EQ(nodeLog(faulted.nodes[0]), nodeLog(clean.nodes[0]));
        // The fleet still conserves requests.
        EXPECT_EQ(faulted.fleet.arrivals, faulted.fleet.generated);
        EXPECT_EQ(faulted.fleet.generated, clean.fleet.generated);
    }
}

TEST(ChaosClusterTest, FaultedFleetReplaysByteIdentically)
{
    std::string plan = writePlanFile(everythingPlan());
    std::string first = fleetLog(runFleet(fleetSpec(plan)));
    // Same (seed, plan, spec) → the same bytes, at any thread count.
    EXPECT_EQ(fleetLog(runFleet(fleetSpec(plan))), first);
    EXPECT_EQ(fleetLog(runFleet(fleetSpec(plan), /*threads=*/1)),
              first);
    EXPECT_EQ(fleetLog(runFleet(fleetSpec(plan), /*threads=*/4)),
              first);
}

} // namespace
} // namespace dirigent::chaos
