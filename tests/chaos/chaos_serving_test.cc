/**
 * @file
 * Serving-mode chaos cell: open-loop request serving under light fault
 * injection at every boundary at once. The queue must never wedge —
 * the run drains, requests are accounted for exactly, and the whole
 * cell replays byte-identically from its (seed, plan) pair, request
 * log included.
 */

#include <gtest/gtest.h>

#include "chaos_util.h"
#include "dirigent/scheme_spec.h"
#include "harness/serving.h"
#include "serve/driver.h"
#include "serve/spec.h"

namespace dirigent::chaos {
namespace {

constexpr uint64_t kServingSeed = 0x5EED'CAFE;

serve::ServeSpec
servingCellSpec()
{
    serve::ServeSpec spec;
    spec.arrivals.kind = serve::ArrivalKind::Mmpp;
    spec.arrivals.rate = 0.3;
    spec.arrivals.burstRate = 1.2;
    spec.arrivals.dwellSec = 6.0;
    spec.arrivals.burstDwellSec = 2.0;
    spec.queueCapacity = 8;
    spec.slos = {{0.99, 10.0}};
    spec.horizonSec = 25.0;
    spec.warmupSec = 3.0;
    return spec;
}

/** A light dose of every fault boundary at once. */
fault::FaultPlan
lightEverythingPlan()
{
    fault::FaultPlan p;
    p.seedSalt = 0x5E12E;
    for (const ChaosPlan &cp : allPlans(Intensity::Light)) {
        p.counters.dropProb += cp.plan.counters.dropProb;
        p.counters.glitchProb += cp.plan.counters.glitchProb;
        p.counters.saturateProb += cp.plan.counters.saturateProb;
        p.sampler.stallProb += cp.plan.sampler.stallProb;
        p.sampler.missProb += cp.plan.sampler.missProb;
        p.sampler.overrunProb += cp.plan.sampler.overrunProb;
        p.dvfs.failProb += cp.plan.dvfs.failProb;
        p.dvfs.spikeProb += cp.plan.dvfs.spikeProb;
        p.cat.failProb += cp.plan.cat.failProb;
        p.profile.noiseSigma += cp.plan.profile.noiseSigma;
    }
    p.sampler.stallMean = Time::ms(2.0);
    p.sampler.overrunMean = Time::ms(1.0);
    p.dvfs.spikeMean = Time::ms(0.5);
    p.profile.staleScale = 1.0;
    return p;
}

harness::ServingRunResult
servingCell()
{
    harness::HarnessConfig cfg = cellConfig(kServingSeed);
    cfg.faultPlan = lightEverythingPlan();
    harness::ExperimentRunner runner(cfg);
    std::map<std::string, Time> deadlines = {
        {"ferret", Time::sec(2.0)}};
    const core::SchemeSpec *spec =
        core::findSchemeSpec("DirigentGradient");
    return runner.runServing(chaosMix(), *spec, servingCellSpec(),
                             deadlines);
}

TEST(ChaosServingTest, LightFaultsDoNotWedgeTheQueue)
{
    harness::ServingRunResult result = servingCell();
    // The cell returned at all — the queue drained past the horizon
    // despite injected stalls, glitches, and failed actuations.
    EXPECT_GT(result.arrivals, 0u);
    EXPECT_GT(result.completed, 0u);
    // Exact accounting: every arrival ends in exactly one outcome.
    EXPECT_EQ(result.completed + result.dropped + result.shed,
              result.arrivals);
    // Bounded queue honoured even under faults.
    EXPECT_LE(result.maxQueueDepth, servingCellSpec().queueCapacity);
}

TEST(ChaosServingTest, ServingCellReplaysByteIdentically)
{
    harness::ServingRunResult first = servingCell();
    harness::ServingRunResult second = servingCell();
    EXPECT_EQ(first.arrivals, second.arrivals);
    EXPECT_EQ(first.completed, second.completed);
    EXPECT_EQ(first.dropped, second.dropped);
    EXPECT_EQ(first.shed, second.shed);
    EXPECT_EQ(first.stats.samples(), second.stats.samples());
    ASSERT_EQ(first.perFgRequests.size(), second.perFgRequests.size());
    for (size_t slot = 0; slot < first.perFgRequests.size(); ++slot)
        EXPECT_EQ(
            serve::formatRequestLog(first.perFgRequests[slot], true),
            serve::formatRequestLog(second.perFgRequests[slot], true))
            << "slot " << slot;
}

} // namespace
} // namespace dirigent::chaos
