/**
 * @file
 * Shared helpers for the chaos suite: canonical fault plans at two
 * intensities for every injection boundary, the small harness
 * configuration chaos cells run under, and the failing-cell artifact
 * dump (every assertion failure leaves a reproducible (seed, plan)
 * pair under $DIRIGENT_CHAOS_ARTIFACTS).
 */

#ifndef DIRIGENT_TESTS_CHAOS_CHAOS_UTIL_H
#define DIRIGENT_TESTS_CHAOS_CHAOS_UTIL_H

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "fault/plan.h"
#include "harness/experiment.h"
#include "workload/mix.h"

namespace dirigent::chaos {

/** Fault intensity of a chaos cell. */
enum class Intensity { Light, Heavy };

inline const char *
intensityName(Intensity i)
{
    return i == Intensity::Light ? "light" : "heavy";
}

/** One named (boundary, intensity) fault plan. */
struct ChaosPlan
{
    std::string name;
    fault::FaultPlan plan;
};

/**
 * Light plans perturb rarely enough that Dirigent's hardening must
 * absorb them with almost no QoS cost; heavy plans hammer the boundary
 * and only survival, invariants, and replay are asserted.
 */
inline ChaosPlan
counterPlan(Intensity i)
{
    fault::FaultPlan p;
    bool light = i == Intensity::Light;
    p.counters.dropProb = light ? 0.02 : 0.25;
    p.counters.glitchProb = light ? 0.01 : 0.15;
    p.counters.saturateProb = light ? 0.005 : 0.05;
    return {std::string("counters-") + intensityName(i), p};
}

inline ChaosPlan
samplerPlan(Intensity i)
{
    fault::FaultPlan p;
    bool light = i == Intensity::Light;
    p.sampler.stallProb = light ? 0.02 : 0.2;
    p.sampler.stallMean = Time::ms(light ? 2.0 : 15.0);
    p.sampler.missProb = light ? 0.02 : 0.2;
    p.sampler.overrunProb = light ? 0.02 : 0.2;
    p.sampler.overrunMean = Time::ms(light ? 1.0 : 8.0);
    return {std::string("sampler-") + intensityName(i), p};
}

inline ChaosPlan
dvfsPlan(Intensity i)
{
    fault::FaultPlan p;
    bool light = i == Intensity::Light;
    p.dvfs.failProb = light ? 0.05 : 0.4;
    p.dvfs.spikeProb = light ? 0.02 : 0.2;
    p.dvfs.spikeMean = Time::ms(light ? 0.5 : 4.0);
    return {std::string("dvfs-") + intensityName(i), p};
}

inline ChaosPlan
catPlan(Intensity i)
{
    fault::FaultPlan p;
    // Heavy is a total outage: every mask write fails, the partition
    // never forms, and Dirigent must carry on unpartitioned.
    p.cat.failProb = i == Intensity::Light ? 0.05 : 1.0;
    return {std::string("cat-") + intensityName(i), p};
}

inline ChaosPlan
profilePlan(Intensity i)
{
    fault::FaultPlan p;
    bool light = i == Intensity::Light;
    p.profile.noiseSigma = light ? 0.03 : 0.3;
    p.profile.staleScale = light ? 1.0 : 1.8;
    p.profile.corruptProb = light ? 0.0 : 0.1;
    return {std::string("profile-") + intensityName(i), p};
}

/** All boundary plans at @p intensity. */
inline std::vector<ChaosPlan>
allPlans(Intensity i)
{
    return {counterPlan(i), samplerPlan(i), dvfsPlan(i), catPlan(i),
            profilePlan(i)};
}

/** A plan exercising every boundary at once (replay stress). */
inline ChaosPlan
everythingPlan()
{
    fault::FaultPlan p;
    p.seedSalt = 0xC4405;
    p.counters.dropProb = 0.1;
    p.counters.glitchProb = 0.05;
    p.counters.saturateProb = 0.02;
    p.sampler.stallProb = 0.1;
    p.sampler.missProb = 0.1;
    p.sampler.overrunProb = 0.1;
    p.dvfs.failProb = 0.2;
    p.dvfs.spikeProb = 0.1;
    p.cat.failProb = 0.2;
    p.profile.noiseSigma = 0.15;
    p.profile.staleScale = 1.3;
    return {"everything", p};
}

/** Harness configuration for survival cells (small and fast). */
inline harness::HarnessConfig
cellConfig(uint64_t seed, unsigned executions = 6)
{
    harness::HarnessConfig cfg;
    cfg.executions = executions;
    cfg.warmup = 2;
    cfg.seed = seed;
    return cfg;
}

/** The workload mix every chaos cell runs. */
inline workload::WorkloadMix
chaosMix()
{
    return workload::makeMix({"ferret"}, workload::BgSpec::single("rs"));
}

/** True when the full nightly matrix was requested. */
inline bool
fullMatrixRequested()
{
    const char *env = std::getenv("DIRIGENT_CHAOS_FULL");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/**
 * Dump a failing cell's reproduction recipe ((seed, plan) pair) to
 * $DIRIGENT_CHAOS_ARTIFACTS/<cell>.cfg; silently a no-op when the
 * variable is unset.
 */
inline void
dumpArtifact(const std::string &cell, uint64_t seed,
             const fault::FaultPlan &plan)
{
    const char *dir = std::getenv("DIRIGENT_CHAOS_ARTIFACTS");
    if (dir == nullptr || dir[0] == '\0')
        return;
    std::ofstream out(std::string(dir) + "/" + cell + ".cfg",
                      std::ios::trunc);
    out << "# chaos cell: " << cell << "\n"
        << "# reproduce: run_experiment --seed " << seed
        << " --faults <this file>\n"
        << fault::formatFaultPlan(plan);
}

} // namespace dirigent::chaos

#endif // DIRIGENT_TESTS_CHAOS_CHAOS_UTIL_H
