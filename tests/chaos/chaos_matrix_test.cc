/**
 * @file
 * The chaos matrix: seeded fault plans (boundary × intensity) run
 * against the managed schemes with the invariant checker armed in
 * abort mode. Cells assert survival (no crash, every execution
 * completes, no invariant violation), and the light-intensity cells
 * additionally assert QoS: Dirigent under light faults stays within
 * 5 percentage points of its fault-free success ratio and no worse
 * than fault-free Baseline on identical seeds.
 *
 * The PR smoke subset runs by default; DIRIGENT_CHAOS_FULL=1 unlocks
 * the full nightly cross (every plan × both schemes at both
 * intensities). Failing cells drop a reproducible (seed, plan) pair
 * into $DIRIGENT_CHAOS_ARTIFACTS.
 */

#include <gtest/gtest.h>

#include "chaos_util.h"
#include "check/check.h"
#include "fault/injector.h"
#include "harness/metrics.h"

namespace dirigent::chaos {
namespace {

constexpr uint64_t kChaosSeed = 0xD1619E47;

/** Every chaos cell runs with the invariant checker armed. */
class ChaosMatrixTest : public testing::Test
{
  protected:
    static void SetUpTestSuite() { check::setEnabled(true); }
    static void TearDownTestSuite() { check::setEnabled(false); }

    struct CellOutcome
    {
        harness::SchemeRunResult result;
        fault::FaultStats stats;
    };

    /** Run one chaos cell with a caller-owned injector. */
    CellOutcome
    runCell(const ChaosPlan &cp, core::Scheme scheme,
            const std::map<std::string, Time> &deadlines,
            unsigned executions = 6)
    {
        harness::ExperimentRunner runner(
            cellConfig(kChaosSeed, executions));
        fault::FaultInjector faults(cp.plan, kChaosSeed ^ 0xC805);
        harness::RunOptions opts;
        opts.faults = &faults;
        CellOutcome out;
        out.result = runner.run(chaosMix(), scheme, deadlines, opts);
        out.stats = faults.stats();
        return out;
    }

    /** Dump the first failing cell's reproduction recipe. */
    void
    noteCell(const ChaosPlan &cp, const std::string &scheme)
    {
        if (testing::Test::HasFailure() && !dumped_) {
            dumped_ = true;
            dumpArtifact(cp.name + "-" + scheme, kChaosSeed, cp.plan);
        }
    }

    bool dumped_ = false;
};

/** Fault-free reference runs, computed once per binary. */
struct Calibration
{
    std::map<std::string, Time> deadlines;
    double baselineSuccess = 0.0;
    double dirigentSuccess = 0.0;
};

const Calibration &
calibration()
{
    static const Calibration cal = [] {
        Calibration c;
        harness::ExperimentRunner runner(cellConfig(kChaosSeed, 20));
        auto baseline =
            runner.run(chaosMix(), core::Scheme::Baseline, {});
        c.deadlines = runner.deadlinesFromBaseline(baseline);
        harness::applyDeadlines(baseline, c.deadlines);
        c.baselineSuccess = baseline.fgSuccessRatio();
        auto dirigent =
            runner.run(chaosMix(), core::Scheme::Dirigent, c.deadlines);
        c.dirigentSuccess = dirigent.fgSuccessRatio();
        return c;
    }();
    return cal;
}

TEST_F(ChaosMatrixTest, LightMatrixSurvivesUnderDirigent)
{
    const Calibration &cal = calibration();
    for (const ChaosPlan &cp : allPlans(Intensity::Light)) {
        SCOPED_TRACE(cp.name);
        CellOutcome out =
            runCell(cp, core::Scheme::Dirigent, cal.deadlines);
        EXPECT_EQ(out.result.total, 6u);
        EXPECT_FALSE(out.result.perFgDurations.empty());
        noteCell(cp, "Dirigent");
    }
}

TEST_F(ChaosMatrixTest, HeavyMatrixSurvivesUnderDirigent)
{
    const Calibration &cal = calibration();
    for (const ChaosPlan &cp : allPlans(Intensity::Heavy)) {
        SCOPED_TRACE(cp.name);
        CellOutcome out =
            runCell(cp, core::Scheme::Dirigent, cal.deadlines);
        EXPECT_EQ(out.result.total, 6u);
        // Heavy plans must actually have injected something (the
        // profile-only plan perturbs via corruption, not the stats).
        if (cp.name.rfind("profile", 0) != 0)
            EXPECT_GT(out.stats.total(), 0u);
        noteCell(cp, "Dirigent");
    }
}

TEST_F(ChaosMatrixTest, FullMatrixCrossesSchemesNightly)
{
    if (!fullMatrixRequested())
        GTEST_SKIP() << "set DIRIGENT_CHAOS_FULL=1 for the full cross";
    const Calibration &cal = calibration();
    for (Intensity intensity : {Intensity::Light, Intensity::Heavy}) {
        for (const ChaosPlan &cp : allPlans(intensity)) {
            for (core::Scheme scheme : core::allSchemes()) {
                SCOPED_TRACE(cp.name + "-" + core::schemeName(scheme));
                CellOutcome out = runCell(cp, scheme, cal.deadlines);
                EXPECT_EQ(out.result.total, 6u);
                noteCell(cp, core::schemeName(scheme));
            }
        }
    }
}

TEST_F(ChaosMatrixTest, LightFaultsKeepDirigentQoS)
{
    const Calibration &cal = calibration();
    // Fault-free Dirigent must itself beat Baseline for the bound to
    // mean anything.
    ASSERT_GE(cal.dirigentSuccess, cal.baselineSuccess);
    for (const ChaosPlan &cp : allPlans(Intensity::Light)) {
        SCOPED_TRACE(cp.name);
        CellOutcome out =
            runCell(cp, core::Scheme::Dirigent, cal.deadlines, 20);
        double success = out.result.fgSuccessRatio();
        // Within 5 pp of the fault-free run (20 executions: one
        // flipped deadline is exactly 5 pp) and no worse than
        // fault-free Baseline on the identical seed.
        EXPECT_GE(success, cal.dirigentSuccess - 0.05 - 1e-12);
        EXPECT_GE(success, cal.baselineSuccess - 1e-12);
        noteCell(cp, "Dirigent-qos");
    }
}

} // namespace
} // namespace dirigent::chaos
