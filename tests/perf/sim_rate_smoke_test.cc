/**
 * @file
 * Smoke test for the sim-rate benchmark library: runs every scenario
 * at a tiny horizon, checks the structural invariants the CI perf gate
 * depends on (both stepping modes measured, identical quanta-per-run
 * across modes — the cheap bit-exactness corroboration), and validates
 * the emitted JSON against tools/schema/bench.schema.json in-process,
 * including the baseline + speedup sections the committed
 * BENCH_sim_rate.json carries.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "obs/export.h"
#include "obs/json.h"
#include "sim_rate_lib.h"

#ifndef DIRIGENT_SCHEMA_DIR
#error "DIRIGENT_SCHEMA_DIR must point at tools/schema"
#endif

namespace dirigent::bench {
namespace {

SimRateReport
smokeReport()
{
    SimRateOptions opts = quickSimRateOptions();
    opts.reps = 1;
    // Keep one warmup rep: the first Dirigent run of a scenario also
    // pays one-time lazy work (offline profiling) whose quanta would
    // otherwise be billed to whichever mode measures first.
    opts.warmup = 1;
    opts.executions = 1;
    opts.servingHorizonSec = 1.0;
    return runSimRate(opts);
}

obs::JsonValue
loadSchema()
{
    std::string path =
        std::string(DIRIGENT_SCHEMA_DIR) + "/bench.schema.json";
    std::ifstream in(path);
    EXPECT_TRUE(in) << "missing schema " << path;
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    auto schema = obs::parseJson(text.str(), &error);
    EXPECT_TRUE(schema.has_value()) << error;
    return *schema;
}

TEST(SimRateSmoke, MeasuresEveryScenarioInBothModes)
{
    SimRateReport report = smokeReport();

    // name -> mode -> quanta per run.
    std::map<std::string, std::map<std::string, uint64_t>> seen;
    for (const ScenarioResult &r : report.scenarios) {
        EXPECT_GT(r.quantaPerRun, 0u) << r.name;
        EXPECT_GT(r.quantaPerSec, 0.0) << r.name;
        EXPECT_GT(r.runsPerSec, 0.0) << r.name;
        EXPECT_LE(r.minRunSec, r.medianRunSec) << r.name;
        EXPECT_LE(r.medianRunSec, r.maxRunSec) << r.name;
        seen[r.name][r.mode] = r.quantaPerRun;
    }
    ASSERT_EQ(seen.size(), 5u) << "expected 5 scenarios";
    for (const auto &[name, modes] : seen) {
        ASSERT_EQ(modes.size(), 2u) << name;
        // Reference and skip-ahead must advance the model through the
        // identical quantum grid; a diverging count means the fast
        // path changed simulated behaviour, not just its speed.
        EXPECT_EQ(modes.at("reference"), modes.at("fast")) << name;
    }
}

TEST(SimRateSmoke, JsonValidatesAgainstSchema)
{
    SimRateReport report = smokeReport();
    obs::JsonValue schema = loadSchema();

    std::string plain = formatSimRateJson(report, std::nullopt);
    std::string error;
    auto doc = obs::parseJson(plain, &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_EQ(obs::validateAgainstSchema(*doc, schema), "");

    // Round-trip the report as its own baseline: exercises the
    // baseline + speedup sections exactly as the committed
    // BENCH_sim_rate.json uses them (ratios of a run against itself
    // are exactly 1).
    auto baseline = baselineFromSnapshot(plain, "self");
    ASSERT_TRUE(baseline.has_value());
    std::string withBase = formatSimRateJson(report, baseline);
    auto doc2 = obs::parseJson(withBase, &error);
    ASSERT_TRUE(doc2.has_value()) << error;
    EXPECT_EQ(obs::validateAgainstSchema(*doc2, schema), "");

    const obs::JsonValue *speedup = doc2->find("speedup");
    ASSERT_NE(speedup, nullptr);
    ASSERT_TRUE(speedup->isArray());
    ASSERT_EQ(speedup->array.size(), report.scenarios.size());
    for (const auto &row : speedup->array) {
        const obs::JsonValue *ratio = row.find("quanta_per_sec_ratio");
        ASSERT_NE(ratio, nullptr);
        EXPECT_DOUBLE_EQ(ratio->number, 1.0);
    }
}

} // namespace
} // namespace dirigent::bench
