/**
 * @file
 * Fast-path equivalence suite: every builtin SchemeSpec, batch and
 * serving, must produce byte-identical traces whether the engine steps
 * one quantum at a time (reference) or merges event-free spans
 * (skip-ahead), across seeds. This is the correctness license for the
 * DIRIGENT_FAST_PATH default: any divergence — a reordered
 * floating-point sum, a missed event boundary, a mid-span clock skew —
 * shows up as a precise-trace diff here before it can reach the golden
 * sentinels.
 *
 * The invariant checker is disabled for the comparison runs: it
 * attaches an engine observer, which (by design) forces reference
 * stepping, and the point of this suite is to exercise the path where
 * skip-ahead actually engages. That engagement is asserted via the
 * process-wide span-quantum counter, so a regression that silently
 * disables the fast path fails loudly instead of comparing reference
 * against itself.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "check/check.h"
#include "dirigent/scheme_spec.h"
#include "dirigent/trace.h"
#include "harness/experiment.h"
#include "harness/serving.h"
#include "serve/driver.h"
#include "serve/spec.h"
#include "sim/engine.h"
#include "workload/mix.h"

namespace dirigent::harness {
namespace {

/** Seeds the suite sweeps; distinct workload and noise streams. */
constexpr uint64_t kSeeds[] = {4242, 20260808};

/** Scoped DIRIGENT_FAST_PATH override (restores the prior value). */
class ScopedFastPath
{
  public:
    explicit ScopedFastPath(bool on)
    {
        const char *prev = std::getenv("DIRIGENT_FAST_PATH");
        had_ = prev != nullptr;
        if (had_)
            prev_ = prev;
        ::setenv("DIRIGENT_FAST_PATH", on ? "1" : "0", 1);
    }

    ~ScopedFastPath()
    {
        if (had_)
            ::setenv("DIRIGENT_FAST_PATH", prev_.c_str(), 1);
        else
            ::unsetenv("DIRIGENT_FAST_PATH");
    }

  private:
    bool had_ = false;
    std::string prev_;
};

/** Scoped checker disable so engines run observer-free. */
class ScopedCheckerOff
{
  public:
    ScopedCheckerOff() : was_(check::enabled()) { check::setEnabled(false); }
    ~ScopedCheckerOff() { check::setEnabled(was_); }

  private:
    bool was_;
};

HarnessConfig
fastConfig(uint64_t seed)
{
    HarnessConfig cfg;
    cfg.executions = 3;
    cfg.warmup = 1;
    cfg.seed = seed;
    return cfg;
}

serve::ServeSpec
smallServeSpec()
{
    serve::ServeSpec spec;
    spec.arrivals.rate = 1.5;
    spec.queueCapacity = 8;
    spec.slos = {{0.95, 4.0}};
    spec.horizonSec = 5.0;
    spec.warmupSec = 1.0;
    return spec;
}

/** One batch run's precise+canonical fingerprint. */
struct BatchTrace
{
    std::string precise;
    std::string canonical;
};

BatchTrace
runBatch(uint64_t seed, const core::SchemeSpec &spec,
         const std::map<std::string, Time> &deadlines, bool fast,
         uint64_t *spanQuantaDelta)
{
    ScopedFastPath env(fast);
    ExperimentRunner runner(fastConfig(seed));
    auto mix =
        workload::makeMix({"ferret"}, workload::BgSpec::single("rs"));
    core::GoldenTraceRecorder recorder;
    RunOptions opts;
    opts.golden = &recorder;
    uint64_t before = sim::totalSpanQuantaAdvanced();
    runner.run(mix, spec, deadlines, opts);
    if (spanQuantaDelta != nullptr)
        *spanQuantaDelta = sim::totalSpanQuantaAdvanced() - before;
    return {recorder.preciseText(), recorder.canonicalText()};
}

std::map<std::string, Time>
calibrateDeadlines(uint64_t seed)
{
    ScopedFastPath env(false);
    ExperimentRunner runner(fastConfig(seed));
    auto mix =
        workload::makeMix({"ferret"}, workload::BgSpec::single("rs"));
    auto baseline = runner.run(mix, core::Scheme::Baseline, {});
    return runner.deadlinesFromBaseline(baseline);
}

std::string
runServingLog(uint64_t seed, const core::SchemeSpec &spec,
              const std::map<std::string, Time> &deadlines, bool fast,
              uint64_t *spanQuantaDelta)
{
    ScopedFastPath env(fast);
    ExperimentRunner runner(fastConfig(seed));
    auto mix =
        workload::makeMix({"ferret"}, workload::BgSpec::single("rs"));
    uint64_t before = sim::totalSpanQuantaAdvanced();
    ServingRunResult res =
        runner.runServing(mix, spec, smallServeSpec(), deadlines);
    if (spanQuantaDelta != nullptr)
        *spanQuantaDelta = sim::totalSpanQuantaAdvanced() - before;
    std::string log;
    log += "arrivals=" + std::to_string(res.arrivals) +
           " completed=" + std::to_string(res.completed) +
           " dropped=" + std::to_string(res.dropped) +
           " shed=" + std::to_string(res.shed) + "\n";
    for (const auto &requests : res.perFgRequests)
        log += serve::formatRequestLog(requests, /*precise=*/true);
    return log;
}

TEST(FastPathEquivalence, BatchTracesIdenticalForEveryBuiltinSpec)
{
    ScopedCheckerOff checkerOff;
    for (uint64_t seed : kSeeds) {
        // Deadlines calibrate from a Baseline run; computed once per
        // seed (reference mode) and shared by both stepping modes so
        // the runs compared differ only in stepping.
        std::map<std::string, Time> deadlines = calibrateDeadlines(seed);
        for (const core::SchemeSpec &spec : core::builtinSchemeSpecs()) {
            SCOPED_TRACE("seed " + std::to_string(seed) + " spec " +
                         spec.name);
            uint64_t refSpans = 0, fastSpans = 0;
            BatchTrace ref =
                runBatch(seed, spec, deadlines, false, &refSpans);
            BatchTrace fast =
                runBatch(seed, spec, deadlines, true, &fastSpans);
            ASSERT_FALSE(ref.precise.empty());
            EXPECT_EQ(refSpans, 0u)
                << "reference run used the fast path";
            EXPECT_GT(fastSpans, 0u)
                << "fast path never engaged; comparison is vacuous";
            EXPECT_EQ(fast.precise, ref.precise)
                << core::traceDiff(ref.precise, fast.precise);
            EXPECT_EQ(fast.canonical, ref.canonical);
        }
    }
}

TEST(FastPathEquivalence, ServingLogsIdenticalForEveryBuiltinSpec)
{
    ScopedCheckerOff checkerOff;
    for (uint64_t seed : kSeeds) {
        std::map<std::string, Time> deadlines = calibrateDeadlines(seed);
        for (const core::SchemeSpec &spec : core::builtinSchemeSpecs()) {
            SCOPED_TRACE("seed " + std::to_string(seed) + " spec " +
                         spec.name);
            uint64_t refSpans = 0, fastSpans = 0;
            std::string ref =
                runServingLog(seed, spec, deadlines, false, &refSpans);
            std::string fast =
                runServingLog(seed, spec, deadlines, true, &fastSpans);
            ASSERT_FALSE(ref.empty());
            EXPECT_EQ(refSpans, 0u)
                << "reference run used the fast path";
            EXPECT_GT(fastSpans, 0u)
                << "fast path never engaged; comparison is vacuous";
            EXPECT_EQ(fast, ref);
        }
    }
}

} // namespace
} // namespace dirigent::harness
