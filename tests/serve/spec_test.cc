/**
 * @file
 * ServeSpec round-trip tests: parse(format(spec)) == spec for every
 * arrival kind, hash stability, defaulting, and fatal() on malformed
 * user input.
 */

#include <gtest/gtest.h>

#include "serve/spec.h"

namespace dirigent::serve {
namespace {

ServeSpec
fullSpec()
{
    ServeSpec spec;
    spec.arrivals.kind = ArrivalKind::Mmpp;
    spec.arrivals.rate = 1.25;
    spec.arrivals.burstRate = 9.5;
    spec.arrivals.dwellSec = 7.0;
    spec.arrivals.burstDwellSec = 1.75;
    spec.queueCapacity = 48;
    spec.discipline = QueueDiscipline::Lifo;
    spec.slos = {{0.95, 0.8}, {0.99, 1.5}};
    spec.horizonSec = 90.0;
    spec.warmupSec = 10.0;
    spec.sweepRates = {0.5, 1.0, 2.5};
    return spec;
}

TEST(ServeSpecTest, FormatParseRoundTrips)
{
    ServeSpec spec = fullSpec();
    EXPECT_EQ(parseServeSpec(formatServeSpec(spec)), spec);

    ServeSpec poisson;
    poisson.arrivals.rate = 2.0;
    poisson.slos = {{0.99, 1.0}};
    EXPECT_EQ(parseServeSpec(formatServeSpec(poisson)), poisson);

    ServeSpec diurnal;
    diurnal.arrivals.kind = ArrivalKind::Diurnal;
    diurnal.arrivals.periodSec = 30.0;
    diurnal.arrivals.amplitude = 0.25;
    EXPECT_EQ(parseServeSpec(formatServeSpec(diurnal)), diurnal);
}

TEST(ServeSpecTest, HashFingerprintsCanonicalText)
{
    ServeSpec a = fullSpec();
    ServeSpec b = fullSpec();
    EXPECT_EQ(serveSpecHash(a), serveSpecHash(b));
    b.queueCapacity = 49;
    EXPECT_NE(serveSpecHash(a), serveSpecHash(b));
}

TEST(ServeSpecTest, DefaultsMatchDocumentedValues)
{
    ServeSpec spec = parseServeSpec("[arrivals]\nrate = 1\n");
    EXPECT_EQ(spec.arrivals.kind, ArrivalKind::Poisson);
    EXPECT_EQ(spec.queueCapacity, 64u);
    EXPECT_EQ(spec.discipline, QueueDiscipline::Fifo);
    EXPECT_TRUE(spec.slos.empty());
    EXPECT_DOUBLE_EQ(spec.horizonSec, 40.0);
    EXPECT_DOUBLE_EQ(spec.warmupSec, 4.0);
    EXPECT_TRUE(spec.sweepRates.empty());
}

TEST(ServeSpecTest, SloTargetsParseInQuantileOrder)
{
    ServeSpec spec = parseServeSpec(
        "[slo]\np99 = 2\np50 = 0.5\n");
    ASSERT_EQ(spec.slos.size(), 2u);
    EXPECT_DOUBLE_EQ(spec.slos[0].quantile, 0.50);
    EXPECT_DOUBLE_EQ(spec.slos[0].targetSec, 0.5);
    EXPECT_DOUBLE_EQ(spec.slos[1].quantile, 0.99);
    EXPECT_DOUBLE_EQ(spec.slos[1].targetSec, 2.0);
    EXPECT_EQ(spec.slos[0].label(), "p50");
    EXPECT_EQ(spec.slos[1].label(), "p99");
}

TEST(ServeSpecTest, DiesOnMalformedInput)
{
    EXPECT_DEATH(parseServeSpec("[arrivals]\nkind = weibull\n"),
                 "unknown");
    EXPECT_DEATH(parseServeSpec("[queue]\ndiscipline = random\n"),
                 "unknown");
    EXPECT_DEATH(parseServeSpec("[typo]\nx = 1\n"), "unknown key");
    EXPECT_DEATH(parseServeSpec("[serve]\nrates = 1,,2\n"),
                 "bad rate list");
    EXPECT_DEATH(parseServeSpec("[serve]\nhorizon_s = 0\n"),
                 "horizon_s");
    EXPECT_DEATH(parseServeSpec("[serve]\nwarmup_s = 40\n"),
                 "warmup_s");
    EXPECT_DEATH(parseServeSpec("[arrivals]\nkind = mmpp\n"
                                "rate = 2\nburst_rate = 1\n"),
                 "burst_rate");
}

TEST(ServeSpecTest, ValidateRejectsBadSloAndRates)
{
    ServeSpec spec;
    spec.slos = {{1.5, 1.0}};
    EXPECT_TRUE(validateServeSpec(spec).has_value());
    spec.slos = {{0.99, 0.0}};
    EXPECT_TRUE(validateServeSpec(spec).has_value());
    spec.slos.clear();
    spec.sweepRates = {1.0, -2.0};
    EXPECT_TRUE(validateServeSpec(spec).has_value());
    spec.sweepRates.clear();
    EXPECT_FALSE(validateServeSpec(spec).has_value());
}

TEST(ServeSpecTest, EnvServeFilePath)
{
    unsetenv("DIRIGENT_SERVE_FILE");
    EXPECT_FALSE(envServeFilePath().has_value());
    setenv("DIRIGENT_SERVE_FILE", "/tmp/x.serve", 1);
    EXPECT_EQ(envServeFilePath().value(), "/tmp/x.serve");
    setenv("DIRIGENT_SERVE_FILE", "", 1);
    EXPECT_FALSE(envServeFilePath().has_value());
    unsetenv("DIRIGENT_SERVE_FILE");
}

} // namespace
} // namespace dirigent::serve
