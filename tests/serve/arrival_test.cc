/**
 * @file
 * Arrival-process tests: seeded determinism (the same (spec, seed)
 * always yields a byte-identical stream), nondecreasing times, rate
 * sanity per process, trace replay/loading, spec validation, and the
 * scaledToRate load-sweep helper.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/strfmt.h"
#include "serve/arrival.h"

namespace dirigent::serve {
namespace {

ArrivalSpec
poissonSpec(double rate = 2.0)
{
    ArrivalSpec spec;
    spec.kind = ArrivalKind::Poisson;
    spec.rate = rate;
    return spec;
}

ArrivalSpec
mmppSpec()
{
    ArrivalSpec spec;
    spec.kind = ArrivalKind::Mmpp;
    spec.rate = 1.0;
    spec.burstRate = 8.0;
    spec.dwellSec = 6.0;
    spec.burstDwellSec = 1.5;
    return spec;
}

ArrivalSpec
diurnalSpec()
{
    ArrivalSpec spec;
    spec.kind = ArrivalKind::Diurnal;
    spec.rate = 3.0;
    spec.periodSec = 20.0;
    spec.amplitude = 0.8;
    return spec;
}

/** First @p n arrival times rendered bit-exactly. */
std::string
streamText(const ArrivalSpec &spec, uint64_t seed, size_t n)
{
    auto process = makeArrivalProcess(spec, seed);
    std::string out;
    for (size_t i = 0; i < n; ++i)
        out += strfmt("%.17g\n", process->next().sec());
    return out;
}

TEST(ArrivalProcessTest, SameSeedReplaysByteIdentically)
{
    for (const ArrivalSpec &spec :
         {poissonSpec(), mmppSpec(), diurnalSpec()}) {
        SCOPED_TRACE(arrivalKindName(spec.kind));
        EXPECT_EQ(streamText(spec, 99, 500), streamText(spec, 99, 500));
    }
}

TEST(ArrivalProcessTest, DifferentSeedsDiverge)
{
    for (const ArrivalSpec &spec :
         {poissonSpec(), mmppSpec(), diurnalSpec()}) {
        SCOPED_TRACE(arrivalKindName(spec.kind));
        EXPECT_NE(streamText(spec, 1, 50), streamText(spec, 2, 50));
    }
}

TEST(ArrivalProcessTest, TimesAreNondecreasingAndFinite)
{
    for (const ArrivalSpec &spec :
         {poissonSpec(), mmppSpec(), diurnalSpec()}) {
        SCOPED_TRACE(arrivalKindName(spec.kind));
        auto process = makeArrivalProcess(spec, 7);
        Time prev;
        for (int i = 0; i < 2000; ++i) {
            Time t = process->next();
            ASSERT_FALSE(t.isNever());
            ASSERT_GE(t, prev);
            prev = t;
        }
    }
}

TEST(ArrivalProcessTest, PoissonMeanInterarrivalMatchesRate)
{
    auto process = makeArrivalProcess(poissonSpec(4.0), 11);
    const int n = 20000;
    Time last;
    for (int i = 0; i < n; ++i)
        last = process->next();
    // n arrivals in ~n/rate seconds.
    EXPECT_NEAR(last.sec(), n / 4.0, n / 4.0 * 0.05);
}

TEST(ArrivalProcessTest, DiurnalLongRunRateMatchesMean)
{
    // The sinusoid integrates to zero over a period, so the long-run
    // rate is the configured mean despite the ±80% swing.
    auto process = makeArrivalProcess(diurnalSpec(), 5);
    const int n = 30000;
    Time last;
    for (int i = 0; i < n; ++i)
        last = process->next();
    EXPECT_NEAR(n / last.sec(), 3.0, 0.2);
}

TEST(ArrivalProcessTest, MmppVisitsBothStates)
{
    ArrivalSpec spec = mmppSpec();
    auto process = makeArrivalProcess(spec, 3);
    auto *mmpp = dynamic_cast<MmppArrivals *>(process.get());
    ASSERT_NE(mmpp, nullptr);
    bool sawBase = false, sawBurst = false;
    for (int i = 0; i < 5000; ++i) {
        process->next();
        (mmpp->bursting() ? sawBurst : sawBase) = true;
    }
    EXPECT_TRUE(sawBase);
    EXPECT_TRUE(sawBurst);
}

TEST(TraceArrivalsTest, ReplaysExactTimesThenExhausts)
{
    TraceArrivals trace({Time::sec(0.5), Time::sec(0.5), Time::sec(2.0)});
    EXPECT_EQ(trace.remaining(), 3u);
    EXPECT_EQ(trace.next(), Time::sec(0.5));
    EXPECT_EQ(trace.next(), Time::sec(0.5));
    EXPECT_EQ(trace.next(), Time::sec(2.0));
    EXPECT_TRUE(trace.next().isNever());
    EXPECT_TRUE(trace.next().isNever());
    EXPECT_EQ(trace.remaining(), 0u);
}

TEST(TraceArrivalsTest, RejectsDecreasingTimestamps)
{
    EXPECT_DEATH(TraceArrivals({Time::sec(2.0), Time::sec(1.0)}),
                 "nondecreasing");
}

class ArrivalTraceFileTest : public testing::Test
{
  protected:
    std::string
    writeTrace(const std::string &content)
    {
        // PID-qualified: parallel ctest runs each TEST_F in its own
        // process, and all of them would otherwise race on _0.csv.
        std::string path = strfmt(
            "%s/arrival_trace_%d_%d.csv", testing::TempDir().c_str(),
            int(getpid()), counter_++);
        std::ofstream out(path, std::ios::trunc);
        out << content;
        return path;
    }

    static int counter_;
};

int ArrivalTraceFileTest::counter_ = 0;

TEST_F(ArrivalTraceFileTest, LoadsTimestampsSkippingComments)
{
    std::string path = writeTrace("# header\n0.25\n\n  1.5\n3\n");
    auto times = loadArrivalTrace(path);
    ASSERT_EQ(times.size(), 3u);
    EXPECT_EQ(times[0], Time::sec(0.25));
    EXPECT_EQ(times[1], Time::sec(1.5));
    EXPECT_EQ(times[2], Time::sec(3.0));
}

TEST_F(ArrivalTraceFileTest, DiesOnBadOrDecreasingTimestamps)
{
    std::string bad = writeTrace("0.5\nbogus\n");
    EXPECT_DEATH(loadArrivalTrace(bad), "bad arrival timestamp");
    std::string decreasing = writeTrace("2.0\n1.0\n");
    EXPECT_DEATH(loadArrivalTrace(decreasing), "nondecreasing");
    EXPECT_DEATH(loadArrivalTrace("/nonexistent/trace.csv"),
                 "cannot open");
}

TEST(ArrivalSpecTest, ValidationCatchesBadSpecs)
{
    ArrivalSpec bad = poissonSpec(0.0);
    EXPECT_TRUE(validateArrivalSpec(bad).has_value());

    ArrivalSpec mmpp = mmppSpec();
    mmpp.burstRate = mmpp.rate; // burst must exceed base
    EXPECT_TRUE(validateArrivalSpec(mmpp).has_value());

    ArrivalSpec diurnal = diurnalSpec();
    diurnal.amplitude = 1.5;
    EXPECT_TRUE(validateArrivalSpec(diurnal).has_value());

    ArrivalSpec trace;
    trace.kind = ArrivalKind::Trace;
    EXPECT_TRUE(validateArrivalSpec(trace).has_value());

    EXPECT_FALSE(validateArrivalSpec(poissonSpec()).has_value());
    EXPECT_FALSE(validateArrivalSpec(mmppSpec()).has_value());
    EXPECT_FALSE(validateArrivalSpec(diurnalSpec()).has_value());
}

TEST(ArrivalSpecTest, MeanRateCombinesMmppDwells)
{
    ArrivalSpec spec = mmppSpec();
    // (1.0 * 6 + 8.0 * 1.5) / 7.5 = 2.4
    EXPECT_DOUBLE_EQ(spec.meanRate(), 2.4);
    EXPECT_DOUBLE_EQ(poissonSpec(2.0).meanRate(), 2.0);
    EXPECT_DOUBLE_EQ(diurnalSpec().meanRate(), 3.0);
    ArrivalSpec trace;
    trace.kind = ArrivalKind::Trace;
    EXPECT_TRUE(std::isnan(trace.meanRate()));
}

TEST(ScaledToRateTest, HitsTargetPreservingShape)
{
    ArrivalSpec scaled = scaledToRate(mmppSpec(), 6.0);
    EXPECT_NEAR(scaled.meanRate(), 6.0, 1e-12);
    // Burst/base ratio and dwells are preserved.
    EXPECT_DOUBLE_EQ(scaled.burstRate / scaled.rate,
                     mmppSpec().burstRate / mmppSpec().rate);
    EXPECT_DOUBLE_EQ(scaled.dwellSec, mmppSpec().dwellSec);

    ArrivalSpec poisson = scaledToRate(poissonSpec(2.0), 0.5);
    EXPECT_DOUBLE_EQ(poisson.rate, 0.5);
}

TEST(ScaledToRateTest, RejectsTraceAndBadTargets)
{
    ArrivalSpec trace;
    trace.kind = ArrivalKind::Trace;
    trace.traceFile = "x.csv";
    EXPECT_DEATH(scaledToRate(trace, 1.0), "rescale");
    EXPECT_DEATH(scaledToRate(poissonSpec(), 0.0), "target rate");
    EXPECT_DEATH(scaledToRate(poissonSpec(), -1.0), "target rate");
}

TEST(ArrivalKindTest, NamesRoundTrip)
{
    for (ArrivalKind k : {ArrivalKind::Poisson, ArrivalKind::Mmpp,
                          ArrivalKind::Diurnal, ArrivalKind::Trace})
        EXPECT_EQ(arrivalKindFromName(arrivalKindName(k)), k);
    EXPECT_FALSE(arrivalKindFromName("weibull").has_value());
}

} // namespace
} // namespace dirigent::serve
