/**
 * @file
 * RequestQueue tests: FIFO/LIFO service order, bounded-capacity drops,
 * depth high-water accounting, and the drop/shed bookkeeping split.
 */

#include <gtest/gtest.h>

#include "serve/queue.h"

namespace dirigent::serve {
namespace {

TEST(RequestQueueTest, FifoServesOldestFirst)
{
    RequestQueue q(0, QueueDiscipline::Fifo);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    EXPECT_TRUE(q.push(3));
    EXPECT_EQ(q.pop(), 1u);
    EXPECT_EQ(q.pop(), 2u);
    EXPECT_EQ(q.pop(), 3u);
    EXPECT_FALSE(q.pop().has_value());
}

TEST(RequestQueueTest, LifoServesNewestFirst)
{
    RequestQueue q(0, QueueDiscipline::Lifo);
    q.push(1);
    q.push(2);
    q.push(3);
    EXPECT_EQ(q.pop(), 3u);
    // A later push jumps ahead of older waiters.
    q.push(4);
    EXPECT_EQ(q.pop(), 4u);
    EXPECT_EQ(q.pop(), 2u);
    EXPECT_EQ(q.pop(), 1u);
}

TEST(RequestQueueTest, CapacityBoundsWaitersAndCountsDrops)
{
    RequestQueue q(2, QueueDiscipline::Fifo);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    EXPECT_FALSE(q.push(3)); // full
    EXPECT_FALSE(q.push(4));
    EXPECT_EQ(q.depth(), 2u);
    EXPECT_EQ(q.accepted(), 2u);
    EXPECT_EQ(q.dropped(), 2u);
    // Draining frees capacity again.
    q.pop();
    EXPECT_TRUE(q.push(5));
    EXPECT_EQ(q.dropped(), 2u);
}

TEST(RequestQueueTest, ZeroCapacityMeansUnbounded)
{
    RequestQueue q(0, QueueDiscipline::Fifo);
    for (uint64_t i = 0; i < 10000; ++i)
        ASSERT_TRUE(q.push(i));
    EXPECT_EQ(q.depth(), 10000u);
    EXPECT_EQ(q.dropped(), 0u);
}

TEST(RequestQueueTest, MaxDepthIsHighWaterMark)
{
    RequestQueue q(0, QueueDiscipline::Fifo);
    q.push(1);
    q.push(2);
    q.push(3);
    q.pop();
    q.pop();
    q.push(4);
    EXPECT_EQ(q.depth(), 2u);
    EXPECT_EQ(q.maxDepth(), 3u);
}

TEST(RequestQueueTest, ShedAccountingIsSeparateFromDrops)
{
    RequestQueue q(1, QueueDiscipline::Fifo);
    q.push(1);
    q.push(2); // dropped: capacity
    q.noteShed();
    q.noteShed();
    EXPECT_EQ(q.dropped(), 1u);
    EXPECT_EQ(q.shed(), 2u);
}

TEST(RequestQueueTest, OutcomeAndDisciplineNames)
{
    EXPECT_STREQ(outcomeName(RequestOutcome::Pending), "pending");
    EXPECT_STREQ(outcomeName(RequestOutcome::Completed), "completed");
    EXPECT_STREQ(outcomeName(RequestOutcome::Dropped), "dropped");
    EXPECT_STREQ(outcomeName(RequestOutcome::Shed), "shed");
    EXPECT_STREQ(disciplineName(QueueDiscipline::Fifo), "fifo");
    EXPECT_STREQ(disciplineName(QueueDiscipline::Lifo), "lifo");
}

TEST(RequestTest, LatencyAccessors)
{
    Request req;
    req.arrived = Time::sec(1.0);
    req.started = Time::sec(1.5);
    req.finished = Time::sec(2.25);
    EXPECT_DOUBLE_EQ(req.responseTime().sec(), 1.25);
    EXPECT_DOUBLE_EQ(req.serviceTime().sec(), 0.75);
}

} // namespace
} // namespace dirigent::serve
