/**
 * @file
 * Serving-mode determinism: the same serving sweep run through the
 * sharded executor with 1, 2, and 4 workers must replay bit-for-bit —
 * every aggregate, every quantile, and the full per-request log.
 * Open-loop arrivals are seeded per FG slot, so executor parallelism
 * must not perturb a single request timestamp.
 */

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "harness/experiment.h"
#include "harness/serving.h"
#include "serve/driver.h"
#include "serve/spec.h"
#include "workload/mix.h"

namespace dirigent::exec {
namespace {

harness::HarnessConfig
fastConfig()
{
    harness::HarnessConfig cfg;
    cfg.executions = 4;
    cfg.warmup = 1;
    cfg.seed = 20160402;
    return cfg;
}

ExecutorConfig
quietConfig(unsigned threads)
{
    ExecutorConfig ecfg;
    ecfg.threads = threads;
    ecfg.progress = false;
    return ecfg;
}

serve::ServeSpec
servingSpec(serve::ArrivalKind kind)
{
    serve::ServeSpec spec;
    spec.arrivals.kind = kind;
    spec.arrivals.rate = 0.8;
    if (kind == serve::ArrivalKind::Mmpp) {
        spec.arrivals.burstRate = 4.0;
        spec.arrivals.dwellSec = 6.0;
        spec.arrivals.burstDwellSec = 1.5;
    } else if (kind == serve::ArrivalKind::Diurnal) {
        spec.arrivals.periodSec = 10.0;
        spec.arrivals.amplitude = 0.5;
    }
    spec.queueCapacity = 16;
    spec.slos = {{0.99, 8.0}};
    spec.horizonSec = 20.0;
    spec.warmupSec = 2.0;
    spec.sweepRates = {0.5, 1.5};
    return spec;
}

void
expectSameServing(const harness::ServingRunResult &a,
                  const harness::ServingRunResult &b)
{
    EXPECT_EQ(a.mixName, b.mixName);
    EXPECT_EQ(a.schemeLabel, b.schemeLabel);
    EXPECT_EQ(a.specHash, b.specHash);
    EXPECT_EQ(a.serveHash, b.serveHash);
    EXPECT_EQ(a.arrivals, b.arrivals);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.maxQueueDepth, b.maxQueueDepth);
    EXPECT_EQ(a.span, b.span);
    // Exact double equality: determinism means bit-for-bit replay.
    EXPECT_EQ(a.stats.samples(), b.stats.samples());
    ASSERT_EQ(a.perFgRequests.size(), b.perFgRequests.size());
    for (size_t slot = 0; slot < a.perFgRequests.size(); ++slot)
        EXPECT_EQ(
            serve::formatRequestLog(a.perFgRequests[slot], true),
            serve::formatRequestLog(b.perFgRequests[slot], true))
            << "slot " << slot;
}

void
expectSameSweep(
    const std::vector<std::vector<harness::ServingRunResult>> &a,
    const std::vector<std::vector<harness::ServingRunResult>> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t m = 0; m < a.size(); ++m) {
        ASSERT_EQ(a[m].size(), b[m].size());
        for (size_t c = 0; c < a[m].size(); ++c)
            expectSameServing(a[m][c], b[m][c]);
    }
}

std::vector<std::vector<harness::ServingRunResult>>
runSweep(unsigned threads, serve::ArrivalKind kind)
{
    std::vector<workload::WorkloadMix> mixes = {workload::makeMix(
        {"fluidanimate"}, workload::BgSpec::single("rs"))};
    SweepExecutor executor(fastConfig(), quietConfig(threads));
    return executor.runServingSweep(mixes, servingSpec(kind),
                                    defaultServingSchemes());
}

TEST(ServingDeterminismTest, PoissonSweepIsThreadCountInvariant)
{
    auto one = runSweep(1, serve::ArrivalKind::Poisson);
    // 3 schemes × 2 sweep rates per mix.
    ASSERT_EQ(one.size(), 1u);
    ASSERT_EQ(one[0].size(), 6u);
    expectSameSweep(runSweep(2, serve::ArrivalKind::Poisson), one);
    expectSameSweep(runSweep(4, serve::ArrivalKind::Poisson), one);
}

TEST(ServingDeterminismTest, MmppSweepIsThreadCountInvariant)
{
    auto one = runSweep(1, serve::ArrivalKind::Mmpp);
    expectSameSweep(runSweep(4, serve::ArrivalKind::Mmpp), one);
}

TEST(ServingDeterminismTest, DiurnalSweepIsThreadCountInvariant)
{
    auto one = runSweep(1, serve::ArrivalKind::Diurnal);
    expectSameSweep(runSweep(4, serve::ArrivalKind::Diurnal), one);
}

TEST(ServingDeterminismTest, RepeatRunsReplayExactly)
{
    auto a = runSweep(1, serve::ArrivalKind::Poisson);
    auto b = runSweep(1, serve::ArrivalKind::Poisson);
    expectSameSweep(a, b);
    // Serving actually happened: at least one cell saw arrivals and
    // completions.
    uint64_t arrivals = 0, completed = 0;
    for (const auto &cell : a[0]) {
        arrivals += cell.arrivals;
        completed += cell.completed;
    }
    EXPECT_GT(arrivals, 0u);
    EXPECT_GT(completed, 0u);
}

} // namespace
} // namespace dirigent::exec
