/**
 * @file
 * Admission-controller tests: the static cap, and the gradient
 * controller's probe/grow/shrink dynamics — flat RTTs grow the limit
 * toward the ceiling, inflated RTTs shrink it toward the floor, and
 * probe windows recur to re-measure minRTT.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dirigent/scheme_spec.h"
#include "serve/admission.h"

namespace dirigent::serve {
namespace {

/** Feed one full RTT window of @p rtt seconds ending after the period. */
void
feedWindow(GradientAdmission &g, Time &now, double rttSec,
           double periodSec, int samples = 8)
{
    Time step = Time::sec(periodSec / (samples - 1) * 1.001);
    for (int i = 0; i < samples; ++i) {
        g.onResponse(now, Time::sec(rttSec));
        now = now + step;
    }
}

TEST(StaticAdmissionTest, CapsOutstandingRequests)
{
    StaticAdmission cap(3);
    EXPECT_STREQ(cap.name(), "static");
    EXPECT_DOUBLE_EQ(cap.limit(), 3.0);
    EXPECT_TRUE(cap.admit(Time::sec(1.0), 0));
    EXPECT_TRUE(cap.admit(Time::sec(1.0), 2));
    EXPECT_FALSE(cap.admit(Time::sec(1.0), 3));
    EXPECT_FALSE(cap.admit(Time::sec(1.0), 10));
    EXPECT_DEATH(StaticAdmission(0), "cap");
}

TEST(GradientAdmissionTest, StartsProbingAtMinLimit)
{
    GradientConfig cfg;
    cfg.minLimit = 2;
    cfg.maxLimit = 32;
    GradientAdmission g(cfg);
    EXPECT_STREQ(g.name(), "gradient");
    EXPECT_TRUE(g.probing());
    EXPECT_TRUE(std::isnan(g.minRttSec()));
    EXPECT_DOUBLE_EQ(g.limit(), 2.0);
    EXPECT_TRUE(g.admit(Time::sec(0.0), 1));
    EXPECT_FALSE(g.admit(Time::sec(0.0), 2));
}

TEST(GradientAdmissionTest, FirstWindowEstablishesMinRtt)
{
    GradientConfig cfg;
    cfg.updatePeriodSec = 1.0;
    GradientAdmission g(cfg);
    Time now = Time::sec(0.0);
    feedWindow(g, now, 0.1, cfg.updatePeriodSec);
    EXPECT_EQ(g.windowsClosed(), 1u);
    EXPECT_FALSE(g.probing());
    EXPECT_DOUBLE_EQ(g.minRttSec(), 0.1);
}

TEST(GradientAdmissionTest, FlatRttGrowsLimitTowardCeiling)
{
    GradientConfig cfg;
    cfg.minLimit = 1;
    cfg.maxLimit = 64;
    cfg.updatePeriodSec = 1.0;
    cfg.probeEvery = 0; // isolate growth from re-probing
    GradientAdmission g(cfg);
    Time now = Time::sec(0.0);
    feedWindow(g, now, 0.1, cfg.updatePeriodSec); // probe → minRTT
    double prev = g.limit();
    for (int w = 0; w < 12; ++w) {
        feedWindow(g, now, 0.1, cfg.updatePeriodSec);
        EXPECT_GE(g.limit(), prev);
        prev = g.limit();
    }
    // gradient = tolerance = 1.1 each window, plus √limit headroom.
    EXPECT_GT(g.limit(), 10.0);
    EXPECT_LE(g.limit(), 64.0);
}

TEST(GradientAdmissionTest, InflatedRttShrinksLimit)
{
    GradientConfig cfg;
    cfg.minLimit = 1;
    cfg.maxLimit = 64;
    cfg.updatePeriodSec = 1.0;
    cfg.probeEvery = 0;
    GradientAdmission g(cfg);
    Time now = Time::sec(0.0);
    feedWindow(g, now, 0.1, cfg.updatePeriodSec); // probe → minRTT 0.1
    for (int w = 0; w < 8; ++w)
        feedWindow(g, now, 0.1, cfg.updatePeriodSec);
    double grown = g.limit();
    ASSERT_GT(grown, 4.0);
    // RTTs an order of magnitude above minRTT: gradient clamps at 0.5
    // per window and the limit decays.
    for (int w = 0; w < 6; ++w)
        feedWindow(g, now, 1.0, cfg.updatePeriodSec);
    EXPECT_LT(g.limit(), grown / 2.0);
}

TEST(GradientAdmissionTest, ProbeWindowsRecur)
{
    GradientConfig cfg;
    cfg.updatePeriodSec = 1.0;
    cfg.probeEvery = 3;
    GradientAdmission g(cfg);
    Time now = Time::sec(0.0);
    // Window 1 is the initial probe; window 3 (multiple of probeEvery)
    // re-enters probing.
    feedWindow(g, now, 0.1, cfg.updatePeriodSec);
    EXPECT_FALSE(g.probing());
    feedWindow(g, now, 0.1, cfg.updatePeriodSec);
    EXPECT_FALSE(g.probing());
    feedWindow(g, now, 0.1, cfg.updatePeriodSec);
    EXPECT_TRUE(g.probing());
    EXPECT_DOUBLE_EQ(g.limit(), double(cfg.minLimit));
    // The next closed window re-measures minRTT and exits the probe.
    feedWindow(g, now, 0.2, cfg.updatePeriodSec);
    EXPECT_FALSE(g.probing());
    EXPECT_DOUBLE_EQ(g.minRttSec(), 0.2);
}

TEST(GradientAdmissionTest, StalledWindowClosesOnAdmit)
{
    // No responses complete the window, but admission checks keep the
    // clock moving: the window closes on the admit() path instead of
    // wedging at a stale limit.
    GradientConfig cfg;
    cfg.updatePeriodSec = 1.0;
    GradientAdmission g(cfg);
    g.onResponse(Time::sec(0.0), Time::sec(0.1));
    EXPECT_EQ(g.windowsClosed(), 0u);
    g.admit(Time::sec(5.0), 0);
    EXPECT_EQ(g.windowsClosed(), 1u);
    EXPECT_FALSE(g.probing());
}

TEST(GradientAdmissionTest, ValidatesConfig)
{
    GradientConfig bad;
    bad.minLimit = 0;
    EXPECT_DEATH(GradientAdmission{bad}, "min_limit");
    GradientConfig inverted;
    inverted.minLimit = 8;
    inverted.maxLimit = 4;
    EXPECT_DEATH(GradientAdmission{inverted}, "max_limit");
    GradientConfig loose;
    loose.tolerance = 0.5;
    EXPECT_DEATH(GradientAdmission{loose}, "tolerance");
}

TEST(MakeAdmissionControllerTest, BuildsFromSchemeSpec)
{
    core::SchemeSpec spec;
    spec.admission = "none";
    EXPECT_EQ(makeAdmissionController(spec), nullptr);

    spec.admission = "static";
    spec.admitCapacity = 5;
    auto fixed = makeAdmissionController(spec);
    ASSERT_NE(fixed, nullptr);
    EXPECT_STREQ(fixed->name(), "static");
    EXPECT_DOUBLE_EQ(fixed->limit(), 5.0);

    spec.admission = "gradient";
    spec.admitMinLimit = 2;
    auto gradient = makeAdmissionController(spec);
    ASSERT_NE(gradient, nullptr);
    EXPECT_STREQ(gradient->name(), "gradient");
    EXPECT_DOUBLE_EQ(gradient->limit(), 2.0);

    EXPECT_EQ(admissionSchemeNames().size(), 3u);
}

} // namespace
} // namespace dirigent::serve
