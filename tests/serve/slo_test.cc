/**
 * @file
 * SLO-layer tests: exact quantiles from sorted samples, the NaN-on-empty
 * contract (the latent common::percentile 0.0-on-empty bug must not
 * recur here), histogram mirroring, and verdict evaluation — including
 * "zero completed requests fails every SLO".
 */

#include <gtest/gtest.h>

#include <cmath>

#include "obs/metrics.h"
#include "serve/slo.h"

namespace dirigent::serve {
namespace {

TEST(LatencyStatsTest, EmptyStatsAreNaNNotZero)
{
    LatencyStats stats;
    EXPECT_EQ(stats.count(), 0u);
    // p99 of zero requests must be NaN (serialized as null), never a
    // fake 0.0 that reads as "instant responses".
    EXPECT_TRUE(std::isnan(stats.quantile(0.99)));
    EXPECT_TRUE(std::isnan(stats.quantile(0.5)));
    EXPECT_TRUE(std::isnan(stats.mean()));
    EXPECT_TRUE(std::isnan(stats.max()));
}

TEST(LatencyStatsTest, ExactQuantilesInterpolate)
{
    LatencyStats stats;
    // Insertion order must not matter.
    for (double v : {4.0, 1.0, 3.0, 2.0, 5.0})
        stats.add(v);
    EXPECT_EQ(stats.count(), 5u);
    EXPECT_DOUBLE_EQ(stats.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(stats.quantile(0.5), 3.0);
    EXPECT_DOUBLE_EQ(stats.quantile(1.0), 5.0);
    EXPECT_DOUBLE_EQ(stats.quantile(0.25), 2.0);
    EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
    EXPECT_DOUBLE_EQ(stats.max(), 5.0);
}

TEST(LatencyStatsTest, SingleSampleIsEveryQuantile)
{
    LatencyStats stats;
    stats.add(0.42);
    EXPECT_DOUBLE_EQ(stats.quantile(0.01), 0.42);
    EXPECT_DOUBLE_EQ(stats.quantile(0.999), 0.42);
    EXPECT_DOUBLE_EQ(stats.mean(), 0.42);
}

TEST(LatencyStatsTest, MirrorsSamplesIntoHistogram)
{
    obs::MetricsRegistry registry;
    auto &hist = registry.histogram("response_s",
                                    obs::HistogramConfig{1e-3, 10, 100});
    LatencyStats stats;
    stats.attachHistogram(&hist);
    stats.add(0.1);
    stats.add(0.2);
    stats.add(0.4);
    EXPECT_EQ(hist.count(), 3u);
}

TEST(SloTargetTest, LabelsFollowQuantile)
{
    EXPECT_EQ((SloTarget{0.50, 1.0}).label(), "p50");
    EXPECT_EQ((SloTarget{0.95, 1.0}).label(), "p95");
    EXPECT_EQ((SloTarget{0.99, 1.0}).label(), "p99");
    EXPECT_EQ((SloTarget{0.999, 1.0}).label(), "p999");
}

TEST(EvaluateSlosTest, VerdictsCompareAchievedToTarget)
{
    LatencyStats stats;
    for (int i = 1; i <= 100; ++i)
        stats.add(i / 100.0); // quantile(q) ≈ q
    auto verdicts = evaluateSlos({{0.50, 0.9}, {0.99, 0.9}}, stats);
    ASSERT_EQ(verdicts.size(), 2u);
    EXPECT_TRUE(verdicts[0].met);
    EXPECT_NEAR(verdicts[0].achievedSec, 0.505, 0.02);
    EXPECT_FALSE(verdicts[1].met);
    EXPECT_NEAR(verdicts[1].achievedSec, 0.99, 0.02);
    EXPECT_FALSE(allSlosMet(verdicts));
}

TEST(EvaluateSlosTest, NoSamplesFailsEveryTarget)
{
    LatencyStats empty;
    auto verdicts = evaluateSlos({{0.99, 10.0}}, empty);
    ASSERT_EQ(verdicts.size(), 1u);
    EXPECT_TRUE(std::isnan(verdicts[0].achievedSec));
    // Serving nothing never satisfies an SLO.
    EXPECT_FALSE(verdicts[0].met);
    EXPECT_FALSE(allSlosMet(verdicts));
}

TEST(EvaluateSlosTest, NoTargetsIsVacuouslyMet)
{
    LatencyStats stats;
    stats.add(1.0);
    EXPECT_TRUE(allSlosMet(evaluateSlos({}, stats)));
    EXPECT_TRUE(allSlosMet({}));
}

} // namespace
} // namespace dirigent::serve
