/**
 * @file
 * ServeDriver tests: request lifecycles against a real simulated
 * machine — queueing, bounded-capacity drops, admission shedding, the
 * warmup measurement window, horizon/done semantics, and the request
 * log renderer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "machine/machine.h"
#include "serve/driver.h"
#include "sim/engine.h"
#include "workload/benchmarks.h"

namespace dirigent::serve {
namespace {

class ServeDriverTest : public testing::Test
{
  protected:
    ServeDriverTest()
    {
        mcfg_.noiseEventsPerSec = 0.0;
        mcfg_.seed = 77;
        machine_ = std::make_unique<machine::Machine>(mcfg_);
        engine_ =
            std::make_unique<sim::Engine>(*machine_, mcfg_.maxQuantum);
        const auto &lib = workload::BenchmarkLibrary::instance();
        machine::ProcessSpec fg;
        fg.name = "fluidanimate"; // ~0.47 s service time standalone
        fg.program = &lib.get("fluidanimate").program;
        fg.core = 0;
        fg.foreground = true;
        fgPid_ = machine_->spawnProcess(fg);
    }

    /** Drive the sim until the driver drains (bounded). */
    void
    drain(ServeDriver &driver, double maxSec = 120.0)
    {
        while (!driver.done() && engine_->now() < Time::sec(maxSec))
            engine_->runFor(Time::ms(50.0));
        ASSERT_TRUE(driver.done()) << "driver did not drain";
    }

    std::unique_ptr<ArrivalProcess>
    traceProcess(std::vector<Time> times)
    {
        return std::make_unique<TraceArrivals>(std::move(times));
    }

    machine::MachineConfig mcfg_;
    std::unique_ptr<machine::Machine> machine_;
    std::unique_ptr<sim::Engine> engine_;
    machine::Pid fgPid_ = 0;
};

TEST_F(ServeDriverTest, ServesEveryRequestOfALightTrace)
{
    ServeDriverConfig dcfg;
    dcfg.fgPid = fgPid_;
    // Arrivals 1 s apart, service ~0.47 s: no queueing.
    ServeDriver driver(*engine_, *machine_,
                       traceProcess({Time::sec(0.5), Time::sec(1.5),
                                     Time::sec(2.5)}),
                       dcfg);
    driver.start();
    drain(driver);

    EXPECT_EQ(driver.arrivals(), 3u);
    EXPECT_EQ(driver.completed(), 3u);
    EXPECT_EQ(driver.dropped(), 0u);
    EXPECT_EQ(driver.shed(), 0u);
    ASSERT_EQ(driver.requests().size(), 3u);
    for (const Request &req : driver.requests()) {
        EXPECT_EQ(req.outcome, RequestOutcome::Completed);
        EXPECT_GE(req.started, req.arrived);
        EXPECT_GT(req.finished, req.started);
        EXPECT_NEAR(req.serviceTime().sec(), 0.47, 0.15);
    }
    // Uncontended: each request starts at its arrival, and the queue
    // never holds more than the request being dispatched.
    EXPECT_EQ(driver.requests()[0].started, Time::sec(0.5));
    EXPECT_LE(driver.maxQueueDepth(), 1u);
    EXPECT_EQ(driver.measuredStats().count(), 3u);
}

TEST_F(ServeDriverTest, PausesFgWhileIdle)
{
    ServeDriverConfig dcfg;
    dcfg.fgPid = fgPid_;
    ServeDriver driver(*engine_, *machine_,
                       traceProcess({Time::sec(1.0)}), dcfg);
    driver.start();
    engine_->runUntil(Time::sec(0.5));
    // No arrival yet: the FG core retires nothing.
    EXPECT_DOUBLE_EQ(machine_->readCounters(0).instructions, 0.0);
    drain(driver);
    EXPECT_EQ(driver.completed(), 1u);
    // Idle again after the queue drained.
    double doneInstr = machine_->readCounters(0).instructions;
    engine_->runFor(Time::sec(1.0));
    EXPECT_DOUBLE_EQ(machine_->readCounters(0).instructions, doneInstr);
}

TEST_F(ServeDriverTest, BoundedQueueDropsWhenFull)
{
    ServeDriverConfig dcfg;
    dcfg.fgPid = fgPid_;
    dcfg.queueCapacity = 2;
    // A burst of 5 near-simultaneous arrivals: 1 in service, 2 queued,
    // 2 dropped.
    ServeDriver driver(
        *engine_, *machine_,
        traceProcess({Time::ms(10.0), Time::ms(11.0), Time::ms(12.0),
                      Time::ms(13.0), Time::ms(14.0)}),
        dcfg);
    driver.start();
    drain(driver);

    EXPECT_EQ(driver.arrivals(), 5u);
    EXPECT_EQ(driver.completed(), 3u);
    EXPECT_EQ(driver.dropped(), 2u);
    size_t droppedSeen = 0;
    for (const Request &req : driver.requests())
        if (req.outcome == RequestOutcome::Dropped) {
            ++droppedSeen;
            EXPECT_TRUE(req.started.isNever());
            EXPECT_TRUE(req.finished.isNever());
        }
    EXPECT_EQ(droppedSeen, 2u);
    EXPECT_EQ(driver.maxQueueDepth(), 2u);
}

TEST_F(ServeDriverTest, StaticAdmissionShedsBeyondCap)
{
    ServeDriverConfig dcfg;
    dcfg.fgPid = fgPid_;
    ServeDriver driver(
        *engine_, *machine_,
        traceProcess({Time::ms(10.0), Time::ms(11.0), Time::ms(12.0),
                      Time::ms(13.0)}),
        dcfg, nullptr, std::make_unique<StaticAdmission>(2));
    driver.start();
    drain(driver);

    // Cap 2 = one in service + one queued; the rest are shed.
    EXPECT_EQ(driver.completed(), 2u);
    EXPECT_EQ(driver.shed(), 2u);
    EXPECT_EQ(driver.dropped(), 0u);
    for (const Request &req : driver.requests()) {
        if (req.outcome == RequestOutcome::Shed) {
            EXPECT_TRUE(req.started.isNever());
        }
    }
    ASSERT_NE(driver.admission(), nullptr);
    EXPECT_STREQ(driver.admission()->name(), "static");
}

TEST_F(ServeDriverTest, WarmupExcludesEarlyRequestsFromStats)
{
    ServeDriverConfig dcfg;
    dcfg.fgPid = fgPid_;
    dcfg.warmup = Time::sec(2.0);
    ServeDriver driver(*engine_, *machine_,
                       traceProcess({Time::sec(0.5), Time::sec(1.5),
                                     Time::sec(2.5), Time::sec(3.5)}),
                       dcfg);
    driver.start();
    drain(driver);

    EXPECT_EQ(driver.completed(), 4u);
    // Only the two post-warmup arrivals are measured.
    EXPECT_EQ(driver.measuredStats().count(), 2u);
}

TEST_F(ServeDriverTest, HorizonCutsOffAnInfiniteProcess)
{
    ServeDriverConfig dcfg;
    dcfg.fgPid = fgPid_;
    dcfg.horizon = Time::sec(5.0);
    ServeDriver driver(*engine_, *machine_,
                       makeArrivalProcess(
                           [] {
                               ArrivalSpec spec;
                               spec.rate = 1.0;
                               return spec;
                           }(),
                           42),
                       dcfg);
    driver.start();
    drain(driver);
    uint64_t arrivals = driver.arrivals();
    EXPECT_GT(arrivals, 0u);
    // Past the horizon nothing more arrives.
    engine_->runFor(Time::sec(5.0));
    EXPECT_EQ(driver.arrivals(), arrivals);
    for (const Request &req : driver.requests())
        EXPECT_LE(req.arrived, Time::sec(5.0));
}

TEST_F(ServeDriverTest, StopCancelsPendingArrival)
{
    ServeDriverConfig dcfg;
    dcfg.fgPid = fgPid_;
    ServeDriver driver(*engine_, *machine_,
                       traceProcess({Time::sec(1.0), Time::sec(10.0)}),
                       dcfg);
    driver.start();
    engine_->runUntil(Time::sec(2.0));
    EXPECT_EQ(driver.arrivals(), 1u);
    driver.stop();
    engine_->runUntil(Time::sec(12.0));
    EXPECT_EQ(driver.arrivals(), 1u);
    EXPECT_TRUE(driver.done());
}

TEST_F(ServeDriverTest, OnCompleteCallbackFires)
{
    ServeDriverConfig dcfg;
    dcfg.fgPid = fgPid_;
    ServeDriver driver(*engine_, *machine_,
                       traceProcess({Time::sec(0.5), Time::sec(1.5)}),
                       dcfg);
    size_t calls = 0;
    driver.setOnComplete([&](const Request &req) {
        ++calls;
        EXPECT_EQ(req.outcome, RequestOutcome::Completed);
    });
    driver.start();
    drain(driver);
    EXPECT_EQ(calls, 2u);
}

TEST(FormatRequestLogTest, RendersOneLinePerRequest)
{
    Request completed;
    completed.id = 0;
    completed.arrived = Time::sec(1.0);
    completed.started = Time::sec(1.5);
    completed.finished = Time::sec(2.0);
    completed.queueDepth = 1;
    completed.outcome = RequestOutcome::Completed;
    Request dropped;
    dropped.id = 1;
    dropped.arrived = Time::sec(1.25);
    dropped.queueDepth = 3;
    dropped.outcome = RequestOutcome::Dropped;

    std::string log = formatRequestLog({completed, dropped});
    EXPECT_NE(log.find("R id=0 t=1.000000 q=1 completed "
                       "s=1.500000 f=2.000000"),
              std::string::npos)
        << log;
    EXPECT_NE(log.find("R id=1 t=1.250000 q=3 dropped"),
              std::string::npos)
        << log;
    // Rejected requests carry no start/finish fields.
    EXPECT_EQ(log.find("s=", log.find("dropped")), std::string::npos);

    // The precise rendering round-trips doubles bit-exactly.
    std::string precise = formatRequestLog({completed}, true);
    EXPECT_NE(precise.find("t=1"), std::string::npos);
    EXPECT_EQ(formatRequestLog({completed}, true), precise);
}

} // namespace
} // namespace dirigent::serve
