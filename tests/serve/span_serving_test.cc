/**
 * @file
 * Span substrate wired through a real serving run: determinism of the
 * serialized artifact, the no-perturbation guarantee (attaching a
 * SpanCollector must not move a single request), stage/outcome
 * consistency with the request log, and burn-rate verdicts landing in
 * the run manifest.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "dirigent/scheme_spec.h"
#include "harness/experiment.h"
#include "harness/serving.h"
#include "obs/json.h"
#include "obs/recorder.h"
#include "obs/span.h"
#include "serve/driver.h"
#include "serve/spec.h"
#include "workload/mix.h"

namespace dirigent::harness {
namespace {

struct Rig
{
    HarnessConfig hc;
    ExperimentRunner runner;
    workload::WorkloadMix mix;
    std::map<std::string, Time> deadlines;
    serve::ServeSpec spec;

    Rig()
        : hc(fastConfig()), runner(hc),
          mix(workload::makeMix({"ferret"},
                                workload::BgSpec::single("lbm")))
    {
        auto baseline = runner.run(mix, core::Scheme::Baseline, {});
        deadlines = runner.deadlinesFromBaseline(baseline);
        spec.arrivals.kind = serve::ArrivalKind::Poisson;
        spec.arrivals.rate = 1.0;
        spec.queueCapacity = 16;
        spec.slos = {{0.99, 10.0}};
        spec.horizonSec = 12.0;
        spec.warmupSec = 1.0;
    }

    static HarnessConfig
    fastConfig()
    {
        HarnessConfig cfg;
        cfg.executions = 2;
        cfg.warmup = 1;
        cfg.seed = 20160402;
        return cfg;
    }

    ServingRunResult
    run(const RunOptions &opts = RunOptions{})
    {
        return runner.runServing(mix,
                                 core::schemeSpec(
                                     core::Scheme::Dirigent),
                                 spec, deadlines, opts);
    }
};

size_t
totalRequests(const ServingRunResult &r)
{
    size_t n = 0;
    for (const auto &slot : r.perFgRequests)
        n += slot.size();
    return n;
}

TEST(SpanServingTest, RepeatRunsSerializeByteIdentically)
{
    Rig rig;
    obs::SpanCollector first(rig.runner.mixSeed(rig.mix));
    obs::SpanCollector second(rig.runner.mixSeed(rig.mix));
    RunOptions opts;
    opts.spans = &first;
    rig.run(opts);
    opts.spans = &second;
    rig.run(opts);
    ASSERT_FALSE(first.spans().empty());
    EXPECT_EQ(obs::spansToJson(first.spans(), first.runSeed()),
              obs::spansToJson(second.spans(), second.runSeed()));
}

TEST(SpanServingTest, AttachingSpansDoesNotPerturbTheRun)
{
    Rig rig;
    ServingRunResult detached = rig.run();

    obs::SpanCollector spans(rig.runner.mixSeed(rig.mix));
    RunOptions opts;
    opts.spans = &spans;
    ServingRunResult instrumented = rig.run(opts);

    EXPECT_EQ(detached.arrivals, instrumented.arrivals);
    EXPECT_EQ(detached.completed, instrumented.completed);
    EXPECT_EQ(detached.dropped, instrumented.dropped);
    EXPECT_EQ(detached.shed, instrumented.shed);
    EXPECT_EQ(detached.maxQueueDepth, instrumented.maxQueueDepth);
    EXPECT_EQ(detached.stats.samples(), instrumented.stats.samples());
    ASSERT_EQ(detached.perFgRequests.size(),
              instrumented.perFgRequests.size());
    for (size_t slot = 0; slot < detached.perFgRequests.size(); ++slot)
        EXPECT_EQ(serve::formatRequestLog(detached.perFgRequests[slot],
                                          true),
                  serve::formatRequestLog(
                      instrumented.perFgRequests[slot], true))
            << "slot " << slot;
}

TEST(SpanServingTest, SpansMirrorTheRequestLog)
{
    Rig rig;
    obs::SpanCollector spans(rig.runner.mixSeed(rig.mix));
    RunOptions opts;
    opts.spans = &spans;
    ServingRunResult result = rig.run(opts);

    // runServing finalizes an attached collector before returning.
    EXPECT_TRUE(spans.finalized());
    EXPECT_EQ(spans.spans().size(), totalRequests(result));
    ASSERT_FALSE(spans.spans().empty());

    size_t completed = 0, rejected = 0;
    for (const obs::Span &span : spans.spans()) {
        if (span.outcome == "completed") {
            ++completed;
            ASSERT_EQ(span.stages.size(), 2u);
            EXPECT_EQ(span.stages[0].name, "queue_wait");
            EXPECT_EQ(span.stages[1].name, "service");
            // Stages tile [arrived, finished] exactly.
            EXPECT_DOUBLE_EQ(span.stages[0].startSec, span.arrivedSec);
            EXPECT_DOUBLE_EQ(span.stages[0].endSec,
                             span.stages[1].startSec);
            EXPECT_DOUBLE_EQ(span.stages[1].endSec, span.finishedSec);
            EXPECT_NEAR(span.stages[0].durationSec() +
                            span.stages[1].durationSec(),
                        span.e2eSec(), 1e-12);
        } else {
            ++rejected;
            EXPECT_TRUE(span.stages.empty());
            EXPECT_TRUE(std::isnan(span.e2eSec()));
        }
    }
    EXPECT_EQ(completed, result.completed);
    EXPECT_EQ(rejected, result.dropped + result.shed);
}

TEST(SpanServingTest, ManifestCarriesBurnRateVerdicts)
{
    Rig rig;
    obs::Recorder recorder;
    RunOptions opts;
    opts.recorder = &recorder;
    ServingRunResult result = rig.run(opts);
    ASSERT_GT(result.arrivals, 0u);

    const obs::RequestSummary &summary =
        recorder.manifest().requests;
    ASSERT_TRUE(summary.present);
    // One report per FG slot plus the "all" rollup, per SLO target.
    ASSERT_EQ(summary.burnRates.size(),
              rig.spec.slos.size() * (rig.mix.fgCount() + 1));
    EXPECT_EQ(summary.burnRates.front().scope, "fg0");
    EXPECT_EQ(summary.burnRates.back().scope, "all");
    for (const auto &burn : summary.burnRates) {
        EXPECT_DOUBLE_EQ(burn.budget, 1.0 - 0.99);
        EXPECT_DOUBLE_EQ(burn.targetSec, 10.0);
        EXPECT_GT(burn.windows, 0u);
        EXPECT_LE(burn.errors, burn.total);
    }
}

} // namespace
} // namespace dirigent::harness
