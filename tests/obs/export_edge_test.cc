/**
 * @file
 * Edge cases for the exporters: RFC 4180 CSV escaping with hostile
 * series names, and the JSON-subset parser + schema validator fed
 * hostile documents (duplicate keys, truncated arrays, non-UTF-8
 * bytes, schema violations with precise paths).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/export.h"
#include "obs/json.h"

namespace dirigent::obs {
namespace {

TEST(CsvEscapeTest, PlainFieldsPassThroughUnquoted)
{
    EXPECT_EQ(csvEscape("fg0.response_s"), "fg0.response_s");
    EXPECT_EQ(csvEscape(""), "");
    EXPECT_EQ(csvEscape("3.14"), "3.14");
}

TEST(CsvEscapeTest, SeparatorsAndQuotesForceQuoting)
{
    EXPECT_EQ(csvEscape("a,b"), "\"a,b\"");
    EXPECT_EQ(csvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(csvEscape("line\nbreak"), "\"line\nbreak\"");
    EXPECT_EQ(csvEscape("cr\rfield"), "\"cr\rfield\"");
    EXPECT_EQ(csvEscape("\""), "\"\"\"\"");
}

TEST(CsvEscapeTest, HostileSeriesNamesStayOneRecordPerSample)
{
    RunData run;
    Series s;
    s.name = "evil,name\"with\nbreaks";
    s.unit = "ways";
    s.times = {1.0};
    s.values = {2.0};
    run.series.push_back(s);

    std::ostringstream os;
    writeSeriesCsv(os, run);
    std::string text = os.str();
    // Header + one sample row: the embedded newline must stay inside
    // the quoted field, not start a new record.
    EXPECT_NE(text.find("\"evil,name\"\"with\nbreaks\",ways,"),
              std::string::npos);
    size_t quotes = 0;
    for (char ch : text)
        quotes += ch == '"' ? 1 : 0;
    EXPECT_EQ(quotes % 2, 0u);
}

TEST(JsonHostileTest, DuplicateKeysKeepTheLastValue)
{
    auto doc = parseJson("{\"a\": 1, \"a\": 2, \"b\": 3}");
    ASSERT_TRUE(doc.has_value());
    EXPECT_DOUBLE_EQ(doc->numberOr("a", 0.0), 2.0);
    EXPECT_DOUBLE_EQ(doc->numberOr("b", 0.0), 3.0);
}

TEST(JsonHostileTest, TruncatedDocumentsReportAnOffset)
{
    std::string error;
    EXPECT_FALSE(parseJson("[1, 2,", &error).has_value());
    EXPECT_NE(error.find("offset"), std::string::npos);
    EXPECT_FALSE(parseJson("{\"a\": [1, 2", &error).has_value());
    EXPECT_FALSE(parseJson("{\"a\": ", &error).has_value());
    EXPECT_FALSE(parseJson("", &error).has_value());
    // Trailing garbage after the top-level value is also an error.
    EXPECT_FALSE(parseJson("{} trailing", &error).has_value());
}

TEST(JsonHostileTest, NonUtf8BytesDoNotBreakTheStringModel)
{
    // Raw ISO-8859-1 bytes inside a string literal: the parser treats
    // strings as byte sequences, so the bytes survive round-trip.
    std::string text = "{\"name\": \"caf\xe9\x80\"}";
    auto doc = parseJson(text);
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->stringOr("name", ""), "caf\xe9\x80");
    // And jsonQuote escapes control bytes so re-emission stays valid.
    std::string quoted = jsonQuote(std::string("a\x01") + "\xff" + "b");
    auto again = parseJson("{\"k\": " + quoted + "}");
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->stringOr("k", ""), std::string("a\x01") + "\xff" + "b");
}

JsonValue
mustParse(const std::string &text)
{
    std::string error;
    auto doc = parseJson(text, &error);
    EXPECT_TRUE(doc.has_value()) << error;
    return doc.has_value() ? *doc : JsonValue{};
}

TEST(SchemaValidatorTest, AcceptsConformingDocuments)
{
    JsonValue schema = mustParse(R"({
        "type": "object",
        "required": ["schema", "spans"],
        "properties": {
            "schema": {"type": "string", "enum": ["dirigent-spans-v1"]},
            "spans": {"type": "array", "minItems": 1,
                      "items": {"type": "object",
                                "required": ["node"],
                                "properties": {"node": {"type": "integer"}}}}
        }
    })");
    JsonValue doc = mustParse(
        R"({"schema": "dirigent-spans-v1", "spans": [{"node": 0}]})");
    EXPECT_EQ(validateAgainstSchema(doc, schema), "");
}

TEST(SchemaValidatorTest, ReportsTheViolationPath)
{
    JsonValue schema = mustParse(R"({
        "type": "object",
        "required": ["spans"],
        "properties": {
            "spans": {"type": "array",
                      "items": {"type": "object",
                                "required": ["node"]}}
        }
    })");

    JsonValue missing = mustParse(R"({"other": 1})");
    std::string err = validateAgainstSchema(missing, schema);
    EXPECT_NE(err.find("spans"), std::string::npos);

    JsonValue badItem = mustParse(R"({"spans": [{"node": 0}, {}]})");
    err = validateAgainstSchema(badItem, schema);
    EXPECT_NE(err.find("/spans/1"), std::string::npos);

    JsonValue notArray = mustParse(R"({"spans": 3})");
    EXPECT_NE(validateAgainstSchema(notArray, schema).find("/spans"),
              std::string::npos);
}

TEST(SchemaValidatorTest, UnionTypesAndEnumsAreEnforced)
{
    JsonValue schema = mustParse(R"({
        "type": "object",
        "properties": {
            "e2e_s": {"type": ["number", "null"]},
            "outcome": {"type": "string",
                        "enum": ["completed", "dropped", "shed"]}
        }
    })");
    EXPECT_EQ(validateAgainstSchema(
                  mustParse(R"({"e2e_s": null, "outcome": "shed"})"),
                  schema),
              "");
    EXPECT_EQ(validateAgainstSchema(
                  mustParse(R"({"e2e_s": 1.5, "outcome": "completed"})"),
                  schema),
              "");
    EXPECT_NE(validateAgainstSchema(
                  mustParse(R"({"e2e_s": "soon"})"), schema),
              "");
    EXPECT_NE(validateAgainstSchema(
                  mustParse(R"({"outcome": "lost"})"), schema),
              "");
}

TEST(SchemaValidatorTest, MinItemsCatchesTruncatedArrays)
{
    JsonValue schema = mustParse(
        R"({"type": "array", "minItems": 2, "items": {"type": "number"}})");
    EXPECT_EQ(validateAgainstSchema(mustParse("[1, 2]"), schema), "");
    EXPECT_NE(validateAgainstSchema(mustParse("[1]"), schema), "");
    EXPECT_NE(validateAgainstSchema(mustParse("[1, \"x\"]"), schema), "");
}

} // namespace
} // namespace dirigent::obs
