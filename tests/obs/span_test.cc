/**
 * @file
 * Span substrate units: deterministic trace/span IDs, stage
 * derivation, causal-link windowing, canonical ordering, the JSON
 * round trip, and the fleet-merge aggregator contract.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "obs/json.h"
#include "obs/span.h"

namespace dirigent::obs {
namespace {

core::TraceEvent
event(double tSec, core::TraceAction action, machine::Pid pid,
      double slack, const std::string &detail = "")
{
    core::TraceEvent ev;
    ev.when = Time::sec(tSec);
    ev.action = action;
    ev.fgPid = pid;
    ev.slackRatio = slack;
    ev.detail = detail;
    return ev;
}

TEST(SpanTest, IdsAreDeterministicAndDistinct)
{
    SpanCollector a(1234, 0), b(1234, 0);
    a.recordRequest(0, 7, 0, Time::sec(1.0), Time::sec(1.5),
                    Time::sec(2.0), 0, "completed", 0.0);
    b.recordRequest(0, 7, 0, Time::sec(1.0), Time::sec(1.5),
                    Time::sec(2.0), 0, "completed", 0.0);
    a.finalize();
    b.finalize();
    ASSERT_EQ(a.spans().size(), 1u);
    EXPECT_EQ(a.spans()[0].traceId, b.spans()[0].traceId);
    EXPECT_EQ(a.spans()[0].spanId, b.spans()[0].spanId);
    EXPECT_NE(a.spans()[0].traceId, a.spans()[0].spanId);
    EXPECT_NE(a.spans()[0].traceId, 0u);
    EXPECT_NE(a.spans()[0].spanId, 0u);

    // Any identity-tuple change moves both ids.
    SpanCollector seed(9999, 0), node(1234, 1);
    seed.recordRequest(0, 7, 0, Time::sec(1.0), Time::sec(1.5),
                       Time::sec(2.0), 0, "completed", 0.0);
    node.recordRequest(0, 7, 0, Time::sec(1.0), Time::sec(1.5),
                       Time::sec(2.0), 0, "completed", 0.0);
    seed.finalize();
    node.finalize();
    EXPECT_NE(seed.spans()[0].traceId, a.spans()[0].traceId);
    EXPECT_NE(node.spans()[0].traceId, a.spans()[0].traceId);
}

TEST(SpanTest, CompletedSpanDecomposesIntoQueueWaitAndService)
{
    SpanCollector c(1);
    c.recordRequest(2, 5, 3, Time::sec(1.0), Time::sec(1.25),
                    Time::sec(2.0), 4, "completed", 8.0);
    c.finalize();
    const Span &span = c.spans()[0];
    ASSERT_EQ(span.stages.size(), 2u);
    EXPECT_EQ(span.stages[0].name, "queue_wait");
    EXPECT_DOUBLE_EQ(span.stages[0].startSec, 1.0);
    EXPECT_DOUBLE_EQ(span.stages[0].endSec, 1.25);
    EXPECT_EQ(span.stages[1].name, "service");
    EXPECT_DOUBLE_EQ(span.stages[1].durationSec(), 0.75);
    EXPECT_DOUBLE_EQ(span.e2eSec(), 1.0);
    ASSERT_NE(span.dominantStage(), nullptr);
    EXPECT_EQ(span.dominantStage()->name, "service");
    EXPECT_EQ(span.queueDepth, 4u);
    EXPECT_DOUBLE_EQ(span.admitLimit, 8.0);
}

TEST(SpanTest, RejectedSpanHasNoStagesAndNanLatency)
{
    SpanCollector c(1);
    c.recordRequest(0, 5, 0, Time::sec(3.0), Time::never(),
                    Time::never(), 16, "shed", 2.0);
    c.finalize();
    const Span &span = c.spans()[0];
    EXPECT_TRUE(span.stages.empty());
    EXPECT_TRUE(std::isnan(span.startedSec));
    EXPECT_TRUE(std::isnan(span.finishedSec));
    EXPECT_TRUE(std::isnan(span.e2eSec()));
    EXPECT_EQ(span.dominantStage(), nullptr);
    // A rejection's window collapses to the arrival instant.
    EXPECT_DOUBLE_EQ(span.endSec(), 3.0);
}

TEST(SpanTest, LinksAttachOnlyInsideWindowForMatchingPid)
{
    SpanCollector c(1);
    c.recordRequest(0, 5, 0, Time::sec(1.0), Time::sec(1.2),
                    Time::sec(2.0), 0, "completed", 0.0);
    // Inside the window, matching pid.
    c.recordDecision(
        event(1.5, core::TraceAction::FgToMax, 5, 1.1, "core 0"));
    // Inside the window, global (pid 0) decision.
    c.recordDecision(event(1.6, core::TraceAction::BgThrottled, 0, 0.9));
    // Inside the window, other pid: excluded.
    c.recordDecision(event(1.7, core::TraceAction::FgThrottled, 9, 1.0));
    // Outside the window: excluded.
    c.recordDecision(event(0.5, core::TraceAction::BgBoosted, 0, 1.0));
    c.recordDecision(event(2.5, core::TraceAction::BgPaused, 0, 1.0));
    c.finalize();
    const Span &span = c.spans()[0];
    ASSERT_EQ(span.links.size(), 2u);
    EXPECT_EQ(span.links[0].action, "fg-to-max");
    EXPECT_EQ(span.links[0].pid, 5u);
    EXPECT_EQ(span.links[0].detail, "core 0");
    EXPECT_EQ(span.links[1].action, "bg-throttled");
    EXPECT_EQ(span.links[1].pid, 0u);
}

TEST(SpanTest, FinalizeSortsCanonicallyAndIsIdempotent)
{
    SpanCollector c(1, 0);
    c.recordRequest(1, 5, 0, Time::sec(2.0), Time::sec(2.1),
                    Time::sec(2.5), 0, "completed", 0.0);
    c.recordRequest(0, 4, 1, Time::sec(1.5), Time::sec(1.6),
                    Time::sec(1.9), 0, "completed", 0.0);
    c.recordRequest(0, 4, 0, Time::sec(1.0), Time::sec(1.1),
                    Time::sec(1.4), 0, "completed", 0.0);
    c.finalize();
    ASSERT_EQ(c.spans().size(), 3u);
    EXPECT_EQ(c.spans()[0].fgSlot, 0u);
    EXPECT_EQ(c.spans()[0].requestId, 0u);
    EXPECT_EQ(c.spans()[1].fgSlot, 0u);
    EXPECT_EQ(c.spans()[1].requestId, 1u);
    EXPECT_EQ(c.spans()[2].fgSlot, 1u);

    // Re-finalizing must not re-derive (and thereby duplicate) stages.
    c.finalize();
    EXPECT_EQ(c.spans()[0].stages.size(), 2u);
}

TEST(SpanTest, DecisionsAfterFinalizeAreIgnored)
{
    SpanCollector c(1);
    c.recordRequest(0, 5, 0, Time::sec(1.0), Time::sec(1.2),
                    Time::sec(2.0), 0, "completed", 0.0);
    c.finalize();
    c.recordDecision(event(1.5, core::TraceAction::FgToMax, 5, 1.0));
    EXPECT_TRUE(c.spans()[0].links.empty());
}

TEST(SpanTest, JsonRoundTripPreservesEveryField)
{
    SpanCollector c(42, 3);
    c.recordRequest(1, 6, 9, Time::sec(1.0), Time::sec(1.5),
                    Time::sec(2.25), 7, "completed", 12.5);
    c.recordRequest(0, 5, 2, Time::sec(0.5), Time::never(),
                    Time::never(), 16, "dropped", 0.0);
    c.recordDecision(event(1.75, core::TraceAction::RequestShed, 0,
                           0.5, "fg1"));
    c.finalize();

    std::string text = spansToJson(c.spans(), c.runSeed());
    std::string error;
    auto doc = parseJson(text, &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_EQ(doc->stringOr("schema", ""), "dirigent-spans-v1");
    EXPECT_EQ(doc->stringOr("seed", ""), "42");
    auto parsed = parseSpans(*doc, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    ASSERT_EQ(parsed->size(), c.spans().size());
    for (size_t i = 0; i < parsed->size(); ++i) {
        const Span &a = c.spans()[i];
        const Span &b = (*parsed)[i];
        EXPECT_EQ(a.traceId, b.traceId);
        EXPECT_EQ(a.spanId, b.spanId);
        EXPECT_EQ(a.node, b.node);
        EXPECT_EQ(a.fgSlot, b.fgSlot);
        EXPECT_EQ(a.pid, b.pid);
        EXPECT_EQ(a.requestId, b.requestId);
        EXPECT_DOUBLE_EQ(a.arrivedSec, b.arrivedSec);
        EXPECT_EQ(std::isnan(a.startedSec), std::isnan(b.startedSec));
        if (!std::isnan(a.startedSec)) {
            EXPECT_DOUBLE_EQ(a.startedSec, b.startedSec);
        }
        EXPECT_EQ(a.queueDepth, b.queueDepth);
        EXPECT_DOUBLE_EQ(a.admitLimit, b.admitLimit);
        EXPECT_EQ(a.outcome, b.outcome);
        ASSERT_EQ(a.stages.size(), b.stages.size());
        for (size_t s = 0; s < a.stages.size(); ++s) {
            EXPECT_EQ(a.stages[s].name, b.stages[s].name);
            EXPECT_DOUBLE_EQ(a.stages[s].startSec, b.stages[s].startSec);
            EXPECT_DOUBLE_EQ(a.stages[s].endSec, b.stages[s].endSec);
        }
        ASSERT_EQ(a.links.size(), b.links.size());
        for (size_t l = 0; l < a.links.size(); ++l) {
            EXPECT_DOUBLE_EQ(a.links[l].tSec, b.links[l].tSec);
            EXPECT_EQ(a.links[l].action, b.links[l].action);
            EXPECT_EQ(a.links[l].pid, b.links[l].pid);
            EXPECT_DOUBLE_EQ(a.links[l].value, b.links[l].value);
            EXPECT_EQ(a.links[l].detail, b.links[l].detail);
        }
    }
}

TEST(SpanTest, MergeConcatenatesNodesInOrder)
{
    SpanCollector node0(7, 0), node1(7, 1);
    node0.recordRequest(0, 5, 0, Time::sec(1.0), Time::sec(1.1),
                        Time::sec(1.5), 0, "completed", 0.0);
    node1.recordRequest(0, 5, 0, Time::sec(0.5), Time::sec(0.6),
                        Time::sec(0.9), 0, "completed", 0.0);

    SpanCollector fleet(7, 0);
    fleet.merge(node0);
    fleet.merge(node1);
    EXPECT_TRUE(fleet.finalized());
    ASSERT_EQ(fleet.spans().size(), 2u);
    EXPECT_EQ(fleet.spans()[0].node, 0u);
    EXPECT_EQ(fleet.spans()[1].node, 1u);
    // Same (fg, request) tuple on different nodes: distinct traces.
    EXPECT_NE(fleet.spans()[0].traceId, fleet.spans()[1].traceId);
    // Merged spans arrive finalized: stages derived exactly once.
    EXPECT_EQ(fleet.spans()[0].stages.size(), 2u);
    fleet.finalize();
    EXPECT_EQ(fleet.spans()[0].stages.size(), 2u);
}

} // namespace
} // namespace dirigent::obs
