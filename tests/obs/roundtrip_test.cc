/**
 * @file
 * Round-trip tests of the trace exporters: a recorded run exported as
 * the combined Perfetto/exact document must parse back into identical
 * series/events/slices (%.17g exactness), and the document must
 * validate against the checked-in JSON schemas that CI also enforces
 * (tools/schema/).
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "harness/experiment.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/recorder.h"
#include "workload/mix.h"

#ifndef DIRIGENT_SCHEMA_DIR
#error "DIRIGENT_SCHEMA_DIR must point at tools/schema"
#endif

namespace dirigent::obs {
namespace {

/** One small recorded run shared by every test in this file. */
const Recorder &
recordedRun()
{
    static Recorder *rec = [] {
        harness::HarnessConfig cfg;
        cfg.executions = 4;
        cfg.warmup = 1;
        cfg.seed = 31337;
        harness::ExperimentRunner runner(cfg);
        auto mix = workload::makeMix({"ferret"},
                                     workload::BgSpec::single("rs"));
        auto baseline = runner.run(mix, core::Scheme::Baseline, {});
        auto deadlines = runner.deadlinesFromBaseline(baseline);
        auto *r = new Recorder();
        harness::RunOptions opts;
        opts.recorder = r;
        runner.run(mix, core::Scheme::Dirigent, deadlines, opts);
        r->manifest().tool = "roundtrip_test";
        r->manifest().version = buildVersion();
        return r;
    }();
    return *rec;
}

std::string
exportedDocument()
{
    std::ostringstream os;
    writePerfettoTrace(os, recordedRun());
    return os.str();
}

JsonValue
loadSchema(const std::string &name)
{
    std::ifstream in(std::string(DIRIGENT_SCHEMA_DIR) + "/" + name);
    EXPECT_TRUE(in) << name;
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    auto schema = parseJson(buf.str(), &error);
    EXPECT_TRUE(schema) << error;
    return *schema;
}

TEST(RoundTrip, ExportParsesBackIdentically)
{
    const Recorder &rec = recordedRun();
    std::string doc = exportedDocument();

    std::string error;
    auto root = parseJson(doc, &error);
    ASSERT_TRUE(root) << error;
    auto run = parseRun(*root, &error);
    ASSERT_TRUE(run) << error;

    // Series round-trip bit-exactly (%.17g → strtod).
    ASSERT_EQ(run->series.size(), rec.series().size());
    for (size_t i = 0; i < run->series.size(); ++i) {
        const Series &in = rec.series()[i];
        const Series &out = run->series[i];
        EXPECT_EQ(out.name, in.name);
        EXPECT_EQ(out.unit, in.unit);
        ASSERT_EQ(out.times.size(), in.times.size()) << in.name;
        for (size_t k = 0; k < in.times.size(); ++k) {
            EXPECT_EQ(out.times[k], in.times[k]) << in.name;
            EXPECT_EQ(out.values[k], in.values[k]) << in.name;
        }
    }

    // Events and slices survive with full fidelity.
    ASSERT_EQ(run->events.size(), rec.events().size());
    for (size_t i = 0; i < run->events.size(); ++i) {
        EXPECT_EQ(run->events[i].when.sec(),
                  rec.events()[i].when.sec());
        EXPECT_EQ(run->events[i].category, rec.events()[i].category);
        EXPECT_EQ(run->events[i].name, rec.events()[i].name);
        EXPECT_EQ(run->events[i].detail, rec.events()[i].detail);
    }
    ASSERT_EQ(run->slices.size(), rec.slices().size());
    for (size_t i = 0; i < run->slices.size(); ++i) {
        EXPECT_EQ(run->slices[i].start.sec(),
                  rec.slices()[i].start.sec());
        EXPECT_EQ(run->slices[i].end.sec(), rec.slices()[i].end.sec());
        EXPECT_EQ(run->slices[i].missed, rec.slices()[i].missed);
        EXPECT_EQ(run->slices[i].executionIndex,
                  rec.slices()[i].executionIndex);
    }

    // Manifest identity round-trips (u64 seed via decimal string).
    EXPECT_EQ(run->manifest.seed, rec.manifest().seed);
    EXPECT_EQ(run->manifest.mixName, rec.manifest().mixName);
    EXPECT_EQ(run->manifest.scheme, rec.manifest().scheme);
}

TEST(RoundTrip, SecondExportIsByteIdentical)
{
    EXPECT_EQ(exportedDocument(), exportedDocument());
}

TEST(RoundTrip, ValidatesAgainstTraceSchema)
{
    auto root = parseJson(exportedDocument());
    ASSERT_TRUE(root);
    EXPECT_EQ(validateAgainstSchema(*root, loadSchema("trace.schema.json")),
              "");
}

TEST(RoundTrip, ManifestValidatesAgainstManifestSchema)
{
    auto manifest = parseJson(recordedRun().manifest().toJson());
    ASSERT_TRUE(manifest);
    EXPECT_EQ(validateAgainstSchema(*manifest,
                                    loadSchema("manifest.schema.json")),
              "");
}

TEST(RoundTrip, ManifestU64FieldsSurviveExactly)
{
    RunManifest m;
    m.tool = "t";
    m.seed = 0xFFFFFFFFFFFFFFFFull;          // > 2^53: needs strings
    m.faultPlanHash = 0x8000000000000001ull;
    auto doc = parseJson(m.toJson());
    ASSERT_TRUE(doc);
    RunManifest back = RunManifest::fromJson(*doc);
    EXPECT_EQ(back.seed, m.seed);
    EXPECT_EQ(back.faultPlanHash, m.faultPlanHash);
}

TEST(RoundTrip, CsvExportMatchesSeriesData)
{
    const Recorder &rec = recordedRun();
    std::ostringstream os;
    writeSeriesCsv(os, rec);
    std::string csv = os.str();
    EXPECT_EQ(csv.rfind("series,unit,time_s,value\n", 0), 0u);
    size_t rows = 0;
    for (char c : csv)
        rows += c == '\n' ? 1 : 0;
    size_t samples = 0;
    for (const auto &s : rec.series())
        samples += s.times.size();
    EXPECT_EQ(rows, samples + 1); // header + one row per sample
}

} // namespace
} // namespace dirigent::obs
