/**
 * @file
 * The detached-recorder no-op guarantee: attaching a telemetry
 * recorder must not change simulated behaviour in any way. Verified by
 * fingerprinting runs with the golden-trace recorder (full %.17g
 * precision) with and without a telemetry recorder attached — the
 * traces must be byte-identical. This is what keeps the checked-in
 * golden traces valid whether or not telemetry ships in a build.
 */

#include <gtest/gtest.h>

#include "dirigent/trace.h"
#include "harness/experiment.h"
#include "obs/recorder.h"
#include "workload/mix.h"

namespace dirigent::obs {
namespace {

harness::HarnessConfig
fastConfig()
{
    harness::HarnessConfig cfg;
    cfg.executions = 4;
    cfg.warmup = 1;
    cfg.seed = 24601;
    return cfg;
}

/** Golden fingerprint of one Dirigent run, optionally instrumented. */
std::string
fingerprint(bool withRecorder)
{
    harness::ExperimentRunner runner(fastConfig());
    auto mix = workload::makeMix({"streamcluster"},
                                 workload::BgSpec::single("pca"));
    auto baseline = runner.run(mix, core::Scheme::Baseline, {});
    auto deadlines = runner.deadlinesFromBaseline(baseline);

    core::GoldenTraceRecorder golden;
    Recorder telemetry;
    harness::RunOptions opts;
    opts.golden = &golden;
    if (withRecorder)
        opts.recorder = &telemetry;
    runner.run(mix, core::Scheme::Dirigent, deadlines, opts);
    if (withRecorder) {
        // Sanity: the recorder really was attached and captured data.
        EXPECT_FALSE(telemetry.series().empty());
        EXPECT_FALSE(telemetry.slices().empty());
    }
    return golden.preciseText();
}

TEST(RecorderNoop, AttachedRecorderLeavesGoldenTraceByteIdentical)
{
    std::string detached = fingerprint(false);
    std::string attached = fingerprint(true);
    ASSERT_FALSE(detached.empty());
    EXPECT_EQ(detached, attached);
}

TEST(RecorderNoop, BaselineRunsAreAlsoUnperturbed)
{
    harness::ExperimentRunner runner(fastConfig());
    auto mix = workload::makeMix({"ferret"},
                                 workload::BgSpec::single("rs"));

    auto plain = [&](harness::RunOptions opts) {
        core::GoldenTraceRecorder golden;
        opts.golden = &golden;
        runner.run(mix, core::Scheme::Baseline, {}, opts);
        return golden.preciseText();
    };

    Recorder telemetry;
    harness::RunOptions withRec;
    withRec.recorder = &telemetry;
    EXPECT_EQ(plain(harness::RunOptions{}), plain(withRec));
}

} // namespace
} // namespace dirigent::obs
