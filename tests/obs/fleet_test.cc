/**
 * @file
 * Fleet telemetry units: snapshot capture, the node-order fold,
 * Prometheus exposition (including the byte-identical round-trip
 * contract), and the SLO error-budget / burn-rate engine.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "obs/fleet.h"
#include "obs/metrics.h"
#include "obs/recorder.h"

namespace dirigent::obs {
namespace {

MetricsRegistry &
makeRegistry(MetricsRegistry &reg, uint64_t completions, double ways,
             std::vector<double> observations)
{
    reg.counter("run.fg_completions").add(completions);
    reg.gauge("cat.final_fg_ways").set(ways);
    Histogram &h = reg.histogram("fg0.response_s");
    for (double v : observations)
        h.observe(v);
    return reg;
}

TEST(FleetMetricsTest, SnapshotCapturesSortedInstruments)
{
    MetricsRegistry reg;
    makeRegistry(reg, 3, 2.0, {0.5, 1.5});
    MetricsSnapshot snap = MetricsSnapshot::capture(reg);
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(snap.counters[0].first, "run.fg_completions");
    EXPECT_EQ(snap.counters[0].second, 3u);
    ASSERT_EQ(snap.gauges.size(), 1u);
    EXPECT_DOUBLE_EQ(snap.gauges[0].second, 2.0);
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].second.count, 2u);
    EXPECT_DOUBLE_EQ(snap.histograms[0].second.sum, 2.0);
}

TEST(FleetMetricsTest, FoldSumsCountersAndMergesHistograms)
{
    MetricsRegistry a, b;
    makeRegistry(a, 3, 2.0, {0.5, 1.5});
    makeRegistry(b, 5, 4.0, {0.5});
    FleetMetrics fleet;
    fleet.addNode(0, a);
    fleet.addNode(1, b);

    ASSERT_EQ(fleet.perNode.size(), 2u);
    ASSERT_EQ(fleet.fleet.counters.size(), 1u);
    EXPECT_EQ(fleet.fleet.counters[0].second, 8u);
    // Gauges are per-node readings: the rollup carries none.
    EXPECT_TRUE(fleet.fleet.gauges.empty());
    ASSERT_EQ(fleet.fleet.histograms.size(), 1u);
    EXPECT_EQ(fleet.fleet.histograms[0].second.count, 3u);
    EXPECT_DOUBLE_EQ(fleet.fleet.histograms[0].second.sum, 2.5);
    uint64_t binTotal = 0;
    for (const auto &bin : fleet.fleet.histograms[0].second.bins)
        binTotal += bin.count;
    EXPECT_EQ(binTotal, 3u);
}

TEST(FleetMetricsTest, PrometheusRoundTripIsByteIdentical)
{
    MetricsRegistry a, b;
    makeRegistry(a, 3, 2.0, {0.001, 0.75, 9.5});
    makeRegistry(b, 5, 4.0, {2.25});
    FleetMetrics fleet;
    fleet.addNode(0, a);
    fleet.addNode(1, b);

    std::string text = renderPrometheus(fleet);
    ASSERT_FALSE(text.empty());
    // Names are sanitized and prefixed.
    EXPECT_NE(text.find("# TYPE dirigent_run_fg_completions counter"),
              std::string::npos);
    EXPECT_NE(text.find("dirigent_run_fg_completions{node=\"0\"} 3"),
              std::string::npos);
    // Unlabelled fleet rollup line.
    EXPECT_NE(text.find("\ndirigent_run_fg_completions 8\n"),
              std::string::npos);
    EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);

    std::string error;
    auto doc = parsePrometheus(text, &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_EQ(renderPrometheus(*doc), text);

    // Rendering is a pure function of the fold.
    FleetMetrics again;
    again.addNode(0, a);
    again.addNode(1, b);
    EXPECT_EQ(renderPrometheus(again), text);
}

TEST(FleetMetricsTest, PrometheusParserRejectsOrphanSamples)
{
    std::string error;
    EXPECT_FALSE(
        parsePrometheus("dirigent_orphan 1\n", &error).has_value());
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(
        parsePrometheus("# TYPE dirigent_x counter\ndirigent_x\n")
            .has_value());
}

TEST(FleetMetricsTest, HistogramCountsSurviveTheExposition)
{
    MetricsRegistry reg;
    makeRegistry(reg, 1, 1.0, {0.5, 0.5, 123.0});
    FleetMetrics fleet;
    fleet.addNode(0, reg);
    auto doc = parsePrometheus(renderPrometheus(fleet));
    ASSERT_TRUE(doc.has_value());
    auto counts = doc->find("dirigent_fg0_response_s_count");
    // One per-node sample + one fleet-rollup sample.
    ASSERT_EQ(counts.size(), 2u);
    EXPECT_DOUBLE_EQ(counts[0]->value, 3.0);
    EXPECT_DOUBLE_EQ(counts[1]->value, 3.0);
}

RequestRecord
request(double arrivedSec, const std::string &outcome,
        double responseSec, unsigned fgSlot = 0)
{
    RequestRecord r;
    r.fgSlot = fgSlot;
    r.arrived = Time::sec(arrivedSec);
    r.outcome = outcome;
    r.responseSec =
        outcome == "completed" ? responseSec : std::nan("");
    if (outcome == "completed") {
        r.started = Time::sec(arrivedSec);
        r.finished = Time::sec(arrivedSec + responseSec);
    }
    return r;
}

TEST(BurnRateTest, ChargesErrorsToArrivalWindows)
{
    std::vector<RequestRecord> reqs = {
        request(0.1, "completed", 0.5), // window 0: ok
        request(0.2, "completed", 2.0), // window 0: slow -> error
        request(1.5, "shed", 0.0),      // window 1: error
        request(2.5, "completed", 0.5), // window 2: ok
    };
    BurnRateConfig cfg;
    cfg.quantile = 0.9;
    cfg.targetSec = 1.0;
    cfg.windowSec = 1.0;
    cfg.startSec = 0.0;
    cfg.endSec = 3.0;
    BurnRateReport rep = computeBurnRate(reqs, cfg, "fg0");

    EXPECT_EQ(rep.scope, "fg0");
    EXPECT_DOUBLE_EQ(rep.budget, 0.1);
    EXPECT_EQ(rep.total, 4u);
    EXPECT_EQ(rep.errors, 2u);
    ASSERT_EQ(rep.windows.size(), 3u);
    EXPECT_EQ(rep.windows[0].total, 2u);
    EXPECT_EQ(rep.windows[0].errors, 1u);
    // (1/2) / 0.1 = 5x the sustainable burn.
    EXPECT_DOUBLE_EQ(rep.windows[0].burnRate, 5.0);
    EXPECT_EQ(rep.windows[1].errors, 1u);
    EXPECT_DOUBLE_EQ(rep.windows[1].burnRate, 10.0);
    EXPECT_EQ(rep.windows[2].errors, 0u);
    EXPECT_DOUBLE_EQ(rep.maxBurnRate, 10.0);
    EXPECT_DOUBLE_EQ(rep.meanBurnRate, 0.5 / 0.1);
    // Overall error rate 50 % > 10 % budget.
    EXPECT_TRUE(rep.exhausted);
}

TEST(BurnRateTest, MeetingTheSloLeavesBudgetUnexhausted)
{
    std::vector<RequestRecord> reqs;
    for (int i = 0; i < 100; ++i)
        reqs.push_back(request(0.01 * i, "completed", 0.5));
    BurnRateConfig cfg;
    cfg.quantile = 0.99;
    cfg.targetSec = 1.0;
    cfg.windowSec = 1.0;
    cfg.endSec = 1.0;
    BurnRateReport rep = computeBurnRate(reqs, cfg, "all");
    EXPECT_EQ(rep.errors, 0u);
    EXPECT_DOUBLE_EQ(rep.maxBurnRate, 0.0);
    EXPECT_FALSE(rep.exhausted);
}

TEST(BurnRateTest, FgSlotFilterRestrictsAccounting)
{
    std::vector<RequestRecord> reqs = {
        request(0.1, "completed", 2.0, 0),
        request(0.2, "completed", 0.1, 1),
    };
    BurnRateConfig cfg;
    cfg.quantile = 0.5;
    cfg.targetSec = 1.0;
    cfg.endSec = 1.0;
    cfg.fgSlot = 1;
    BurnRateReport rep = computeBurnRate(reqs, cfg, "fg1");
    EXPECT_EQ(rep.total, 1u);
    EXPECT_EQ(rep.errors, 0u);
}

TEST(BurnRateTest, CombineMergesWindowsIndexWise)
{
    std::vector<RequestRecord> node0 = {
        request(0.1, "completed", 2.0),
        request(1.1, "completed", 0.1),
    };
    std::vector<RequestRecord> node1 = {
        request(0.2, "completed", 0.1),
        request(1.2, "dropped", 0.0),
    };
    BurnRateConfig cfg;
    cfg.quantile = 0.5;
    cfg.targetSec = 1.0;
    cfg.windowSec = 1.0;
    cfg.endSec = 2.0;
    auto a = computeBurnRate(node0, cfg, "node0/fg0");
    auto b = computeBurnRate(node1, cfg, "node1/fg0");
    auto fleet = combineBurnRates({a, b}, "fleet");

    EXPECT_EQ(fleet.scope, "fleet");
    EXPECT_EQ(fleet.total, 4u);
    EXPECT_EQ(fleet.errors, 2u);
    ASSERT_EQ(fleet.windows.size(), 2u);
    EXPECT_EQ(fleet.windows[0].total, 2u);
    EXPECT_EQ(fleet.windows[0].errors, 1u);
    EXPECT_DOUBLE_EQ(fleet.windows[0].burnRate, 1.0);
    EXPECT_EQ(fleet.windows[1].errors, 1u);
    // 50 % errors against a 50 % budget: at the edge, not over it.
    EXPECT_FALSE(fleet.exhausted);
}

} // namespace
} // namespace dirigent::obs
