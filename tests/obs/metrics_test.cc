/**
 * @file
 * Tests of the metrics registry: counter/gauge semantics, histogram
 * binning (fixed log-linear edges, under/overflow, quantile error
 * bound), deterministic serialization, and thread safety of
 * concurrent updates.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"

namespace dirigent::obs {
namespace {

TEST(Metrics, CounterAndGauge)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("a.count");
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    EXPECT_EQ(&reg.counter("a.count"), &c); // create-on-first-use only

    Gauge &g = reg.gauge("a.gauge");
    g.set(1.5);
    g.set(-2.5);
    EXPECT_DOUBLE_EQ(g.value(), -2.5);
}

TEST(Metrics, HistogramBinsAndQuantiles)
{
    Histogram hist(HistogramConfig{1e-3, 10, 80});
    for (int i = 0; i < 1000; ++i)
        hist.observe(0.010); // all in one bin
    EXPECT_EQ(hist.count(), 1000u);
    EXPECT_NEAR(hist.mean(), 0.010, 1e-12);

    // The quantile estimate is the holding bin's upper edge, so it is
    // within one relative bin width of the true value.
    double width = std::pow(10.0, 1.0 / 10.0);
    EXPECT_GE(hist.quantile(0.5), 0.010);
    EXPECT_LE(hist.quantile(0.5), 0.010 * width * 1.0000001);

    auto bins = hist.bins();
    ASSERT_EQ(bins.size(), 1u);
    EXPECT_EQ(bins[0].count, 1000u);
    EXPECT_LE(bins[0].lo, 0.010);
    EXPECT_GT(bins[0].hi, 0.010);
}

TEST(Metrics, HistogramUnderAndOverflow)
{
    Histogram hist(HistogramConfig{1.0, 10, 10}); // covers [1, 10)
    hist.observe(0.5);    // underflow
    hist.observe(1e9);    // overflow
    hist.observe(2.0);    // in range
    EXPECT_EQ(hist.count(), 3u);
    auto bins = hist.bins();
    ASSERT_EQ(bins.size(), 3u);
    EXPECT_EQ(bins.front().lo, 0.0);             // underflow bin
    EXPECT_TRUE(std::isinf(bins.back().hi));     // overflow bin
}

TEST(Metrics, DeterministicSerialization)
{
    // Two registries fed the same values in different orders serialize
    // byte-identically: fixed bins + sorted names.
    MetricsRegistry a, b;
    a.counter("z").add(3);
    a.gauge("m").set(0.25);
    a.histogram("h").observe(0.5);
    a.histogram("h").observe(5.0);

    b.histogram("h").observe(5.0);
    b.histogram("h").observe(0.5);
    b.gauge("m").set(0.25);
    b.counter("z").add(3);

    EXPECT_EQ(a.toJson(), b.toJson());

    // The JSON is well-formed and carries every instrument.
    auto doc = parseJson(a.toJson());
    ASSERT_TRUE(doc);
    EXPECT_DOUBLE_EQ(doc->numberOr("z", 0.0), 3.0);
    EXPECT_DOUBLE_EQ(doc->numberOr("m", 0.0), 0.25);
    const JsonValue *h = doc->find("h");
    ASSERT_NE(h, nullptr);
    EXPECT_DOUBLE_EQ(h->numberOr("count", 0.0), 2.0);
}

TEST(Metrics, CsvOutput)
{
    MetricsRegistry reg;
    reg.counter("jobs").add(2);
    reg.gauge("util").set(0.5);
    std::ostringstream os;
    reg.writeCsv(os);
    std::string csv = os.str();
    EXPECT_NE(csv.find("jobs"), std::string::npos);
    EXPECT_NE(csv.find("util"), std::string::npos);
}

TEST(Metrics, ConcurrentUpdatesDontRace)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("n");
    Histogram &h = reg.histogram("h");
    constexpr int kThreads = 4, kPerThread = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                c.add();
                h.observe(0.001 * (t + 1));
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(c.value(), uint64_t(kThreads) * kPerThread);
    EXPECT_EQ(h.count(), uint64_t(kThreads) * kPerThread);
}

} // namespace
} // namespace dirigent::obs
