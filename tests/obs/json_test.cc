/**
 * @file
 * Tests of the telemetry JSON value model: parse/format round-trips
 * (including the %.17g double contract the exact trace section relies
 * on), escaping, error reporting, and the schema-subset validator.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "obs/export.h"
#include "obs/json.h"

namespace dirigent::obs {
namespace {

TEST(JsonParse, Scalars)
{
    EXPECT_TRUE(parseJson("null")->isNull());
    EXPECT_TRUE(parseJson("true")->boolean);
    EXPECT_FALSE(parseJson("false")->boolean);
    EXPECT_DOUBLE_EQ(parseJson("42")->number, 42.0);
    EXPECT_DOUBLE_EQ(parseJson("-1.5e3")->number, -1500.0);
    EXPECT_EQ(parseJson("\"hi\"")->string, "hi");
}

TEST(JsonParse, Structures)
{
    auto v = parseJson("{\"a\":[1,2,3],\"b\":{\"c\":true}}");
    ASSERT_TRUE(v);
    const JsonValue *a = v->find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->array.size(), 3u);
    EXPECT_DOUBLE_EQ(a->array[1].number, 2.0);
    const JsonValue *b = v->find("b");
    ASSERT_NE(b, nullptr);
    EXPECT_TRUE(b->find("c")->boolean);
}

TEST(JsonParse, StringEscapes)
{
    auto v = parseJson("\"a\\n\\t\\\"b\\\\c\\u0041\"");
    ASSERT_TRUE(v);
    EXPECT_EQ(v->string, "a\n\t\"b\\cA");
}

TEST(JsonParse, ErrorsReportOffset)
{
    std::string error;
    EXPECT_FALSE(parseJson("{\"a\":}", &error));
    EXPECT_FALSE(error.empty());
    error.clear();
    EXPECT_FALSE(parseJson("[1,2] trailing", &error));
    EXPECT_NE(error.find("trailing"), std::string::npos);
}

TEST(JsonQuote, EscapesControlAndSpecials)
{
    EXPECT_EQ(jsonQuote("a\"b"), "\"a\\\"b\"");
    EXPECT_EQ(jsonQuote("a\nb"), "\"a\\nb\"");
    // "\x01" "b" — spliced so the hex escape doesn't swallow the 'b'.
    EXPECT_EQ(jsonQuote(std::string("a\x01" "b")), "\"a\\u0001b\"");
    EXPECT_EQ(jsonQuote(std::string("\x1b")), "\"\\u001b\"");
}

TEST(JsonDouble, RoundTripsExactly)
{
    const double cases[] = {0.0,         1.0 / 3.0,    1e-300,
                            6.02214e23,  0.1,          123456789.123456789,
                            -2.5e-8};
    for (double value : cases) {
        auto parsed = parseJson(jsonDouble(value));
        ASSERT_TRUE(parsed) << jsonDouble(value);
        EXPECT_EQ(parsed->number, value) << jsonDouble(value);
    }
}

TEST(JsonDouble, NonFiniteRendersNull)
{
    EXPECT_EQ(jsonDouble(std::nan("")), "null");
    EXPECT_EQ(jsonDouble(std::numeric_limits<double>::infinity()),
              "null");
}

TEST(SchemaValidate, AcceptsAndRejects)
{
    auto schema = parseJson(
        "{\"type\":\"object\",\"required\":[\"name\",\"n\"],"
        "\"properties\":{\"name\":{\"type\":\"string\"},"
        "\"n\":{\"type\":\"integer\"},"
        "\"tags\":{\"type\":\"array\",\"minItems\":1,"
        "\"items\":{\"type\":\"string\"}}}}");
    ASSERT_TRUE(schema);

    auto ok = parseJson("{\"name\":\"x\",\"n\":3,\"tags\":[\"a\"]}");
    EXPECT_EQ(validateAgainstSchema(*ok, *schema), "");

    auto missing = parseJson("{\"name\":\"x\"}");
    EXPECT_NE(validateAgainstSchema(*missing, *schema), "");

    auto wrongType = parseJson("{\"name\":\"x\",\"n\":3.5}");
    EXPECT_NE(validateAgainstSchema(*wrongType, *schema), "");

    auto shortArray = parseJson("{\"name\":\"x\",\"n\":1,\"tags\":[]}");
    EXPECT_NE(validateAgainstSchema(*shortArray, *schema), "");
}

TEST(SchemaValidate, EnumAndUnionTypes)
{
    auto schema = parseJson(
        "{\"properties\":{\"ph\":{\"type\":\"string\","
        "\"enum\":[\"C\",\"X\"]},"
        "\"v\":{\"type\":[\"number\",\"string\"]}}}");
    ASSERT_TRUE(schema);
    EXPECT_EQ(validateAgainstSchema(*parseJson("{\"ph\":\"C\",\"v\":1}"),
                                    *schema),
              "");
    EXPECT_EQ(
        validateAgainstSchema(*parseJson("{\"ph\":\"X\",\"v\":\"s\"}"),
                              *schema),
        "");
    EXPECT_NE(validateAgainstSchema(*parseJson("{\"ph\":\"Q\"}"),
                                    *schema),
              "");
    EXPECT_NE(validateAgainstSchema(*parseJson("{\"v\":true}"), *schema),
              "");
}

} // namespace
} // namespace dirigent::obs
