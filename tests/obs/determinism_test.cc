/**
 * @file
 * Telemetry determinism: the exported trace of a recorded run must be
 * byte-identical across repetitions and across executor thread counts
 * (1/2/4 workers). Sampling rides the deterministic quantum stream and
 * serialization is canonical, so any divergence is a real behaviour
 * change, not noise.
 */

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <sstream>
#include <string>

#include "exec/executor.h"
#include "harness/experiment.h"
#include "obs/export.h"
#include "obs/recorder.h"
#include "workload/mix.h"

namespace dirigent::obs {
namespace {

harness::HarnessConfig
fastConfig()
{
    harness::HarnessConfig cfg;
    cfg.executions = 3;
    cfg.warmup = 1;
    cfg.seed = 1812;
    return cfg;
}

std::vector<workload::WorkloadMix>
testMixes()
{
    return {
        workload::makeMix({"ferret"}, workload::BgSpec::single("rs")),
        workload::makeMix({"streamcluster"},
                          workload::BgSpec::single("pca")),
    };
}

/**
 * Record one instrumented Dirigent run per mix on @p threads workers
 * and return the exported trace documents keyed by mix name.
 */
std::map<std::string, std::string>
recordedTraces(unsigned threads)
{
    exec::ExecutorConfig ecfg;
    ecfg.threads = threads;
    ecfg.progress = false;
    exec::SweepExecutor executor(fastConfig(), ecfg);

    auto mixes = testMixes();
    std::map<std::string, workload::WorkloadMix> byName;
    for (const auto &mix : mixes)
        byName[mix.name] = mix;

    std::mutex mutex;
    std::map<std::string, std::string> traces;

    std::vector<exec::JobKey> keys;
    for (const auto &mix : mixes)
        keys.push_back({mix.name, "Dirigent", 0});
    executor.forEach(keys, [&](size_t, const exec::JobKey &key,
                               harness::ExperimentRunner &runner) {
        const auto &mix = byName.at(key.mix);
        auto baseline = runner.run(mix, core::Scheme::Baseline, {});
        auto deadlines = runner.deadlinesFromBaseline(baseline);

        Recorder rec;
        harness::RunOptions opts;
        opts.recorder = &rec;
        runner.run(mix, core::Scheme::Dirigent, deadlines, opts);
        rec.manifest().tool = "determinism_test";

        std::ostringstream os;
        writePerfettoTrace(os, rec);
        std::lock_guard<std::mutex> lock(mutex);
        traces[key.mix] = os.str();
    });
    return traces;
}

TEST(RecorderDeterminism, TraceBytesIdenticalAcrossThreadCounts)
{
    auto serial = recordedTraces(1);
    ASSERT_EQ(serial.size(), testMixes().size());
    for (const auto &[mix, doc] : serial)
        ASSERT_FALSE(doc.empty()) << mix;

    for (unsigned threads : {2u, 4u}) {
        auto sharded = recordedTraces(threads);
        ASSERT_EQ(sharded.size(), serial.size()) << threads;
        for (const auto &[mix, doc] : serial)
            EXPECT_EQ(sharded.at(mix), doc)
                << mix << " @ " << threads << " threads";
    }
}

TEST(RecorderDeterminism, RepeatedRunIsByteIdentical)
{
    auto a = recordedTraces(1);
    auto b = recordedTraces(1);
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace dirigent::obs
