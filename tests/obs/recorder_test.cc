/**
 * @file
 * Tests of the Recorder container and of the RunProbe attached to a
 * real (small) experiment: series registration, sample capture, slice
 * and event recording, deadline-miss marking, and fault-event capture
 * under an injected fault plan.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "fault/injector.h"
#include "fault/plan.h"
#include "harness/experiment.h"
#include "obs/recorder.h"
#include "workload/mix.h"

namespace dirigent::obs {
namespace {

harness::HarnessConfig
fastConfig()
{
    harness::HarnessConfig cfg;
    cfg.executions = 4;
    cfg.warmup = 1;
    cfg.seed = 777;
    return cfg;
}

TEST(Recorder, SeriesAndSlices)
{
    Recorder rec;
    size_t id = rec.addSeries("x", "unit");
    rec.sample(id, Time::ms(1.0), 0.5);
    rec.sample(id, Time::ms(2.0), 0.75);

    const Series *s = rec.findSeries("x");
    ASSERT_NE(s, nullptr);
    ASSERT_EQ(s->times.size(), 2u);
    EXPECT_DOUBLE_EQ(s->times[1], 0.002);
    EXPECT_DOUBLE_EQ(s->values[1], 0.75);
    EXPECT_EQ(rec.findSeries("missing"), nullptr);

    ExecutionSlice slice;
    slice.pid = 1;
    slice.start = Time::ms(1.0);
    slice.end = Time::ms(4.0);
    rec.addSlice(slice);
    EXPECT_EQ(rec.slices().size(), 1u);

    rec.clearData();
    EXPECT_TRUE(rec.slices().empty());
    ASSERT_NE(rec.findSeries("x"), nullptr); // definitions survive
    EXPECT_TRUE(rec.findSeries("x")->times.empty());
}

TEST(RecorderProbe, CapturesARealRun)
{
    harness::ExperimentRunner runner(fastConfig());
    auto mix = workload::makeMix({"ferret"},
                                 workload::BgSpec::single("rs"));

    auto baseline = runner.run(mix, core::Scheme::Baseline, {});
    auto deadlines = runner.deadlinesFromBaseline(baseline);

    Recorder rec;
    harness::RunOptions opts;
    opts.recorder = &rec;
    auto res = runner.run(mix, core::Scheme::Dirigent, deadlines, opts);

    // The probe registered the standard series and sampled them.
    const Series *freq = rec.findSeries("core0.freq_ghz");
    ASSERT_NE(freq, nullptr);
    EXPECT_GT(freq->times.size(), 10u);
    EXPECT_TRUE(std::is_sorted(freq->times.begin(), freq->times.end()));
    ASSERT_NE(rec.findSeries("cat.fg_ways"), nullptr);
    ASSERT_NE(rec.findSeries("dram.utilization"), nullptr);

    // Predictor series exist for the FG slot and carry sane values.
    const Series *predicted = rec.findSeries("fg0.predicted_total_ms");
    ASSERT_NE(predicted, nullptr);
    EXPECT_GT(predicted->times.size(), 0u);
    for (double v : predicted->values)
        EXPECT_GT(v, 0.0);

    // Every FG completion (warmup included) became a slice with the
    // configured deadline attached.
    EXPECT_GE(rec.slices().size(),
              size_t(fastConfig().warmup + fastConfig().executions));
    double deadlineSec = deadlines.begin()->second.sec();
    for (const auto &slice : rec.slices()) {
        EXPECT_EQ(slice.fgSlot, 0u);
        EXPECT_DOUBLE_EQ(slice.deadlineSec, deadlineSec);
        EXPECT_GT(slice.end.sec(), slice.start.sec());
        EXPECT_EQ(slice.missed,
                  slice.duration().sec() >
                      slice.deadlineSec * (1.0 + 1e-9));
    }

    // Controller decisions were mirrored as instant events.
    EXPECT_FALSE(rec.events().empty());
    for (const auto &ev : rec.events())
        EXPECT_TRUE(ev.category == "decision" || ev.category == "fault");

    // The manifest was stamped with the run identity.
    EXPECT_EQ(rec.manifest().mixName, mix.name);
    EXPECT_EQ(rec.manifest().scheme, "Dirigent");
    EXPECT_EQ(rec.manifest().seed, runner.mixSeed(mix));
    EXPECT_EQ(rec.manifest().faultPlanHash, 0u);

    // End-of-run aggregates landed in the metrics registry.
    std::string metrics = rec.metrics().toJson();
    EXPECT_NE(metrics.find("run.fg_completions"), std::string::npos);
    EXPECT_NE(metrics.find("runtime.invocations"), std::string::npos);

    // Result consistency: recorded measured-window misses match.
    (void)res;
}

TEST(RecorderProbe, FaultPlanProducesFaultEvents)
{
    auto plan = fault::parseFaultPlan(
        std::string("counters.glitch_prob = 0.2\n"
                    "dvfs.fail_prob = 0.3\n"));
    fault::FaultInjector injector(plan, 99);

    harness::ExperimentRunner runner(fastConfig());
    auto mix = workload::makeMix({"ferret"},
                                 workload::BgSpec::single("rs"));
    auto baseline = runner.run(mix, core::Scheme::Baseline, {});
    auto deadlines = runner.deadlinesFromBaseline(baseline);

    Recorder rec;
    harness::RunOptions opts;
    opts.recorder = &rec;
    opts.faults = &injector;
    runner.run(mix, core::Scheme::Dirigent, deadlines, opts);

    // The plan fired (glitches and/or DVFS failures), and the probe
    // turned the stat deltas into fault-category instant events.
    ASSERT_GT(injector.stats().total(), 0u);
    bool sawFault = false;
    for (const auto &ev : rec.events())
        sawFault = sawFault || ev.category == "fault";
    EXPECT_TRUE(sawFault);

    // The manifest captured the plan for reproduction.
    EXPECT_NE(rec.manifest().faultPlanHash, 0u);
    EXPECT_FALSE(rec.manifest().faultPlanText.empty());
}

} // namespace
} // namespace dirigent::obs
