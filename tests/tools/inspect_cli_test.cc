/**
 * @file
 * dirigent-inspect CLI contract, driven through the real binary
 * (DIRIGENT_INSPECT_BIN): unknown subcommands and missing file
 * arguments exit 2 with usage, unreadable/unknown inputs exit 1, and
 * the span-analysis subcommands exit 0 on a generated fixture.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "obs/fleet.h"
#include "obs/metrics.h"
#include "obs/span.h"

#ifndef DIRIGENT_INSPECT_BIN
#error "DIRIGENT_INSPECT_BIN must point at the dirigent-inspect binary"
#endif

namespace dirigent::obs {
namespace {

/** Run the inspect binary, muted, and return its exit code. */
int
inspect(const std::string &args)
{
    std::string cmd = std::string(DIRIGENT_INSPECT_BIN) + " " + args +
                      " >/dev/null 2>&1";
    int status = std::system(cmd.c_str());
    EXPECT_NE(status, -1);
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/** Spans fixture with one completed and one shed request. */
std::string
spansFixture()
{
    static std::string path = [] {
        SpanCollector spans(20160402, 0);
        spans.recordRequest(0, 5, 0, Time::sec(1.0), Time::sec(1.3),
                            Time::sec(2.1), 2, "completed", 0.0);
        spans.recordRequest(0, 5, 1, Time::sec(1.5), Time::never(),
                            Time::never(), 16, "shed", 4.0);
        spans.finalize();
        std::string p =
            testing::TempDir() + "inspect_cli_fixture.spans.json";
        EXPECT_TRUE(writeSpansFile(p, spans));
        return p;
    }();
    return path;
}

std::string
promFixture()
{
    static std::string path = [] {
        MetricsRegistry reg;
        reg.counter("run.fg_completions").add(3);
        reg.histogram("fg0.response_s").observe(0.5);
        FleetMetrics fleet;
        fleet.addNode(0, reg);
        std::string p = testing::TempDir() + "inspect_cli_fixture.prom";
        EXPECT_TRUE(writePrometheusFile(p, fleet));
        return p;
    }();
    return path;
}

TEST(InspectCliTest, UnknownSubcommandExitsTwo)
{
    EXPECT_EQ(inspect("frobnicate run.json"), 2);
    EXPECT_EQ(inspect("summery run.json"), 2);
}

TEST(InspectCliTest, MissingArgumentsExitTwo)
{
    EXPECT_EQ(inspect(""), 2);
    EXPECT_EQ(inspect("summary"), 2);
    EXPECT_EQ(inspect("slowest"), 2);
    // validate and critical-path take exactly two operands.
    EXPECT_EQ(inspect("validate " + spansFixture()), 2);
    EXPECT_EQ(inspect("critical-path " + spansFixture()), 2);
    // Unknown options are rejected, not ignored.
    EXPECT_EQ(inspect("slowest " + spansFixture() + " --bogus"), 2);
}

TEST(InspectCliTest, UnreadableInputsExitOne)
{
    EXPECT_EQ(inspect("summary /nonexistent/run.json"), 1);
    EXPECT_EQ(inspect("slowest /nonexistent/spans.json"), 1);
    EXPECT_EQ(inspect("prom /nonexistent/metrics.prom"), 1);
}

TEST(InspectCliTest, UnknownTraceIdExitsOne)
{
    EXPECT_EQ(
        inspect("critical-path " + spansFixture() + " 1234567"), 1);
}

TEST(InspectCliTest, SpanSubcommandsSucceedOnTheFixture)
{
    EXPECT_EQ(inspect("slowest " + spansFixture()), 0);
    EXPECT_EQ(inspect("slowest " + spansFixture() + " --top 1"), 0);
    EXPECT_EQ(
        inspect("why-miss " + spansFixture() + " --target 0.5"), 0);
    EXPECT_EQ(inspect("prom " + promFixture()), 0);
}

TEST(InspectCliTest, CriticalPathFindsARealTraceId)
{
    SpanCollector spans(20160402, 0);
    spans.recordRequest(0, 5, 0, Time::sec(1.0), Time::sec(1.3),
                        Time::sec(2.1), 2, "completed", 0.0);
    spans.finalize();
    std::string id =
        std::to_string((unsigned long long)spans.spans()[0].traceId);
    EXPECT_EQ(
        inspect("critical-path " + spansFixture() + " " + id), 0);
}

TEST(InspectCliTest, ValidateChecksAgainstTheShippedSchema)
{
    std::string schema =
        std::string(DIRIGENT_SCHEMA_DIR) + "/spans.schema.json";
    EXPECT_EQ(inspect("validate " + spansFixture() + " " + schema), 0);
    // The spans document does not conform to the manifest schema.
    EXPECT_EQ(inspect("validate " + spansFixture() + " " +
                      DIRIGENT_SCHEMA_DIR + "/manifest.schema.json"),
              1);
}

} // namespace
} // namespace dirigent::obs
